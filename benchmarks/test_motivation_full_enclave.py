"""Motivation: running the complete application inside SGX.

Section 2.3.2: "executing a complete application in SGX can result in a
slowdown of over 300x (HashJoin in Figure 9)" — the fault storm of a
random-access working set far beyond the EPC, plus enclave-transition
costs.  This bench prices the full-enclave endpoint with the *raw*
(unscaled) fault model, since the claim is about the native regime.
"""

from __future__ import annotations

import pytest

from repro.partition import PartitionEvaluator, SecureLeasePartitioner
from repro.workloads import all_workloads

SCALE = 0.5


def regenerate_full_enclave():
    # fault_scale=1.0: the raw model (no scaled-workload compensation),
    # matching the native-execution regime the 300x claim refers to.
    raw = PartitionEvaluator(fault_scale=1.0)
    calibrated = PartitionEvaluator()
    rows = []
    for name in ("hashjoin", "btree", "keyvalue", "bfs", "blockchain"):
        workload = all_workloads()[name]
        run = workload.run_profiled(scale=SCALE)
        full = raw.evaluate_full_enclave(run.program, run.graph, run.profile)
        secure_partition = SecureLeasePartitioner().partition(
            run.program, run.graph, run.profile
        )
        secure = calibrated.evaluate(run.program, run.graph, run.profile,
                                     secure_partition)
        rows.append([
            name,
            f"{full.slowdown:,.0f}x",
            f"{full.epc_faults:,}",
            f"{secure.slowdown:.2f}x",
        ])
    return rows


def test_motivation_full_enclave(benchmark, table_printer):
    rows = benchmark(regenerate_full_enclave)
    table_printer(
        "Motivation (2.3.2): whole application inside SGX (raw model)",
        ["Workload", "Full-enclave slowdown", "EPC faults",
         "SecureLease slowdown"],
        rows,
    )
    slowdowns = {row[0]: float(row[1].rstrip("x").replace(",", ""))
                 for row in rows}
    # The random-access workloads are catastrophic when fully enclosed.
    # (The paper's >300x HashJoin used its native 1.22 GB table; our
    # declared 130 MB footprint lands at ~170x — same order, and the
    # worst random-access case here crosses 250x.)
    assert slowdowns["hashjoin"] > 100
    assert max(slowdowns.values()) > 250
    # Small-footprint workloads do not blow up even fully enclosed.
    assert slowdowns["blockchain"] < 50
    # SecureLease stays in the ~1.x regime on all of them.
    for row in rows:
        assert float(row[3].rstrip("x")) < 5.0
