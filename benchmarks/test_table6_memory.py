"""Table 6: SL-Local memory footprint with and without eviction.

Paper rows:

    ============  ======  =====  =====  =====
    #Total leases   1K      5K    10K    50K
    ============  ======  =====  =====  =====
    No-Evict      332KB   1.6MB  3.2MB  15.6MB
    SecureLease   332KB   1.6MB  1.6MB  1.6MB
    ============  ======  =====  =====  =====

Expected shape: without eviction, memory grows linearly in the lease
count; with SecureLease's commit-and-evict policy it flattens at the
resident-set cap.
"""

from __future__ import annotations

import pytest

from repro.core.gcl import Gcl
from repro.core.lease_tree import LeaseTree
from repro.crypto.keys import KeyGenerator
from repro.sim.rng import DeterministicRng

LEASE_COUNTS = (1_000, 5_000, 10_000, 50_000)
#: Leases kept resident by the eviction policy (matches the paper's
#: ~1.6 MB plateau: 5 000 x 312 B plus tree nodes).
RESIDENT_CAP = 5_000


def fill_tree(n_leases: int, evict: bool) -> int:
    tree = LeaseTree(keygen=KeyGenerator(DeterministicRng(2)))
    for lease_id in range(n_leases):
        tree.insert(lease_id, Gcl.count_based("lic", 3))
        if evict and lease_id >= RESIDENT_CAP:
            tree.commit_lease(lease_id - RESIDENT_CAP)
    return tree.resident_bytes()


def human(nbytes: int) -> str:
    if nbytes < (1 << 20):
        return f"{nbytes / 1024:.0f}KB"
    return f"{nbytes / (1 << 20):.1f}MB"


def regenerate_table6():
    no_evict = [fill_tree(n, evict=False) for n in LEASE_COUNTS]
    evicting = [fill_tree(n, evict=True) for n in LEASE_COUNTS]
    return no_evict, evicting


def test_table6_memory_usage(benchmark, table_printer):
    # One round: the 50 K-lease fill seals tens of thousands of leases
    # through the pure-Python AES, which is slow on the host.
    no_evict, evicting = benchmark.pedantic(regenerate_table6, rounds=1,
                                            iterations=1)
    table_printer(
        "Table 6: SL-Local memory with and without eviction",
        ["# Total leases", *[f"{n // 1000}K" for n in LEASE_COUNTS]],
        [
            ["No-Evict", *[human(b) for b in no_evict]],
            ["SecureLease", *[human(b) for b in evicting]],
        ],
    )
    # Without eviction, memory grows with the lease count.
    assert no_evict[-1] > 10 * no_evict[0]
    # With eviction, the footprint flattens once past the cap.
    assert evicting[2] == pytest.approx(evicting[1], rel=0.25)
    assert evicting[3] < 2 * evicting[1]
    # And the saving at 50K leases is substantial.
    assert evicting[3] < 0.25 * no_evict[3]
    # Below the cap both behave identically.
    assert evicting[0] == no_evict[0]
