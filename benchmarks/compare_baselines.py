"""Guard the committed benchmark baselines against silent regressions.

The repo commits full-scale benchmark results (``BENCH_failover.json``,
``BENCH_wire_format.json``, ``BENCH_quorum.json``,
``BENCH_scenarios.json``) as the performance record of each release.  This script compares the working-tree copies
against the versions committed at a git ref (default ``HEAD``) and
fails when a headline metric regressed past the tolerance:

* latency-like metrics ("lower is better") may not grow by more than
  ``--tolerance`` (default 20%),
* throughput-like metrics ("higher is better") may not shrink by more
  than the same factor,
* correctness counters ("must be zero") may not be nonzero, ever.

Smoke-scale reruns are not comparable to full-scale baselines, so a
file whose ``smoke`` flag differs from its baseline is reported and
skipped rather than failed — CI's reduced-scale runs only rewrite the
artifacts they are allowed to (see each bench's persistence rules).

Usage::

    python benchmarks/compare_baselines.py [--ref HEAD] [--tolerance 0.2]

Exit status 0 means every comparable metric is within tolerance.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: file -> list of (dotted metric path, direction).  Directions:
#: ``lower``/``higher`` compare against the baseline with tolerance,
#: ``zero`` is an absolute correctness gate on the current run.
BASELINES = {
    "BENCH_failover.json": [
        ("kill_to_first_success_seconds", "lower"),
        ("failed_calls", "zero"),
    ],
    "BENCH_quorum.json": [
        ("kill_to_first_success_seconds", "lower"),
        ("failed_calls", "zero"),
        ("double_grants", "zero"),
    ],
    "BENCH_wire_format.json": [
        ("binary_v3.requests_per_second", "higher"),
        ("binary_v3.bytes_per_renewal", "lower"),
        ("json_v2.bytes_per_renewal", "lower"),
    ],
    "BENCH_scenarios.json": [
        # The adaptive fleet must serve the whole flash crowd: a single
        # EXHAUSTED answer is a correctness regression of the admission
        # ladder, not a perf wobble.
        ("flash_crowd.adaptive.exhausted", "zero"),
        ("flash_crowd.adaptive.failures", "zero"),
        ("flash_crowd.adaptive.goodput_renewals_per_second", "higher"),
        ("flash_crowd.adaptive.p99_ms", "lower"),
        ("mass_churn.failures", "zero"),
        # New shapes: diurnal peaks are served in full, and the escrow
        # storm's graceful path never strands a unit (a nonzero forfeit
        # here means a double-grant or a bogus write-off).
        ("diurnal.exhausted", "zero"),
        ("diurnal.failures", "zero"),
        ("escrow_storm.failures", "zero"),
        ("escrow_storm.forfeited_units", "zero"),
        # The 10^5 headline: zero refusals at 10× the PR 8 crowd, and
        # its throughput/latency become the standing perf record.
        ("fleet_100k.exhausted", "zero"),
        ("fleet_100k.failures", "zero"),
        ("fleet_100k.goodput_renewals_per_second", "higher"),
        ("fleet_100k.p99_ms", "lower"),
    ],
    "BENCH_redteam.json": [
        # The adversarial audit: all three red-team gates are absolute.
        # A nonzero here means a campaign breached an execution-control
        # invariant — units minted twice across a failover, a rolled-
        # back ledger served, or a fenced server honoring replayed
        # frames.  There is no tolerance to negotiate.
        ("double_grants", "zero"),
        ("resurrected_units", "zero"),
        ("stale_frames_accepted", "zero"),
        ("conservation_violations", "zero"),
        ("failed_calls", "zero"),
    ],
}


def _metric(payload, path):
    value = payload
    for part in path.split("."):
        if not isinstance(value, dict) or part not in value:
            return None
        value = value[part]
    return value


def _committed(ref, name):
    """The baseline JSON at ``ref``, or None if the file is new."""
    result = subprocess.run(
        ["git", "show", f"{ref}:{name}"],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )
    if result.returncode != 0:
        return None
    return json.loads(result.stdout)


def compare(ref="HEAD", tolerance=0.2):
    failures, report = [], []
    for name, metrics in BASELINES.items():
        current_path = os.path.join(REPO_ROOT, name)
        if not os.path.exists(current_path):
            report.append(f"{name}: missing from the working tree (skipped)")
            continue
        with open(current_path) as handle:
            current = json.load(handle)
        baseline = _committed(ref, name)
        if baseline is None:
            report.append(f"{name}: no baseline at {ref} (new benchmark)")
            baseline = {}
        comparable = (bool(current.get("smoke"))
                      == bool(baseline.get("smoke"))) if baseline else False
        if baseline and not comparable:
            report.append(
                f"{name}: scale mismatch (current smoke="
                f"{bool(current.get('smoke'))}, baseline smoke="
                f"{bool(baseline.get('smoke'))}); only zero-gates checked"
            )
        for path, direction in metrics:
            value = _metric(current, path)
            if value is None:
                failures.append(f"{name}:{path} missing from the current run")
                continue
            if direction == "zero":
                status = "ok" if value == 0 else "FAIL"
                report.append(f"{name}:{path} = {value} (must be 0) {status}")
                if value != 0:
                    failures.append(f"{name}:{path} = {value}, expected 0")
                continue
            base = _metric(baseline, path) if comparable else None
            if base in (None, 0):
                report.append(f"{name}:{path} = {value} (no baseline)")
                continue
            if direction == "lower":
                bound = base * (1 + tolerance)
                bad = value > bound
            else:  # higher
                bound = base * (1 - tolerance)
                bad = value < bound
            status = "FAIL" if bad else "ok"
            report.append(
                f"{name}:{path} = {value} vs baseline {base} "
                f"({direction} is better, bound {bound:.4g}) {status}"
            )
            if bad:
                failures.append(
                    f"{name}:{path} regressed past {tolerance:.0%}: "
                    f"{value} vs baseline {base}"
                )
    return failures, report


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="compare benchmark JSON against committed baselines"
    )
    parser.add_argument("--ref", default="HEAD",
                        help="git ref holding the baselines (default HEAD)")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional regression (default 0.2)")
    args = parser.parse_args(argv)
    failures, report = compare(ref=args.ref, tolerance=args.tolerance)
    for line in report:
        print(line)
    if failures:
        print(f"\n{len(failures)} regression(s) past "
              f"{args.tolerance:.0%}:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nall benchmark metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
