"""Figure 8: attestation throughput for concurrent enclaves.

The paper's micro-benchmark: N concurrent application enclaves each
hammer SL-Local with lease-allocation requests for 10 seconds, in two
modes (all requesting the *same* lease vs *different* leases), and with
the multi-token optimisation (10 tokens per local attestation) giving
~10x.

Expected shape:

* total throughput is service-bound: roughly flat as enclaves increase;
* same-lease mode is slightly slower than different-lease mode (lock
  contention on the single lease);
* 10-token batching improves effective grant throughput ~10x.
"""

from __future__ import annotations

import pytest

from repro.core.protocol import AttestRequest, Status
from repro.deployment import SecureLeaseDeployment
from repro.sim.clock import seconds_to_cycles

RUN_SECONDS = 0.2  # virtual seconds per configuration (scaled from 10 s)
ENCLAVE_COUNTS = (1, 2, 4, 8)


def run_config(n_enclaves: int, same_lease: bool, tokens: int) -> float:
    """Grants per virtual second for one Figure 8 configuration."""
    deployment = SecureLeaseDeployment(seed=41, tokens_per_attestation=tokens)
    if same_lease:
        licenses = ["lic-shared"] * n_enclaves
        deployment.issue_license("lic-shared", total_units=10**9)
    else:
        licenses = [f"lic-{i}" for i in range(n_enclaves)]
        for license_id in licenses:
            deployment.issue_license(license_id, total_units=10**9)

    managers = []
    for i, license_id in enumerate(licenses):
        manager = deployment.manager_for(f"bench-app-{i}")
        manager.load_license(
            license_id,
            deployment.remote.license_definition(license_id).license_blob(),
        )
        managers.append((manager, license_id))

    # Warm-up: fetch each licence's first sub-GCL outside the window
    # (the paper measures steady-state throughput, not cold start).
    for manager, license_id in managers:
        manager.check(license_id)

    clock = deployment.machine.clock
    deadline = clock.cycles + seconds_to_cycles(RUN_SECONDS)
    grants = 0
    # Round-robin the concurrent requesters over the shared timeline —
    # SL-Local is a single service, so requests serialise exactly as N
    # enclaves contending for it would.
    while clock.cycles < deadline:
        for manager, license_id in managers:
            if manager.check(license_id):
                grants += 1
    return grants / RUN_SECONDS


def regenerate_fig8():
    rows = []
    for n_enclaves in ENCLAVE_COUNTS:
        same_1 = run_config(n_enclaves, same_lease=True, tokens=1)
        diff_1 = run_config(n_enclaves, same_lease=False, tokens=1)
        same_10 = run_config(n_enclaves, same_lease=True, tokens=10)
        rows.append([
            n_enclaves,
            f"{same_1:,.0f}",
            f"{diff_1:,.0f}",
            f"{same_10:,.0f}",
            f"{same_10 / same_1:.1f}x",
        ])
    return rows


def test_fig8_attestation_throughput(benchmark, table_printer):
    rows = benchmark.pedantic(regenerate_fig8, rounds=1, iterations=1)
    table_printer(
        "Figure 8: lease grants per virtual second",
        ["Enclaves", "Same lease (1 tok)", "Diff lease (1 tok)",
         "Same lease (10 tok)", "Batching gain"],
        rows,
    )
    # Shape: batching buys roughly an order of magnitude (paper: ~10x).
    gains = [float(row[4].rstrip("x")) for row in rows]
    assert all(6.0 < g < 14.0 for g in gains)
    # Total throughput is service-bound: flat-ish across enclave counts.
    totals = [float(row[1].replace(",", "")) for row in rows]
    assert max(totals) < 1.5 * min(totals)
    # Different leases never do worse than hammering one shared lease.
    for row in rows:
        same = float(row[1].replace(",", ""))
        diff = float(row[2].replace(",", ""))
        assert diff >= 0.9 * same


def test_fig8_local_attestation_dominates(benchmark):
    """Section 7.3: the local attestation is ~98 % of the grant cost."""
    from repro.core.sl_local import LEASE_UPDATE_CYCLES, TOKEN_ISSUE_CYCLES
    from repro.sgx.costs import SgxCostModel

    def measure():
        costs = SgxCostModel()
        attestation = costs.local_attestation_cycles
        update = LEASE_UPDATE_CYCLES + TOKEN_ISSUE_CYCLES
        return attestation / (attestation + update)

    fraction = benchmark(measure)
    print(f"\nLocal attestation share of grant cost: {fraction:.1%} "
          f"(paper: ~98%)")
    assert fraction > 0.9
