"""Negotiated binary wire (v3) + coalesced renewal batching, end to end.

The wire-format release's headline claim, measured over real sockets
against one live ``serve-remote --io async`` process: the v2 JSON
protocol pays one hex-inflated frame *and* one durable-commit budget
per renewal, so 100 clients on 100 connections top out near the
~685 req/s the async-serving release recorded.  Negotiated v3 binary
frames plus client-side renewal coalescing change both terms at once —
concurrent renewals ride one length-prefixed ``renew_batch`` frame, the
server vectorizes the batch through one dispatch hop, and the whole
batch pays **one** ledger-commit charge — so throughput scales with the
coalesced group size instead of the per-license commit rate.

Both crowds drive the same workload shape (init once, then renew +
return in a tight loop, every grant returned so the run stays
commit-bound) against the *same* server binary; only the client's wire
preference and batch window differ.  Every run ends with the standard
fleet-wide ledger audit — speed that loses units would be a non-result
— and the server's wire counters price each configuration in actual
bytes per renewal.

``SL_WIRE_SMOKE=1`` shrinks the crowd for CI; the >= 5x acceptance bar
(and the ``BENCH_wire_format.json`` artifact) applies at full scale.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time

import pytest

from repro.core.protocol import InitRequest, RenewRequest, Status
from repro.net.endpoint import connect
from repro.sgx import SgxMachine
from repro.sim.clock import Clock

SMOKE = bool(os.environ.get("SL_WIRE_SMOKE"))

CLIENTS = 16 if SMOKE else 100
LICENSES = 4 if SMOKE else 8
RENEWALS_PER_CLIENT = 2 if SMOKE else 4
COMMIT_SECONDS = 0.01 if SMOKE else 0.02
#: How long the leader waits for stragglers before shipping a batch —
#: a fraction of the commit budget it amortizes, long enough for one
#: endpoint's whole crowd to regroup after each round.
BATCH_WINDOW = 0.005
#: Multiplexed endpoints for the batching crowd: each coalesces its
#: share of the clients onto one connection.  A handful keeps batches
#: large (CLIENTS / SHARED_ENDPOINTS per frame) without funneling every
#: return through a single connection reader.
SHARED_ENDPOINTS = 2 if SMOKE else 4
POOL = 10**9

#: The async-serving release's full-scale req/s on this workload shape
#: (100 clients, 8 licenses, 20 ms commits): the acceptance baseline.
BASELINE_REQS_PER_SECOND = 685.0
TARGET_SPEEDUP = 5.0

MARKER = "SL-Remote listening on "
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_wire_format.json")


# ----------------------------------------------------------------------
# Server-process harness
# ----------------------------------------------------------------------
def _spawn_server():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    command = [
        sys.executable, "-m", "repro.cli", "serve-remote",
        "--port", "0", "--accept-any-platform",
        "--io", "async", "--max-workers", str(CLIENTS),
        "--wire", "3",
        "--ledger-commit-seconds", str(COMMIT_SECONDS),
    ]
    for index in range(LICENSES):
        command += ["--license", f"lic-{index}:{POOL}"]
    process = subprocess.Popen(command, stdout=subprocess.PIPE,
                               stderr=subprocess.STDOUT, text=True, env=env)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        if line.startswith(MARKER):
            host, port = line[len(MARKER):].strip().rsplit(":", 1)
            return process, (host, int(port))
    process.kill()
    raise RuntimeError("serve-remote subprocess never reported its port")


@pytest.fixture
def wire_server():
    process, address = _spawn_server()
    yield address
    process.terminate()
    try:
        process.wait(timeout=10)
    except subprocess.TimeoutExpired:
        process.kill()


# ----------------------------------------------------------------------
# Client crowd
# ----------------------------------------------------------------------
def _blob_for(license_id):
    from repro.core.licensefile import VENDOR_SECRET, mint_license_blob

    return mint_license_blob(license_id, VENDOR_SECRET)


def _drive_crowd(make_endpoint, shared_endpoints: int):
    """``CLIENTS`` threads: init once, then renew/return in a tight loop.

    ``shared_endpoints > 0`` is the batching shape: the crowd
    multiplexes that many endpoints, so each one coalesces the
    concurrent renewals of ``CLIENTS / shared_endpoints`` threads into
    batch frames.  ``shared_endpoints == 0`` dials one endpoint per
    thread (the classic connection-per-client fleet).  Returns
    (elapsed, count, latencies, endpoints-to-inspect).
    """
    blobs = {f"lic-{i}": _blob_for(f"lic-{i}") for i in range(LICENSES)}
    latencies = [[] for _ in range(CLIENTS)]
    requests = [0] * CLIENTS
    failures = []
    barrier = threading.Barrier(CLIENTS + 1)
    endpoints = [make_endpoint() for _ in range(shared_endpoints)]

    def client(index):
        license_id = f"lic-{index % LICENSES}"
        machine = SgxMachine(f"wire-{index}")
        if shared_endpoints:
            endpoint = endpoints[index % shared_endpoints]
        else:
            endpoint = make_endpoint()
            endpoints.append(endpoint)
        try:
            report = machine.local_authority.generate_report(1, 1, nonce=1)
            response = endpoint.call(
                "init",
                InitRequest(slid=None, report=report,
                            platform_secret=machine.platform_secret),
                clock=machine.clock, stats=machine.stats,
            )
            slid = response.slid
            barrier.wait()
            for _ in range(RENEWALS_PER_CLIENT):
                start = time.monotonic()
                renewal = endpoint.call(
                    "renew",
                    RenewRequest(slid=slid, license_id=license_id,
                                 license_blob=blobs[license_id],
                                 network_reliability=1.0, health=1.0),
                    clock=machine.clock,
                )
                latencies[index].append(time.monotonic() - start)
                requests[index] += 1
                if renewal.status is not Status.OK:
                    failures.append((index, renewal.status))
                    return
                endpoint.call(
                    "return_units",
                    (slid, license_id, renewal.granted_units),
                    clock=machine.clock,
                )
                requests[index] += 1
        except Exception as exc:  # noqa: BLE001 - surfaced to the main thread
            failures.append((index, exc))
            try:
                barrier.wait(timeout=1)
            except threading.BrokenBarrierError:
                pass

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(CLIENTS)]
    for thread in threads:
        thread.start()
    try:
        barrier.wait()
    except threading.BrokenBarrierError:
        pass
    start = time.monotonic()
    for thread in threads:
        thread.join(timeout=600)
    elapsed = time.monotonic() - start
    assert not failures, f"client failures: {failures[:3]}"
    flat = sorted(lat for per_client in latencies for lat in per_client)
    return elapsed, sum(requests), flat, endpoints


def _audit_conservation(make_endpoint):
    endpoint = make_endpoint()
    try:
        probe = endpoint.call("ledger_probe", None, clock=Clock())
    finally:
        endpoint.close()
    assert len(probe) == LICENSES
    for license_id, entry in probe.items():
        assert entry["outstanding"] + entry["lost"] + entry["available"] \
            == entry["total"], f"{license_id} leaked units"


def _server_wire_stats(address):
    endpoint = connect("sl://{}:{}".format(*address), timeout_seconds=120.0)
    try:
        return endpoint.call("_server_stats", None, clock=Clock())["wire"]
    finally:
        endpoint.close()


def _quantile(sorted_values, q):
    return sorted_values[min(len(sorted_values) - 1,
                             int(q * len(sorted_values)))]


# ----------------------------------------------------------------------
# The benchmark
# ----------------------------------------------------------------------
def test_v3_batched_renewals_beat_v2_json_by_5x(
    wire_server, benchmark, table_printer
):
    host, port = wire_server

    def measure_config(label, url, shared_endpoints):
        before = _server_wire_stats(wire_server)
        elapsed, count, latencies, endpoints = _drive_crowd(
            lambda: connect(url, timeout_seconds=120.0),
            shared_endpoints=shared_endpoints,
        )
        after = _server_wire_stats(wire_server)
        renewals = CLIENTS * RENEWALS_PER_CLIENT
        negotiated = {
            wire: after["connections_by_wire"].get(wire, 0)
            - before["connections_by_wire"].get(wire, 0)
            for wire in set(before["connections_by_wire"])
            | set(after["connections_by_wire"])
        }
        batching = [endpoint.transport.coalescer for endpoint in endpoints
                    if getattr(endpoint.transport, "coalescer", None)]
        result = {
            "label": label,
            "clients": CLIENTS,
            "requests": count,
            "elapsed_seconds": round(elapsed, 4),
            "requests_per_second": round(count / elapsed, 1),
            "p50_ms": round(_quantile(latencies, 0.50) * 1e3, 2),
            "p99_ms": round(_quantile(latencies, 0.99) * 1e3, 2),
            "bytes_per_renewal": round(
                (after["bytes_decoded"] - before["bytes_decoded"]) / renewals,
                1,
            ),
            "negotiated_connections": {
                wire: delta for wire, delta in sorted(negotiated.items())
                if delta > 0
            },
            "batches_sent": sum(c.batches_sent for c in batching),
            "largest_batch": max(
                (c.largest_batch for c in batching), default=0
            ),
        }
        for endpoint in endpoints:
            endpoint.close()
        _audit_conservation(
            lambda: connect(f"sl://{host}:{port}", timeout_seconds=120.0)
        )
        return result

    def measure():
        json_v2 = measure_config(
            "v2 JSON, connection per client",
            f"sl://{host}:{port}?wire=2", shared_endpoints=0,
        )
        binary_v3 = measure_config(
            f"v3 binary, {SHARED_ENDPOINTS} batching endpoints",
            f"sl+async://{host}:{port}"
            f"?wire=3&batch_window={BATCH_WINDOW}",
            shared_endpoints=SHARED_ENDPOINTS,
        )
        return json_v2, binary_v3

    json_v2, binary_v3 = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = (binary_v3["requests_per_second"]
               / json_v2["requests_per_second"])

    def _bench_row(result):
        return [result["label"], result["requests"],
                f"{result['requests_per_second']:8.1f}",
                f"{result['p50_ms']:7.1f}", f"{result['p99_ms']:7.1f}",
                f"{result['bytes_per_renewal']:7.1f}",
                result["largest_batch"]]

    table_printer(
        f"Wire format + batching: {CLIENTS} clients, {LICENSES} licenses, "
        f"{COMMIT_SECONDS * 1e3:.0f} ms ledger commit"
        + (" [smoke]" if SMOKE else ""),
        ["Configuration", "Requests", "Req/s", "p50 ms", "p99 ms",
         "B/renewal", "Max batch"],
        [
            _bench_row(json_v2),
            _bench_row(binary_v3),
            ["speedup", "", f"{speedup:8.2f}x", "", "", "", ""],
        ],
    )

    # Identical workload either way; the batched path really coalesced
    # and the binary frames really are smaller on the wire.
    assert json_v2["requests"] == binary_v3["requests"] \
        == CLIENTS * RENEWALS_PER_CLIENT * 2
    assert binary_v3["batches_sent"] >= 1
    assert binary_v3["largest_batch"] >= (2 if CLIENTS > 1 else 1)
    assert binary_v3["bytes_per_renewal"] < json_v2["bytes_per_renewal"]

    if not SMOKE:
        payload = {
            "benchmark": "wire_format_batching",
            "smoke": SMOKE,
            "commit_seconds": COMMIT_SECONDS,
            "licenses": LICENSES,
            "renewals_per_client": RENEWALS_PER_CLIENT,
            "batch_window_seconds": BATCH_WINDOW,
            "shared_endpoints": SHARED_ENDPOINTS,
            "baseline_requests_per_second": BASELINE_REQS_PER_SECOND,
            "json_v2": json_v2,
            "binary_v3": binary_v3,
            "speedup_vs_measured_v2": round(speedup, 2),
            "speedup_vs_baseline": round(
                binary_v3["requests_per_second"] / BASELINE_REQS_PER_SECOND,
                2,
            ),
        }
        with open(BENCH_JSON, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        # Acceptance bar: the batched binary wire must clear 5x the
        # async-serving release's 685 req/s on the same client count.
        floor = TARGET_SPEEDUP * BASELINE_REQS_PER_SECOND
        assert binary_v3["requests_per_second"] >= floor, (
            f"batched v3 only {binary_v3['requests_per_second']:.0f} req/s "
            f"(needs {floor:.0f})"
        )
