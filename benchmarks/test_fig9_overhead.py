"""Figure 9: complete performance evaluation.

The paper's headline experiment: each workload runs end to end under
three systems and the overhead over vanilla is reported —

* **F-LaaS**  — SecureLease's partition but F-LaaS's lease logic: a
  remote-attested fetch per token batch (no trusted local cache);
* **Glamdring** — Glamdring's partition with SecureLease-style leases;
* **SecureLease** — partition + SL-Local local attestation + adaptive
  renewal.

Paper results: SecureLease outperforms F-LaaS by 66.34 % on average
(~99 % fewer remote attestations) and Glamdring by 19.55 %; local
allocation is <1 % of lease-renewal time.

Fixed per-event latencies (RA, local attestation) are scaled by 1e-3 to
match the reproduction's ~1000x-shorter workloads (see
``repro.sgx.costs.scaled_latency_costs``); all three systems use the
same model, so the comparison is unaffected.
"""

from __future__ import annotations

import statistics

import pytest

from repro.deployment import FlaasLeaseManager, SecureLeaseDeployment
from repro.net.network import NetworkConditions
from repro.partition import GlamdringPartitioner
from repro.sgx import scaled_latency_costs
from repro.workloads import all_workloads

SCALE = 0.3
COSTS = scaled_latency_costs(1e-3)
NETWORK = NetworkConditions(round_trip_seconds=50e-6)


def run_system(workload, system: str):
    deployment = SecureLeaseDeployment(seed=47, costs=COSTS, network=NETWORK)
    blob = deployment.issue_license(workload.license_id, total_units=10**9)
    kwargs = {"scale": SCALE, "license_blob": blob}
    if system == "flaas":
        kwargs["lease_manager"] = FlaasLeaseManager(
            workload.name, deployment.machine, deployment.ras,
            deployment.remote,
        )
    elif system == "glamdring":
        kwargs["partitioner"] = GlamdringPartitioner()
    run = deployment.run_workload(workload, **kwargs)
    assert run.result["status"] == "OK", (workload.name, system, run.result)
    return run


def regenerate_fig9():
    rows = []
    flaas_improvements = []
    glam_improvements = []
    ra_reductions = []
    for name, workload in all_workloads().items():
        vanilla_cycles = workload.run_profiled(scale=SCALE).cycles
        secure = run_system(workload, "securelease")
        flaas = run_system(workload, "flaas")
        glam = run_system(workload, "glamdring")
        flaas_improvements.append((flaas.cycles - secure.cycles) / flaas.cycles)
        glam_improvements.append((glam.cycles - secure.cycles) / glam.cycles)
        ra_reductions.append(
            1 - secure.remote_attestations / max(flaas.remote_attestations, 1)
        )
        rows.append([
            name,
            f"{flaas.cycles / vanilla_cycles:8.2f}x",
            f"{glam.cycles / vanilla_cycles:8.2f}x",
            f"{secure.cycles / vanilla_cycles:8.2f}x",
            flaas.remote_attestations,
            secure.remote_attestations,
        ])
    return (rows, statistics.mean(flaas_improvements),
            statistics.mean(glam_improvements), statistics.mean(ra_reductions))


def test_fig9_overhead_comparison(benchmark, table_printer):
    rows, vs_flaas, vs_glam, ra_reduction = benchmark.pedantic(
        regenerate_fig9, rounds=1, iterations=1
    )
    table_printer(
        "Figure 9: end-to-end slowdown over vanilla",
        ["Workload", "F-LaaS", "Glamdring", "SecureLease",
         "F-LaaS RAs", "SLease RAs"],
        rows,
    )
    print(f"\nSecureLease vs F-LaaS:    {vs_flaas:.2%} faster (paper: 66.34%)")
    print(f"SecureLease vs Glamdring: {vs_glam:.2%} faster (paper: 19.55%)")
    print(f"Remote attestation reduction: {ra_reduction:.2%} (paper: ~99%)")

    assert vs_flaas > 0.5          # the paper's 66.34 % regime
    assert vs_glam > 0.05          # the paper's 19.55 % regime
    assert ra_reduction > 0.9      # the paper's ~99 %
    # SecureLease wins on every single workload against F-LaaS.
    for row in rows:
        assert float(row[3].rstrip("x")) <= float(row[1].rstrip("x"))


def test_fig9_local_alloc_vs_renewal_breakdown(benchmark, table_printer):
    """The figure's annotation: local allocation takes <1 % of the
    lease-renewal time (a renewal includes the network round trip)."""

    def measure():
        # Unscaled costs and one token per attestation: every check is
        # a genuine local-attestation round, and the renewal carries
        # the real 50 ms network RTT.
        deployment = SecureLeaseDeployment(seed=53,
                                           tokens_per_attestation=1)
        deployment.issue_license("lic-breakdown", total_units=10**9)
        manager = deployment.manager_for("breakdown-app")
        manager.load_license(
            "lic-breakdown",
            deployment.remote.license_definition("lic-breakdown").license_blob(),
        )
        clock = deployment.machine.clock

        start = clock.cycles
        manager.check("lic-breakdown")  # includes the remote renewal
        renewal_cycles = clock.cycles - start

        start = clock.cycles
        for _ in range(9):
            manager.check("lic-breakdown")  # pure local allocations
        local_cycles = (clock.cycles - start) / 9
        return local_cycles, renewal_cycles

    local_cycles, renewal_cycles = benchmark(measure)
    ratio = local_cycles / renewal_cycles
    table_printer(
        "Figure 9 inset: local allocation vs lease renewal",
        ["Path", "Cycles"],
        [["Lease renewal (incl. network)", f"{renewal_cycles:,.0f}"],
         ["Local allocation", f"{local_cycles:,.0f}"]],
    )
    print(f"\nLocal allocation / renewal = {ratio:.2%} (paper: <1%)")
    assert ratio < 0.05
