"""Scalability benchmark: the partitioning pipeline on large programs.

The Table 4 workloads have 7-11 functions each; real plugin hosts have
hundreds (the paper cites VS Code's 30,000+ extensions).  This bench
synthesizes programs an order of magnitude larger and measures the
whole pipeline — profile, cluster, partition, evaluate — asserting that
the security and budget invariants survive scale and that wall-clock
cost stays tractable.
"""

from __future__ import annotations

import time

import pytest

from repro.callgraph.cfg import CallGraph
from repro.callgraph.synthesis import SynthesisSpec, synthesize_program
from repro.partition import PartitionEvaluator, SecureLeasePartitioner
from repro.partition.base import trusted_working_set
from repro.sgx.costs import EPC_SIZE_BYTES
from repro.sim.clock import Clock
from repro.sim.rng import DeterministicRng
from repro.vcpu.machine import VirtualCpu
from repro.vcpu.tracer import Tracer


def pipeline(n_modules: int, seed: int = 5):
    spec = SynthesisSpec(
        n_modules=n_modules,
        functions_per_module=(4, 8),
        intra_calls=(5, 40),
    )
    program = synthesize_program(spec, DeterministicRng(seed))
    cpu = VirtualCpu(program, Clock())
    tracer = Tracer(program)
    cpu.add_observer(tracer)
    result = cpu.run()
    profile = tracer.profile()
    graph = CallGraph.from_profile(program, profile)
    partition = SecureLeasePartitioner().partition(program, graph, profile)
    report = PartitionEvaluator().evaluate(program, graph, profile, partition)
    return program, partition, report


def regenerate_scalability():
    rows = []
    for n_modules in (4, 8, 16, 24):
        start = time.perf_counter()
        program, partition, report = pipeline(n_modules)
        wall = time.perf_counter() - start
        keys_ok = set(program.key_functions()) <= partition.trusted
        rows.append([
            n_modules,
            len(program.functions),
            len(partition.trusted),
            report.ecalls + report.ocalls,
            f"{report.slowdown:.2f}x",
            "yes" if keys_ok else "NO",
            f"{wall * 1e3:.0f} ms",
        ])
    return rows


def test_partitioning_scales(benchmark, table_printer):
    rows = benchmark.pedantic(regenerate_scalability, rounds=1, iterations=1)
    table_printer(
        "Scalability: synthesized programs (modules -> functions)",
        ["Modules", "Functions", "Migrated", "Boundary calls",
         "Slowdown", "Keys migrated", "Pipeline wall time"],
        rows,
    )
    for row in rows:
        assert row[5] == "yes"
        # Boundary traffic stays small even on big graphs.
        assert row[3] < 200
    # The largest pipeline still completes in seconds on the host.
    assert float(rows[-1][6].rstrip(" ms")) < 60_000


def test_budget_invariant_at_scale(benchmark):
    def measure():
        _, partition, _ = pipeline(n_modules=16, seed=11)
        return partition.estimated_memory_bytes

    memory = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert memory <= EPC_SIZE_BYTES
