"""Security quantification: the attacker's handicap per workload.

Section 6.1 argues that after a CFB bend the attacker holds a
"rendered handicapped" binary.  This bench quantifies that claim with
the :mod:`repro.partition.security` metrics across all 11 workloads and
compares SecureLease against the do-nothing and AM-only deployments.
"""

from __future__ import annotations

import pytest

from repro.partition import SecureLeasePartitioner
from repro.partition.base import Partition
from repro.partition.security import analyze_handicap
from repro.workloads import all_workloads

SCALE = 0.3


def regenerate_handicap():
    rows = []
    for name, workload in all_workloads().items():
        run = workload.run_profiled(scale=SCALE)
        unprotected = Partition(scheme="none", program_name=name,
                                trusted=set())
        am_only = Partition(
            scheme="am-only", program_name=name,
            trusted=set(run.program.auth_functions()),
        )
        secure = SecureLeasePartitioner().partition(
            run.program, run.graph, run.profile
        )
        none_report = analyze_handicap(run.program, run.profile, unprotected)
        am_report = analyze_handicap(run.program, run.profile, am_only)
        secure_report = analyze_handicap(run.program, run.profile, secure)
        rows.append([
            name,
            f"{none_report.attacker_coverage:.0%}",
            f"{am_report.attacker_coverage:.0%}",
            f"{secure_report.attacker_coverage:.0%}",
            f"{secure_report.key_coverage:.0%}",
        ])
    return rows


def test_security_handicap(benchmark, table_printer):
    rows = benchmark(regenerate_handicap)
    table_printer(
        "Attacker's post-bend instruction coverage by deployment",
        ["Workload", "Unprotected", "AM-only in SGX", "SecureLease",
         "Key fns kept (SLease)"],
        rows,
    )
    for row in rows:
        unprotected = float(row[1].rstrip("%"))
        am_only = float(row[2].rstrip("%"))
        secure = float(row[3].rstrip("%"))
        # Unprotected and AM-only leave the attacker the whole app
        # (the AM is not lease-gated; bending simply routes around it).
        assert unprotected == 100.0
        assert am_only == 100.0
        # SecureLease strips the key functions entirely...
        assert row[4] == "0%"
        # ...and a large share of the work with them.
        assert secure < 100.0
