"""Table 1: ``find()`` latency of the lease-store alternatives.

Paper rows (latency in us for N lease operations):

    ============  ====  ====  =====  =====
    Technique       10   100  1,000  5,000
    ============  ====  ====  =====  =====
    Murmur Hash     40    52    144    440
    SHA-256        149   182    742  1,803
    Tree            26    33     61    184
    ============  ====  ====  =====  =====

Expected shape: tree < Murmur < SHA-256 at every operation count, with
the gap widening as the count grows.
"""

from __future__ import annotations

import pytest

from repro.core.gcl import Gcl
from repro.core.lease_store import (
    MurmurLeaseStore,
    Sha256LeaseStore,
    TreeLeaseStore,
)
from repro.crypto.keys import KeyGenerator
from repro.sim.clock import Clock, cycles_to_micros
from repro.sim.rng import DeterministicRng

OP_COUNTS = (10, 100, 1_000, 5_000)
#: Fixed batch-entry cost (the initial ECALL into SL-Local) included in
#: Table 1's absolute numbers.
BATCH_ENTRY_CYCLES = 17_800


def build_store(cls, clock, n_leases):
    if cls is TreeLeaseStore:
        store = TreeLeaseStore(clock, KeyGenerator(DeterministicRng(1)))
    else:
        store = cls(clock)
    for lease_id in range(n_leases):
        store.insert(lease_id, Gcl.count_based(f"lic-{lease_id}", 5))
    return store


def measure_find_micros(cls, n_ops: int) -> float:
    """Virtual latency of ``n_ops`` find() calls, in microseconds."""
    clock = Clock()
    store = build_store(cls, clock, n_leases=n_ops)
    start = clock.cycles
    clock.advance(BATCH_ENTRY_CYCLES)
    for i in range(n_ops):
        store.find(i)
    return cycles_to_micros(clock.cycles - start)


def regenerate_table1():
    rows = []
    for cls, label in ((MurmurLeaseStore, "Murmur Hash"),
                       (Sha256LeaseStore, "SHA-256"),
                       (TreeLeaseStore, "Tree")):
        row = [label]
        for n_ops in OP_COUNTS:
            row.append(f"{measure_find_micros(cls, n_ops):.0f} us")
        rows.append(row)
    return rows


def test_table1_lookup_latency(benchmark, table_printer):
    rows = benchmark(regenerate_table1)
    table_printer(
        "Table 1: lease lookup latency (virtual us per N ops)",
        ["Technique", *[f"{n:,}" for n in OP_COUNTS]],
        rows,
    )
    # Shape assertions: tree wins everywhere; ordering is stable.
    for i, n_ops in enumerate(OP_COUNTS):
        murmur = measure_find_micros(MurmurLeaseStore, n_ops)
        sha = measure_find_micros(Sha256LeaseStore, n_ops)
        tree = measure_find_micros(TreeLeaseStore, n_ops)
        assert tree < murmur < sha
    # The gap widens with the operation count.
    gap_small = (measure_find_micros(Sha256LeaseStore, 10)
                 - measure_find_micros(TreeLeaseStore, 10))
    gap_large = (measure_find_micros(Sha256LeaseStore, 5_000)
                 - measure_find_micros(TreeLeaseStore, 5_000))
    assert gap_large > 10 * gap_small


def test_table1_memory_footprint_advantage(benchmark, table_printer):
    """Companion claim (Section 5.2.3): the tree beats hash/array
    designs by up to 94 % in memory footprint once cold leases are
    offloaded."""

    def measure():
        clock = Clock()
        tree = build_store(TreeLeaseStore, clock, 5_000)
        murmur = build_store(MurmurLeaseStore, Clock(), 5_000)
        for lease_id in range(5_000):
            tree.tree.commit_lease(lease_id)
        return tree.resident_bytes(), murmur.resident_bytes()

    tree_bytes, murmur_bytes = benchmark(measure)
    saving = 1 - tree_bytes / murmur_bytes
    table_printer(
        "Table 1 companion: resident memory at 5,000 leases",
        ["Technique", "Resident bytes", "Saving vs hash"],
        [
            ["Tree (evicted)", f"{tree_bytes:,}", f"{saving:.1%}"],
            ["Murmur Hash", f"{murmur_bytes:,}", "-"],
        ],
    )
    assert saving > 0.90
