"""Fleet-scale TCP load: one serialized server vs a sharded fleet.

The sharding release's headline claim, measured end to end over real
sockets: a single SL-Remote that serializes every request behind one
lock (the pre-sharding server, ``--serialize-dispatch``) is bounded by
the durable ledger commit — every grant pays ``--ledger-commit-seconds``
inside the global critical section, one at a time.  Per-license locking
plus consistent-hash sharding lets commits for *different* licenses
overlap, so a multi-license workload scales with the number of licenses
in flight instead of queueing world-wide.

The harness starts real ``repro.cli serve-remote`` subprocesses (one
``--serialize-dispatch`` baseline; N ``--shard-of i:N`` shard workers),
drives a crowd of concurrent client threads through raw TCP endpoints,
and reports requests/s plus p50/p99 client-observed latency.  Every run
ends with a fleet-wide ``ledger_probe`` audit: units granted, returned,
and outstanding must balance each license's pool exactly — speed that
loses units would be a non-result.

``SL_LOAD_SMOKE=1`` shrinks the crowd (16 clients, 2 shards) for CI;
the >= 2x speedup assertion only applies at full scale.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time

import pytest

from repro.core.protocol import InitRequest, RenewRequest, Status
from repro.net.rpc import connect_tcp
from repro.net.sharding import HashRing, connect_sharded_tcp, \
    default_shard_names
from repro.sgx import SgxMachine
from repro.sim.clock import Clock

SMOKE = bool(os.environ.get("SL_LOAD_SMOKE"))

CLIENTS = 16 if SMOKE else 100
SHARDS = 2 if SMOKE else 4
LICENSES = 4 if SMOKE else 8
RENEWALS_PER_CLIENT = 2 if SMOKE else 4
COMMIT_SECONDS = 0.01 if SMOKE else 0.02
POOL = 10**9

MARKER = "SL-Remote listening on "
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


# ----------------------------------------------------------------------
# Server-process harness
# ----------------------------------------------------------------------
def _license_args():
    return [arg
            for index in range(LICENSES)
            for arg in ("--license", f"lic-{index}:{POOL}")]


def _spawn_server(extra_args):
    """Start one serve-remote subprocess; returns (process, (host, port))."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    command = [
        sys.executable, "-m", "repro.cli", "serve-remote",
        "--port", "0", "--accept-any-platform",
        "--ledger-commit-seconds", str(COMMIT_SECONDS),
        *_license_args(), *extra_args,
    ]
    process = subprocess.Popen(command, stdout=subprocess.PIPE,
                               stderr=subprocess.STDOUT, text=True, env=env)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        if line.startswith(MARKER):
            host, port = line[len(MARKER):].strip().rsplit(":", 1)
            return process, (host, int(port))
    process.kill()
    raise RuntimeError("serve-remote subprocess never reported its port")


def _stop(processes):
    for process in processes:
        process.terminate()
    for process in processes:
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()


@pytest.fixture
def baseline_server():
    process, address = _spawn_server(["--serialize-dispatch"])
    yield address
    _stop([process])


@pytest.fixture
def shard_fleet():
    processes, addresses = [], []
    try:
        for index in range(SHARDS):
            process, address = _spawn_server(
                ["--shard-of", f"{index}:{SHARDS}"]
            )
            processes.append(process)
            addresses.append(address)
        yield addresses
    finally:
        _stop(processes)


# ----------------------------------------------------------------------
# Client crowd
# ----------------------------------------------------------------------
def _blob_for(license_id):
    """Clients rebuild the license blob the servers mint (same vendor
    secret) instead of reaching into another process's memory."""
    from repro.core.licensefile import VENDOR_SECRET, mint_license_blob

    return mint_license_blob(license_id, VENDOR_SECRET)


def _drive_crowd(make_endpoint):
    """CLIENTS threads: init once, then renew/return in a tight loop.

    Each renewal's units are returned straight away so the next renewal
    grants again (and therefore pays the durable commit) — the workload
    stays commit-bound for its whole duration, which is the regime the
    lock-granularity comparison is about.  Returns (elapsed_seconds,
    request_count, sorted_latencies).
    """
    blobs = {f"lic-{i}": _blob_for(f"lic-{i}") for i in range(LICENSES)}
    latencies = [[] for _ in range(CLIENTS)]
    requests = [0] * CLIENTS
    failures = []
    barrier = threading.Barrier(CLIENTS + 1)

    def client(index):
        license_id = f"lic-{index % LICENSES}"
        machine = SgxMachine(f"load-{index}")
        endpoint = make_endpoint()
        try:
            report = machine.local_authority.generate_report(1, 1, nonce=1)
            response = endpoint.call(
                "init",
                InitRequest(slid=None, report=report,
                            platform_secret=machine.platform_secret),
                clock=machine.clock, stats=machine.stats,
            )
            slid = response.slid
            barrier.wait()
            for _ in range(RENEWALS_PER_CLIENT):
                start = time.monotonic()
                renewal = endpoint.call(
                    "renew",
                    RenewRequest(slid=slid, license_id=license_id,
                                 license_blob=blobs[license_id],
                                 network_reliability=1.0, health=1.0),
                    clock=machine.clock,
                )
                latencies[index].append(time.monotonic() - start)
                requests[index] += 1
                if renewal.status is not Status.OK:
                    failures.append((index, renewal.status))
                    return
                endpoint.call(
                    "return_units",
                    (slid, license_id, renewal.granted_units),
                    clock=machine.clock,
                )
                requests[index] += 1
        except Exception as exc:  # noqa: BLE001 - surfaced to the main thread
            failures.append((index, exc))
            try:
                barrier.wait(timeout=1)
            except threading.BrokenBarrierError:
                pass
        finally:
            endpoint.close()

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(CLIENTS)]
    for thread in threads:
        thread.start()
    barrier.wait()  # all clients initialized; the clock starts now
    start = time.monotonic()
    for thread in threads:
        thread.join(timeout=600)
    elapsed = time.monotonic() - start
    assert not failures, f"client failures: {failures[:3]}"
    flat = sorted(lat for per_client in latencies for lat in per_client)
    return elapsed, sum(requests), flat


def _audit_conservation(make_endpoint):
    """Fleet-wide ledger probe: every pool must balance exactly."""
    endpoint = make_endpoint()
    try:
        probe = endpoint.call("ledger_probe", None, clock=Clock())
    finally:
        endpoint.close()
    assert len(probe) == LICENSES
    for license_id, entry in probe.items():
        assert entry["outstanding"] + entry["lost"] + entry["available"] \
            == entry["total"], f"{license_id} leaked units"


def _quantile(sorted_values, q):
    return sorted_values[min(len(sorted_values) - 1,
                             int(q * len(sorted_values)))]


def _row(label, elapsed, count, latencies):
    return [label, count, f"{count / elapsed:8.1f}",
            f"{_quantile(latencies, 0.50) * 1e3:7.1f}",
            f"{_quantile(latencies, 0.99) * 1e3:7.1f}"]


# ----------------------------------------------------------------------
# The benchmark
# ----------------------------------------------------------------------
def test_sharded_fleet_outscales_serialized_server(
    baseline_server, shard_fleet, benchmark, table_printer
):
    def measure():
        base_elapsed, base_count, base_lat = _drive_crowd(
            lambda: connect_tcp(*baseline_server, timeout_seconds=120.0)
        )
        _audit_conservation(
            lambda: connect_tcp(*baseline_server, timeout_seconds=120.0)
        )
        fleet_elapsed, fleet_count, fleet_lat = _drive_crowd(
            lambda: connect_sharded_tcp(shard_fleet, timeout_seconds=120.0)
        )
        _audit_conservation(
            lambda: connect_sharded_tcp(shard_fleet, timeout_seconds=120.0)
        )
        return (base_elapsed, base_count, base_lat,
                fleet_elapsed, fleet_count, fleet_lat)

    (base_elapsed, base_count, base_lat,
     fleet_elapsed, fleet_count, fleet_lat) = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    speedup = (fleet_count / fleet_elapsed) / (base_count / base_elapsed)
    table_printer(
        f"TCP server load: {CLIENTS} clients, {LICENSES} licenses, "
        f"{COMMIT_SECONDS * 1e3:.0f} ms ledger commit"
        + (" [smoke]" if SMOKE else ""),
        ["Configuration", "Requests", "Req/s", "p50 ms", "p99 ms"],
        [
            _row("1 server, global lock", base_elapsed, base_count, base_lat),
            _row(f"{SHARDS} shards, per-license locks",
                 fleet_elapsed, fleet_count, fleet_lat),
            ["speedup", "", f"{speedup:8.2f}x", "", ""],
        ],
    )
    # Both configurations served the identical workload.
    assert base_count == fleet_count == CLIENTS * RENEWALS_PER_CLIENT * 2
    if not SMOKE:
        # The acceptance bar: commits overlapping across licenses and
        # shards must at least double throughput on this workload.
        assert speedup >= 2.0, f"sharded fleet only {speedup:.2f}x faster"
