"""Fleet-scale TCP load: one serialized server vs a sharded fleet.

The sharding release's headline claim, measured end to end over real
sockets: a single SL-Remote that serializes every request behind one
lock (the pre-sharding server, ``--serialize-dispatch``) is bounded by
the durable ledger commit — every grant pays ``--ledger-commit-seconds``
inside the global critical section, one at a time.  Per-license locking
plus consistent-hash sharding lets commits for *different* licenses
overlap, so a multi-license workload scales with the number of licenses
in flight instead of queueing world-wide.

The harness starts real ``repro.cli serve-remote`` subprocesses (one
``--serialize-dispatch`` baseline; N ``--shard-of i:N`` shard workers),
drives a crowd of concurrent client threads through raw TCP endpoints,
and reports requests/s plus p50/p99 client-observed latency.  Every run
ends with a fleet-wide ``ledger_probe`` audit: units granted, returned,
and outstanding must balance each license's pool exactly — speed that
loses units would be a non-result.

``SL_LOAD_SMOKE=1`` shrinks the crowd (16 clients, 2 shards) for CI;
the >= 2x speedup assertion only applies at full scale.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.core.protocol import InitRequest, RenewRequest, Status
from repro.net.endpoint import connect, endpoint_for
from repro.net.sharding import HashRing, default_shard_names
from repro.sgx import SgxMachine
from repro.sim.clock import Clock

SMOKE = bool(os.environ.get("SL_LOAD_SMOKE"))

CLIENTS = 16 if SMOKE else 100
SHARDS = 2 if SMOKE else 4
LICENSES = 4 if SMOKE else 8
RENEWALS_PER_CLIENT = 2 if SMOKE else 4
COMMIT_SECONDS = 0.01 if SMOKE else 0.02
POOL = 10**9
#: The idle-fleet regime for the threads-vs-async comparison: mostly
#: dormant SL-Locals holding their connection open between renewals.
IDLE_CONNECTIONS = 50 if SMOKE else 1000

MARKER = "SL-Remote listening on "
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


# ----------------------------------------------------------------------
# Server-process harness
# ----------------------------------------------------------------------
def _license_args():
    return [arg
            for index in range(LICENSES)
            for arg in ("--license", f"lic-{index}:{POOL}")]


def _spawn_server(extra_args):
    """Start one serve-remote subprocess; returns (process, (host, port))."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    command = [
        sys.executable, "-m", "repro.cli", "serve-remote",
        "--port", "0", "--accept-any-platform",
        "--ledger-commit-seconds", str(COMMIT_SECONDS),
        *_license_args(), *extra_args,
    ]
    process = subprocess.Popen(command, stdout=subprocess.PIPE,
                               stderr=subprocess.STDOUT, text=True, env=env)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        if line.startswith(MARKER):
            host, port = line[len(MARKER):].strip().rsplit(":", 1)
            return process, (host, int(port))
    process.kill()
    raise RuntimeError("serve-remote subprocess never reported its port")


def _stop(processes):
    for process in processes:
        process.terminate()
    for process in processes:
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()


@pytest.fixture
def baseline_server():
    process, address = _spawn_server(["--serialize-dispatch"])
    yield address
    _stop([process])


@pytest.fixture
def shard_fleet():
    processes, addresses = [], []
    try:
        for index in range(SHARDS):
            process, address = _spawn_server(
                ["--shard-of", f"{index}:{SHARDS}"]
            )
            processes.append(process)
            addresses.append(address)
        yield addresses
    finally:
        _stop(processes)


# ----------------------------------------------------------------------
# Client crowd
# ----------------------------------------------------------------------
def _blob_for(license_id):
    """Clients rebuild the license blob the servers mint (same vendor
    secret) instead of reaching into another process's memory."""
    from repro.core.licensefile import VENDOR_SECRET, mint_license_blob

    return mint_license_blob(license_id, VENDOR_SECRET)


def _drive_crowd(make_endpoint, clients: int = CLIENTS):
    """``clients`` threads: init once, then renew/return in a tight loop.

    Each renewal's units are returned straight away so the next renewal
    grants again (and therefore pays the durable commit) — the workload
    stays commit-bound for its whole duration, which is the regime the
    lock-granularity comparison is about.  Returns (elapsed_seconds,
    request_count, sorted_latencies).
    """
    blobs = {f"lic-{i}": _blob_for(f"lic-{i}") for i in range(LICENSES)}
    latencies = [[] for _ in range(clients)]
    requests = [0] * clients
    failures = []
    barrier = threading.Barrier(clients + 1)

    def client(index):
        license_id = f"lic-{index % LICENSES}"
        machine = SgxMachine(f"load-{index}")
        endpoint = make_endpoint()
        try:
            report = machine.local_authority.generate_report(1, 1, nonce=1)
            response = endpoint.call(
                "init",
                InitRequest(slid=None, report=report,
                            platform_secret=machine.platform_secret),
                clock=machine.clock, stats=machine.stats,
            )
            slid = response.slid
            barrier.wait()
            for _ in range(RENEWALS_PER_CLIENT):
                start = time.monotonic()
                renewal = endpoint.call(
                    "renew",
                    RenewRequest(slid=slid, license_id=license_id,
                                 license_blob=blobs[license_id],
                                 network_reliability=1.0, health=1.0),
                    clock=machine.clock,
                )
                latencies[index].append(time.monotonic() - start)
                requests[index] += 1
                if renewal.status is not Status.OK:
                    failures.append((index, renewal.status))
                    return
                endpoint.call(
                    "return_units",
                    (slid, license_id, renewal.granted_units),
                    clock=machine.clock,
                )
                requests[index] += 1
        except Exception as exc:  # noqa: BLE001 - surfaced to the main thread
            failures.append((index, exc))
            try:
                barrier.wait(timeout=1)
            except threading.BrokenBarrierError:
                pass
        finally:
            endpoint.close()

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(clients)]
    for thread in threads:
        thread.start()
    try:
        barrier.wait()  # all clients initialized; the clock starts now
    except threading.BrokenBarrierError:
        # A client died during init; join everyone so ``failures`` below
        # reports the real exception instead of the broken barrier.
        pass
    start = time.monotonic()
    for thread in threads:
        thread.join(timeout=600)
    elapsed = time.monotonic() - start
    root_causes = [f for f in failures
                   if not isinstance(f[1], threading.BrokenBarrierError)]
    assert not failures, f"client failures: {(root_causes or failures)[:3]}"
    flat = sorted(lat for per_client in latencies for lat in per_client)
    return elapsed, sum(requests), flat


def _audit_conservation(make_endpoint):
    """Fleet-wide ledger probe: every pool must balance exactly."""
    endpoint = make_endpoint()
    try:
        probe = endpoint.call("ledger_probe", None, clock=Clock())
    finally:
        endpoint.close()
    assert len(probe) == LICENSES
    for license_id, entry in probe.items():
        assert entry["outstanding"] + entry["lost"] + entry["available"] \
            == entry["total"], f"{license_id} leaked units"


def _quantile(sorted_values, q):
    return sorted_values[min(len(sorted_values) - 1,
                             int(q * len(sorted_values)))]


def _row(label, elapsed, count, latencies):
    return [label, count, f"{count / elapsed:8.1f}",
            f"{_quantile(latencies, 0.50) * 1e3:7.1f}",
            f"{_quantile(latencies, 0.99) * 1e3:7.1f}"]


# ----------------------------------------------------------------------
# The benchmark
# ----------------------------------------------------------------------
def test_sharded_fleet_outscales_serialized_server(
    baseline_server, shard_fleet, benchmark, table_printer
):
    def measure():
        base_elapsed, base_count, base_lat = _drive_crowd(
            lambda: connect(endpoint_for([baseline_server]), timeout_seconds=120.0)
        )
        _audit_conservation(
            lambda: connect(endpoint_for([baseline_server]), timeout_seconds=120.0)
        )
        fleet_elapsed, fleet_count, fleet_lat = _drive_crowd(
            lambda: connect(endpoint_for(shard_fleet), timeout_seconds=120.0)
        )
        _audit_conservation(
            lambda: connect(endpoint_for(shard_fleet), timeout_seconds=120.0)
        )
        return (base_elapsed, base_count, base_lat,
                fleet_elapsed, fleet_count, fleet_lat)

    (base_elapsed, base_count, base_lat,
     fleet_elapsed, fleet_count, fleet_lat) = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    speedup = (fleet_count / fleet_elapsed) / (base_count / base_elapsed)
    table_printer(
        f"TCP server load: {CLIENTS} clients, {LICENSES} licenses, "
        f"{COMMIT_SECONDS * 1e3:.0f} ms ledger commit"
        + (" [smoke]" if SMOKE else ""),
        ["Configuration", "Requests", "Req/s", "p50 ms", "p99 ms"],
        [
            _row("1 server, global lock", base_elapsed, base_count, base_lat),
            _row(f"{SHARDS} shards, per-license locks",
                 fleet_elapsed, fleet_count, fleet_lat),
            ["speedup", "", f"{speedup:8.2f}x", "", ""],
        ],
    )
    # Both configurations served the identical workload.
    assert base_count == fleet_count == CLIENTS * RENEWALS_PER_CLIENT * 2
    if not SMOKE:
        # The acceptance bar: commits overlapping across licenses and
        # shards must at least double throughput on this workload.
        assert speedup >= 2.0, f"sharded fleet only {speedup:.2f}x faster"


# ----------------------------------------------------------------------
# Idle-connection scaling: thread-per-connection vs one event loop
# ----------------------------------------------------------------------
# The async-serving release's headline claim: a fleet is mostly idle
# (SL-Locals hold their connection open between sub-GCL renewals), and
# the thread-per-connection server pays one resident OS thread per idle
# socket while the event-loop server pays none.  This benchmark parks
# IDLE_CONNECTIONS dormant sockets on each server, then drives the
# standard renew/return crowd through it and compares req/s, latency,
# and the server's resident thread count — with the same exact-ledger
# audit as every other run.  Full-scale numbers are persisted to
# BENCH_server_async.json at the repo root.

BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_server_async.json")


def _hold_idle_connections(address, count):
    """Open ``count`` sockets and keep them dormant (no frames sent)."""
    sockets = []
    try:
        for _ in range(count):
            for _attempt in range(40):
                try:
                    sockets.append(socket.create_connection(address,
                                                            timeout=10))
                    break
                except OSError:
                    time.sleep(0.05)
            else:
                raise RuntimeError("could not open an idle connection")
    except Exception:
        for sock in sockets:
            sock.close()
        raise
    return sockets


def _server_stats(address):
    endpoint = connect(endpoint_for([address]), timeout_seconds=120.0)
    try:
        return endpoint.call("_server_stats", None, clock=Clock())
    finally:
        endpoint.close()


def test_async_server_holds_idle_fleet_at_threaded_throughput(
    benchmark, table_printer
):
    def measure_io(io):
        # Size the executor to the *active-request* concurrency, one
        # slot per in-flight blocking handler: renew handlers sleep
        # COMMIT_SECONDS inside a per-license lock, so a small pool
        # convoys on lock collisions while other licenses sit idle.
        # That is the async claim in one knob — threads proportional to
        # active load (100), zero per idle connection (1000) — where
        # thread-per-connection pays for both.
        process, address = _spawn_server(
            ["--io", io, "--max-workers", str(CLIENTS)]
        )
        try:
            idle = _hold_idle_connections(address, IDLE_CONNECTIONS)
            try:
                # Let the last accepts land before measuring.
                deadline = time.monotonic() + 30
                while (_server_stats(address)["connections_accepted"]
                        < IDLE_CONNECTIONS
                        and time.monotonic() < deadline):
                    time.sleep(0.1)
                elapsed, count, latencies = _drive_crowd(
                    lambda: connect(endpoint_for([address]), timeout_seconds=120.0)
                )
                stats = _server_stats(address)  # idle fleet still parked
            finally:
                for sock in idle:
                    sock.close()
            _audit_conservation(
                lambda: connect(endpoint_for([address]), timeout_seconds=120.0)
            )
            return {
                "io": stats["io"],
                "idle_connections": IDLE_CONNECTIONS,
                "active_clients": CLIENTS,
                "requests": count,
                "elapsed_seconds": round(elapsed, 4),
                "requests_per_second": round(count / elapsed, 1),
                "p50_ms": round(_quantile(latencies, 0.50) * 1e3, 2),
                "p99_ms": round(_quantile(latencies, 0.99) * 1e3, 2),
                "resident_threads": stats["resident_threads"],
            }
        finally:
            _stop([process])

    def measure():
        return measure_io("threads"), measure_io("async")

    threaded, evented = benchmark.pedantic(measure, rounds=1, iterations=1)

    def _idle_row(result):
        return [f"--io {result['io']}", result["requests"],
                f"{result['requests_per_second']:8.1f}",
                f"{result['p50_ms']:7.1f}", f"{result['p99_ms']:7.1f}",
                result["resident_threads"]]

    table_printer(
        f"Idle-fleet scaling: {IDLE_CONNECTIONS} idle + {CLIENTS} active "
        f"clients, {COMMIT_SECONDS * 1e3:.0f} ms ledger commit"
        + (" [smoke]" if SMOKE else ""),
        ["Configuration", "Requests", "Req/s", "p50 ms", "p99 ms",
         "Server threads"],
        [_idle_row(threaded), _idle_row(evented)],
    )

    if not SMOKE:
        # Smoke runs must not clobber the committed full-scale numbers.
        payload = {
            "benchmark": "idle_connection_scaling",
            "smoke": SMOKE,
            "commit_seconds": COMMIT_SECONDS,
            "licenses": LICENSES,
            "renewals_per_client": RENEWALS_PER_CLIENT,
            "threads": threaded,
            "async": evented,
        }
        with open(BENCH_JSON, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")

    # Identical workload on both IO models.
    assert threaded["requests"] == evented["requests"] \
        == CLIENTS * RENEWALS_PER_CLIENT * 2
    # The structural claim holds at any scale: thread-per-connection
    # pays a resident thread per idle socket; the event loop pays only
    # for the executor (sized to active clients) plus bookkeeping,
    # nothing per idle connection.
    assert threaded["resident_threads"] >= IDLE_CONNECTIONS
    assert evented["resident_threads"] <= CLIENTS + 10
    if not SMOKE:
        # Acceptance bar: holding 1000 idle connections must not cost
        # throughput against the threaded server at 100 active clients.
        ratio = (evented["requests_per_second"]
                 / threaded["requests_per_second"])
        assert ratio >= 0.9, f"async only {ratio:.2f}x of threaded req/s"
