"""Server-load benchmark: "SL-Local does the heavy lifting".

Section 5.8's design-benefit claims, measured: how many server round
trips (renewals + attestations) does SL-Remote serve per thousand
application license checks, under SecureLease's caching versus the
F-LaaS lease logic?  The paper's point is that pre-distribution makes
server load a function of *sub-GCL exhaustion*, not of check volume —
which is what lets one SL-Remote carry a fleet.
"""

from __future__ import annotations

import pytest

from repro.deployment import FlaasLeaseManager, SecureLeaseDeployment
from repro.net.network import NetworkConditions
from repro.sgx import scaled_latency_costs
from repro.workloads import get_workload

COSTS = scaled_latency_costs(1e-3)
NETWORK = NetworkConditions(round_trip_seconds=50e-6)
SCALE = 0.5


def measure_server_traffic(flaas: bool):
    deployment = SecureLeaseDeployment(seed=59, costs=COSTS, network=NETWORK,
                                       tokens_per_attestation=10)
    workload = get_workload("jsonparser")
    blob = deployment.issue_license(workload.license_id, total_units=10**9)
    lease_manager = None
    if flaas:
        lease_manager = FlaasLeaseManager(
            workload.name, deployment.machine, deployment.ras,
            deployment.remote, tokens_per_attestation=10,
        )
    run = deployment.run_workload(workload, scale=SCALE, license_blob=blob,
                                  lease_manager=lease_manager)
    assert run.result["status"] == "OK"
    if flaas:
        server_round_trips = run.remote_attestations
    else:
        server_round_trips = (deployment.remote.renewals_served
                              + run.remote_attestations)
    return run.lease_checks, server_round_trips


def regenerate_server_load():
    rows = []
    for flaas, label in ((False, "SecureLease"), (True, "F-LaaS")):
        checks, server = measure_server_traffic(flaas)
        per_k = server / max(checks, 1) * 1000
        rows.append([label, checks, server, f"{per_k:.1f}"])
    return rows


def test_server_load_per_thousand_checks(benchmark, table_printer):
    rows = benchmark.pedantic(regenerate_server_load, rounds=1, iterations=1)
    table_printer(
        "Server round trips per 1,000 license checks (JSONParser)",
        ["System", "Checks", "Server round trips", "Per 1,000 checks"],
        rows,
    )
    secure_per_k = float(rows[0][3])
    flaas_per_k = float(rows[1][3])
    # SecureLease's server traffic is a tiny fraction of F-LaaS's.
    assert secure_per_k < 0.1 * flaas_per_k


def test_server_load_flat_in_check_volume(benchmark, table_printer):
    """Doubling the check volume must not double SecureLease's server
    traffic — renewals scale with sub-GCL exhaustion, not checks."""

    def measure():
        rows = []
        for scale in (0.25, 0.5, 1.0):
            deployment = SecureLeaseDeployment(
                seed=61, costs=COSTS, network=NETWORK,
                tokens_per_attestation=10,
            )
            workload = get_workload("jsonparser")
            blob = deployment.issue_license(workload.license_id, 10**9)
            run = deployment.run_workload(workload, scale=scale,
                                          license_blob=blob)
            rows.append([f"scale {scale}", run.lease_checks,
                         deployment.remote.renewals_served])
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table_printer(
        "SecureLease server renewals vs check volume",
        ["Run", "Checks", "Renewal round trips"],
        rows,
    )
    checks = [row[1] for row in rows]
    renewals = [row[2] for row in rows]
    assert checks[-1] >= 3 * checks[0]
    # Server traffic grows sub-linearly (here: essentially flat).
    assert renewals[-1] <= 2 * max(renewals[0], 1)
