"""Table 5: partitioning comparison across all 11 workloads.

Paper columns per workload: functions migrated by SecureLease, static
coverage (SecureLease as % of Glamdring), dynamic coverage (%), memory
and EPC evicts for both schemes, and SecureLease's performance
improvement over Glamdring (paper mean: 32.62 %, with SecureLease at
41.82 % overhead over vanilla).

Expected shape: SecureLease migrates less code at comparable dynamic
coverage, stays inside the EPC (0 evicts) where Glamdring overflows,
and wins on runtime — by a lot where Glamdring faults, marginally where
both footprints are tiny (Blockchain, JSONParser).
"""

from __future__ import annotations

import statistics

import pytest

from repro.partition import (
    GlamdringPartitioner,
    PartitionEvaluator,
    SecureLeasePartitioner,
)
from repro.workloads import all_workloads

SCALE = 0.5


def regenerate_table5():
    evaluator = PartitionEvaluator()
    rows = []
    improvements = []
    securelease_overheads = []
    for name, workload in all_workloads().items():
        run = workload.run_profiled(scale=SCALE)
        secure_partition = SecureLeasePartitioner().partition(
            run.program, run.graph, run.profile
        )
        glam_partition = GlamdringPartitioner().partition(
            run.program, run.graph, run.profile
        )
        secure = evaluator.evaluate(run.program, run.graph, run.profile,
                                    secure_partition)
        glam = evaluator.evaluate(run.program, run.graph, run.profile,
                                  glam_partition)
        improvement = secure.improvement_over(glam)
        improvements.append(improvement)
        securelease_overheads.append(secure.overhead_fraction)
        rows.append([
            name,
            ", ".join(workload.key_function_names),
            f"{glam.static_coverage_bytes / 1024:.1f}K",
            f"{secure.static_coverage_bytes / 1024:.1f}K "
            f"({secure.static_coverage_bytes / max(glam.static_coverage_bytes, 1):.1%})",
            f"{glam.dynamic_coverage:.1%}",
            f"{secure.dynamic_coverage:.1%}",
            f"{glam.trusted_memory_bytes // (1 << 20)}MB ({glam.epc_faults})",
            f"{secure.trusted_memory_bytes // (1 << 20)}MB ({secure.epc_faults})",
            f"{improvement:+.1%}",
        ])
    mean_improvement = statistics.mean(improvements)
    mean_overhead = statistics.mean(securelease_overheads)
    return rows, mean_improvement, mean_overhead


def test_table5_partitioning(benchmark, table_printer):
    rows, mean_improvement, mean_overhead = benchmark(regenerate_table5)
    table_printer(
        "Table 5: partitioning — Glamdring (Glam.) vs SecureLease (SLease)",
        ["Workload", "Key functions", "Glam stat", "SLease stat (rel)",
         "Glam dyn", "SLease dyn", "Glam mem (evicts)",
         "SLease mem (evicts)", "Perf impr"],
        rows,
    )
    print(f"\nMean SecureLease improvement over Glamdring: "
          f"{mean_improvement:.2%}  (paper: 32.62%)")
    print(f"Mean SecureLease overhead over vanilla: "
          f"{mean_overhead:.2%}  (paper: 41.82%)")
    # Shape: a solid mean win, with every workload non-negative.
    assert mean_improvement > 0.15
    assert all(float(row[-1].strip("%+")) >= -1.0 for row in rows)
    # SecureLease's overhead over vanilla lands in the paper's regime.
    assert 0.05 < mean_overhead < 1.0


def test_table5_flaas_partitioning_pathology(benchmark, table_printer):
    """Section 3's motivating measurement: the F-LaaS out-degree
    partitioning, run on real SGX, costs up to 2000x.  We reproduce the
    ordering on the worst workloads."""
    from repro.partition import FlaasPartitioner

    def measure():
        evaluator = PartitionEvaluator()
        rows = []
        for name in ("hashjoin", "keyvalue", "btree", "bfs"):
            workload = all_workloads()[name]
            run = workload.run_profiled(scale=SCALE)
            flaas_partition = FlaasPartitioner().partition(
                run.program, run.graph, run.profile
            )
            secure_partition = SecureLeasePartitioner().partition(
                run.program, run.graph, run.profile
            )
            flaas = evaluator.evaluate(run.program, run.graph, run.profile,
                                       flaas_partition)
            secure = evaluator.evaluate(run.program, run.graph, run.profile,
                                        secure_partition)
            rows.append([name, f"{flaas.slowdown:,.0f}x",
                         f"{secure.slowdown:.2f}x",
                         f"{flaas.ecalls + flaas.ocalls:,}",
                         f"{secure.ecalls + secure.ocalls:,}"])
        return rows

    rows = benchmark(measure)
    table_printer(
        "F-LaaS partitioning pathology (paper: up to 2000x)",
        ["Workload", "F-LaaS slowdown", "SLease slowdown",
         "F-LaaS crossings", "SLease crossings"],
        rows,
    )
    worst = max(float(row[1].rstrip("x").replace(",", "")) for row in rows)
    assert worst > 100  # orders of magnitude, as the paper reports
