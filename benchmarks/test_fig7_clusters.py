"""Figure 7: CFG clusters and migrated nodes (OpenSSL).

The paper's figure plots the OpenSSL call graph, showing (a) distinct
submodule clusters and (b) that Glamdring migrates nodes across many
clusters while SecureLease migrates whole clusters.  We regenerate the
figure's underlying statistics: cluster sizes, the intra- vs
inter-cluster call-volume split (the Section 4.2 observation), and how
many clusters each scheme's migrated set touches *partially*.
"""

from __future__ import annotations

import pytest

from repro.callgraph.clustering import cluster_call_graph
from repro.callgraph.metrics import modularity
from repro.partition import GlamdringPartitioner, SecureLeasePartitioner
from repro.sim.rng import DeterministicRng
from repro.workloads import get_workload

SCALE = 0.5


def partial_clusters(clusters, migrated):
    """Clusters that a migrated set splits (some in, some out)."""
    split = 0
    for members in clusters:
        inside = members & migrated
        if inside and inside != members:
            split += 1
    return split


def regenerate_fig7():
    workload = get_workload("openssl")
    run = workload.run_profiled(scale=SCALE)
    secure_partitioner = SecureLeasePartitioner()
    secure = secure_partitioner.partition(run.program, run.graph, run.profile)
    glam = GlamdringPartitioner().partition(run.program, run.graph, run.profile)
    clustering = secure_partitioner.last_clustering
    clusters = clustering.non_empty_clusters()

    intra = sum(run.graph.subgraph_weight(c) for c in clusters)
    total = run.graph.total_call_weight()
    inter = total - intra

    return {
        "clusters": clusters,
        "modularity": modularity(run.graph, clusters),
        "intra_calls": intra,
        "inter_calls": inter,
        "secure_migrated": secure.trusted,
        "glam_migrated": glam.trusted,
        "secure_partial": partial_clusters(clusters, secure.trusted),
        "graph": run.graph,
    }


def test_fig7_cluster_structure(benchmark, table_printer):
    data = benchmark(regenerate_fig7)
    rows = [
        [f"cluster {i}", len(members),
         ", ".join(sorted(members)[:4]) + ("..." if len(members) > 4 else "")]
        for i, members in enumerate(data["clusters"])
    ]
    table_printer("Figure 7: OpenSSL CFG clusters",
                  ["Cluster", "Size", "Members"], rows)
    table_printer(
        "Figure 7: migration comparison",
        ["Scheme", "Nodes migrated", "Clusters split"],
        [
            ["SecureLease", len(data["secure_migrated"]),
             data["secure_partial"]],
            ["Glamdring", len(data["glam_migrated"]), "-"],
        ],
    )
    print(f"\nIntra-cluster calls: {data['intra_calls']:,}  "
          f"inter-cluster calls: {data['inter_calls']:,}  "
          f"modularity: {data['modularity']:.3f}")

    # The Section 4.2 observation: intra-cluster volume dominates.
    assert data["intra_calls"] > 3 * data["inter_calls"]
    # SecureLease migrates fewer nodes than Glamdring's closure...
    assert len(data["secure_migrated"]) <= len(data["glam_migrated"])
    # ...and (near-)whole clusters: at most one cluster is split, and
    # only at the untrusted driver boundary.
    assert data["secure_partial"] <= 1


def test_fig7_observation_holds_across_workloads(benchmark):
    """The clustering observation generalises beyond OpenSSL."""

    def measure():
        ratios = []
        for name in ("bfs", "btree", "pagerank", "keyvalue"):
            run = get_workload(name).run_profiled(scale=0.2)
            clustering = cluster_call_graph(
                run.graph, k=max(2, len(run.program.modules())),
                rng=DeterministicRng(3),
            )
            clusters = clustering.non_empty_clusters()
            intra = sum(run.graph.subgraph_weight(c) for c in clusters)
            total = run.graph.total_call_weight()
            ratios.append(intra / max(total, 1))
        return ratios

    ratios = benchmark(measure)
    print("\nIntra-cluster call fraction per workload:",
          [f"{r:.1%}" for r in ratios])
    assert all(r > 0.5 for r in ratios)
