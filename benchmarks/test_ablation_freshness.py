"""Ablation: freshness via server escrow vs SGX monotonic counters.

Section 5.6 anchors lease-tree freshness in a server-escrowed root key.
The obvious alternative — SGX monotonic counters — would avoid the
shutdown-time network message, but each counter increment is a ~150 ms
flash write with a ~1M-write endurance budget.  This ablation prices
both designs at realistic commit rates and shows why escrow wins.
"""

from __future__ import annotations

import pytest

from repro.core.gcl import Gcl
from repro.core.lease_tree import LeaseTree
from repro.crypto.keys import KeyGenerator
from repro.sgx.monotonic import (
    INCREMENT_CYCLES,
    WEAR_OUT_WRITES,
    CounterFreshnessGuard,
    MonotonicCounterService,
)
from repro.sim.clock import Clock, seconds_to_cycles
from repro.sim.rng import DeterministicRng

#: One escrow message at shutdown: a network round trip (50 ms RTT).
ESCROW_SHUTDOWN_CYCLES = seconds_to_cycles(0.050)


def escrow_design_cycles(commits: int) -> int:
    """Seal `commits` leases through the real tree, plus one escrow."""
    clock = Clock()
    tree = LeaseTree(keygen=KeyGenerator(DeterministicRng(3)))
    for lease_id in range(commits):
        tree.insert(lease_id, Gcl.count_based("lic", 1))
    start = clock.cycles
    for lease_id in range(commits):
        tree.commit_lease(lease_id)  # AES sealing only; no platform I/O
    # The sealing work is host-side in this simulation; charge a
    # representative in-enclave cost per seal (AES over ~350 B).
    clock.advance(commits * 6_000)
    clock.advance(ESCROW_SHUTDOWN_CYCLES)
    return clock.cycles - start


def counter_design_cycles(commits: int) -> int:
    """Each commit bumps the hardware counter."""
    clock = Clock()
    service = MonotonicCounterService(clock)
    guard = CounterFreshnessGuard(service, "lease-tree")
    start = clock.cycles
    for _ in range(commits):
        guard.seal(b"node")
    return clock.cycles - start


def regenerate_freshness_ablation():
    rows = []
    for commits in (10, 100, 1_000):
        escrow = escrow_design_cycles(commits)
        counter = counter_design_cycles(commits)
        rows.append([
            commits,
            f"{escrow / 2.9e6:,.1f} ms",
            f"{counter / 2.9e6:,.1f} ms",
            f"{counter / max(escrow, 1):,.0f}x",
        ])
    return rows


def test_ablation_freshness_designs(benchmark, table_printer):
    rows = benchmark.pedantic(regenerate_freshness_ablation, rounds=1,
                              iterations=1)
    table_printer(
        "Ablation: freshness anchor — server escrow vs monotonic counter",
        ["Commits", "Escrow design", "Counter design", "Counter penalty"],
        rows,
    )
    # The counter design is far slower at any commit volume, and the
    # penalty grows with volume: escrow pays its fixed network message
    # once, the counter pays 150 ms of flash per commit.
    penalties = [float(row[3].rstrip("x").replace(",", "")) for row in rows]
    assert all(p > 10 for p in penalties)
    assert penalties == sorted(penalties)


def test_ablation_counter_wearout_horizon(benchmark, table_printer):
    """Endurance: at SL-Local commit rates, NVRAM wears out in weeks."""

    def measure():
        commits_per_day = 50_000  # a busy FaaS host's eviction traffic
        days_to_wearout = WEAR_OUT_WRITES / commits_per_day
        increment_ms = INCREMENT_CYCLES / 2.9e6
        return days_to_wearout, increment_ms

    days, increment_ms = benchmark(measure)
    table_printer(
        "Monotonic-counter endurance at 50K commits/day",
        ["Days to wear-out", "Per-increment latency"],
        [[f"{days:.0f}", f"{increment_ms:.0f} ms"]],
    )
    assert days < 60  # under two months: unusable for SL-Local
