"""Flash crowds and mass churn against a real replicated fleet.

The Algorithm 1 control loop's headline claims, measured end to end
over real ``serve-remote`` subprocesses (3 shards, ``--replicas 2``,
async IO, v3 wire):

* **Flash crowd, static vs adaptive.**  The same zipf-popular crowd —
  a trickle, then most arrivals inside a narrow burst — hits two
  identical fleets.  With ``--admission off`` (the static baseline),
  Algorithm 1's geometric decay floors grant proposals to zero once a
  license's holder count passes ``sqrt(TG·D)/D``, so the fleet answers
  EXHAUSTED while the pool still holds most of its units.  With
  admission on (plus ``--autotune-lag``), the server degrades grant
  sizes down the pressure ladder instead: every arrival is served,
  EXHAUSTED stays at zero, and goodput rises.

* **Mass churn, forfeiture bounded.**  A steady crowd where a slice
  crashes mid-hold (re-init without graceful shutdown).  The τ bound of
  Equation 1 caps what any one crash can strand: each forfeiture stays
  under ``τ·TG / (1 − h)`` for the crasher's claimed health ``h``, and
  the client-observed forfeits reconcile exactly with the fleet's
  written-off ``lost`` units.

* **Diurnal curve, valleys recover.**  Arrivals follow a day/night
  cosine with deep troughs; the adaptive fleet serves every peak with
  zero EXHAUSTED and the pools conserve through both cycles.

* **Escrow storm, identity survives.**  The whole crowd gracefully
  shuts down mid-run and immediately re-inits the same SLID.  Every
  client gets its *exact* root key back from the quorum-replicated
  escrow record, and — unlike the crash path — not one unit is
  forfeited.

* **10^5 SL-Locals headline.**  One hundred thousand simulated clients
  on a diurnal curve with escrow and churn slices mixed in, against the
  same 3-shard ``--replicas 2`` fleet.  The incremental Equation 1
  ledger keeps per-renewal work independent of the holder count, so
  the fleet absorbs 10× the PR 8 crowd with zero EXHAUSTED.

Both scenarios audit fleet-wide conservation (``outstanding + lost +
available == total`` per license) and probe every shard's
``_server_stats`` renewal-health section.

``SL_SCENARIO_SMOKE=1`` shrinks the crowd for CI; full-scale numbers
are persisted to ``BENCH_scenarios.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import time

from repro.net.sharding import default_shard_names
from scenarios import (ScenarioSpec, diurnal_schedule, fleet_ledger_audit,
                       fleet_renewal_health, run_scenario)

SMOKE = bool(os.environ.get("SL_SCENARIO_SMOKE"))

SHARDS = 3
REPLICAS = 2
LICENSES = 6 if SMOKE else 12
FLASH_CLIENTS = 240 if SMOKE else 10_000
CHURN_CLIENTS = 150 if SMOKE else 4_000
DIURNAL_CLIENTS = 200 if SMOKE else 10_000
ESCROW_CLIENTS = 150 if SMOKE else 4_000
#: The 10^5 tier: the headline crowd this release exists to absorb.
HEADLINE_CLIENTS = 400 if SMOKE else 100_000
#: Flash-crowd clients renew once and hold: total static demand is then
#: Σ TG/(2C²) ≈ 0.82·TG, so the static fleet's refusals provably happen
#: *while units remain* (with a second renewal round the sum passes TG
#: and genuine pool exhaustion muddies the comparison).
FLASH_RENEWS = 1
CHURN_RENEWS = 2
DURATION = 2.0 if SMOKE else 4.0
WORKERS = 8 if SMOKE else 16
#: Units per license: 16 units per expected client leaves the adaptive
#: fleet headroom to serve every arrival (early Algorithm 1 grants are
#: huge, later ones degrade toward 1), while the static zero-proposal
#: threshold C > sqrt(TG·D)/D ~ sqrt(TG)/2 sits far below the hot
#: license's holder count — the static fleet must refuse.
POOL_PER_CLIENT = 16
CHURN_FRACTION = 0.2
CHURN_HEALTH = 0.85
#: The serve-remote default τ (policy.tau_fraction); the mass-churn
#: fleet runs without --autotune-lag so the bound stays at the default.
TAU_FRACTION = 0.10

MARKER = "SL-Remote listening on "
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_scenarios.json")


# ----------------------------------------------------------------------
# Fleet-process harness (same shape as the failover bench)
# ----------------------------------------------------------------------
def _free_ports(count):
    sockets = []
    try:
        for _ in range(count):
            sock = socket.socket()
            sock.bind(("127.0.0.1", 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


def _spawn(command):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *command],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        if line.startswith(MARKER):
            return process
    process.kill()
    raise RuntimeError("serve-remote subprocess never reported its port")


def _spawn_fleet(ports, pool, admission, autotune, quorum=0):
    """One serve-remote per shard: async IO, depth-2 replication, and —
    crucially — a lag budget the size of the pool, so replication
    backpressure never pollutes the admission-control comparison (the
    failover bench owns the tight-budget regime)."""
    fleet = ",".join(
        f"{name}=127.0.0.1:{port}"
        for name, port in zip(default_shard_names(len(ports)), ports)
    )
    licenses = [arg
                for index in range(LICENSES)
                for arg in ("--license", f"lic-{index}:{pool}")]
    processes = []
    try:
        for index, port in enumerate(ports):
            command = [
                "serve-remote", "--port", str(port), "--accept-any-platform",
                "--shard-of", f"{index}:{len(ports)}", "--io", "async",
                *licenses,
                "--replicas", str(REPLICAS), "--quorum", str(quorum),
                "--fleet", fleet,
                "--lag-budget", str(pool), "--lag-grants", "8",
                "--admission", "on" if admission else "off",
            ]
            if autotune:
                command.append("--autotune-lag")
            processes.append(_spawn(command))
    except Exception:
        _stop(processes)
        raise
    return processes


def _stop(processes):
    for process in processes:
        process.terminate()
    for process in processes:
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()


def _fleet_url(ports):
    # Pipelined async client transports, v3 frames, and a short gather
    # window so concurrent renewals from the shared worker pool
    # coalesce into BatchRequest frames (the handle_renew_batch
    # admission path is part of what this bench proves).
    authority = ",".join(f"127.0.0.1:{port}" for port in ports)
    return (f"sl+sharded://{authority}"
            f"?wire=3&io=async&batch_window=0.002"
            f"&timeout=60&replicas={REPLICAS}")


def _run_fleet(spec, pool, admission, autotune, seed, workers=None,
               connections=4, quorum=0):
    """Spawn a fleet, run the scenario, audit, tear down."""
    ports = _free_ports(SHARDS)
    processes = _spawn_fleet(ports, pool, admission, autotune, quorum=quorum)
    try:
        result = run_scenario(_fleet_url(ports), spec, seed=seed,
                              workers=workers or WORKERS,
                              connections=connections)
        probe = fleet_ledger_audit(_fleet_url(ports))
        health = fleet_renewal_health(ports)
    finally:
        _stop(processes)
    assert not result.failures, f"client failures: {result.failures[:3]}"
    return result, probe, health


def _persist(section, metrics):
    if SMOKE:
        return
    payload = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as handle:
            payload = json.load(handle)
    payload[section] = metrics
    payload["smoke"] = SMOKE
    with open(BENCH_JSON, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


# ----------------------------------------------------------------------
# Flash crowd: static refuses, adaptive degrades
# ----------------------------------------------------------------------
def test_flash_crowd_adaptive_beats_static(table_printer):
    pool = POOL_PER_CLIENT * FLASH_CLIENTS
    spec = ScenarioSpec(
        name="flash_crowd", clients=FLASH_CLIENTS, licenses=LICENSES,
        pool_per_license=pool, renews_per_client=FLASH_RENEWS,
        duration_seconds=DURATION, arrivals="flash_crowd",
    )

    static, static_probe, _ = _run_fleet(
        spec, pool, admission=False, autotune=False, seed=7)
    adaptive, adaptive_probe, health = _run_fleet(
        spec, pool, admission=True, autotune=True, seed=7)

    static_m, adaptive_m = static.metrics(), adaptive.metrics()
    table_printer(
        "flash crowd: static vs adaptive",
        ("metric", "static", "adaptive"),
        [(key, static_m[key], adaptive_m[key])
         for key in ("renews_ok", "exhausted", "exhausted_rate",
                     "goodput_renewals_per_second", "granted_units",
                     "p50_ms", "p99_ms")],
    )

    # The static fleet refused while the pool still held units — the
    # graceless regime this release removes.
    assert static.renews_exhausted > 0
    assert any(row["available"] > 0 for row in static_probe.values())
    assert static_m["exhausted_rate"] > 0.10

    # The adaptive fleet served the identical crowd without a single
    # refusal, at strictly higher goodput — and the ladder's caps left
    # it headroom (it degraded grants rather than draining the pools).
    assert adaptive.renews_exhausted == 0
    assert adaptive.renews_ok == spec.clients * spec.renews_per_client
    assert (adaptive_m["goodput_renewals_per_second"]
            > static_m["goodput_renewals_per_second"])
    assert all(row["available"] > 0 for row in adaptive_probe.values())

    # Degraded grants did the work: every shard that saw pressure
    # reports admission on and degraded grants in its renewal health.
    assert all(report["admission"] for report in health)
    assert sum(sum(entry["degraded"] for entry in report["licenses"].values())
               for report in health) > 0
    assert all(report["exhausted_served"] == 0 for report in health)

    _persist("flash_crowd", {"static": static_m, "adaptive": adaptive_m})


# ----------------------------------------------------------------------
# Mass churn: forfeiture stays inside the Equation 1 budget
# ----------------------------------------------------------------------
def test_mass_churn_forfeiture_bounded(table_printer):
    pool = POOL_PER_CLIENT * CHURN_CLIENTS
    spec = ScenarioSpec(
        name="mass_churn", clients=CHURN_CLIENTS, licenses=LICENSES,
        pool_per_license=pool, renews_per_client=CHURN_RENEWS,
        duration_seconds=DURATION, arrivals="mass_churn",
        churn_fraction=CHURN_FRACTION, churn_health=CHURN_HEALTH,
    )

    result, probe, health = _run_fleet(
        spec, pool, admission=True, autotune=False, seed=11)
    metrics = result.metrics()
    table_printer(
        "mass churn (adaptive fleet)",
        ("metric", "value"),
        [(key, metrics[key])
         for key in ("renews_ok", "exhausted", "crashes", "forfeited_units",
                     "max_crash_forfeit", "p99_ms")],
    )

    # Crashes actually happened and forfeited real units.
    assert result.crashes > 0
    assert metrics["forfeited_units"] > 0

    # Equation 1's τ bound, per crash: a node claiming health h can
    # never hold more than τ·TG / (1 − h), so no single crash strands
    # more than that.
    per_crash_bound = TAU_FRACTION * pool / (1.0 - CHURN_HEALTH)
    assert metrics["max_crash_forfeit"] <= per_crash_bound + 1

    # Client-observed forfeits reconcile exactly with the fleet's
    # written-off units — nothing stranded twice, nothing resurrected.
    lost_total = sum(row["lost"] for row in probe.values())
    assert lost_total == metrics["forfeited_units"], (
        f"fleet wrote off {lost_total}, clients forfeited "
        f"{metrics['forfeited_units']}")

    # Churn telemetry reached the renewal-health tables.
    assert all(report["admission"] for report in health)

    _persist("mass_churn", metrics)


# ----------------------------------------------------------------------
# Diurnal curve: peaks served, valleys deep, pools conserve
# ----------------------------------------------------------------------
def test_diurnal_peaks_served_without_refusal(table_printer):
    import random

    pool = POOL_PER_CLIENT * DIURNAL_CLIENTS
    spec = ScenarioSpec(
        name="diurnal", clients=DIURNAL_CLIENTS, licenses=LICENSES,
        pool_per_license=pool, renews_per_client=FLASH_RENEWS,
        duration_seconds=DURATION * 2, arrivals="diurnal",
    )

    # The schedule itself must be genuinely diurnal: with two cosine
    # cycles over the run, the busiest eighth of the timeline carries
    # several times the arrivals of the quietest eighth.
    arrivals = diurnal_schedule(spec.clients, spec.duration_seconds,
                                random.Random(5))
    bins = [0] * 8
    for t in arrivals:
        bins[min(7, int(t / spec.duration_seconds * 8))] += 1
    assert max(bins) > 2 * max(1, min(bins)), f"curve not diurnal: {bins}"

    result, probe, health = _run_fleet(
        spec, pool, admission=True, autotune=True, seed=13)
    metrics = result.metrics()
    table_printer(
        "diurnal curve (adaptive fleet)",
        ("metric", "value"),
        [(key, metrics[key])
         for key in ("renews_ok", "exhausted", "goodput_renewals_per_second",
                     "p50_ms", "p99_ms", "schedule_slip_p99_ms")],
    )

    # Both peaks served in full, no refusals, pools conserve with room.
    assert result.renews_exhausted == 0
    assert result.renews_ok == spec.clients * spec.renews_per_client
    assert all(row["available"] > 0 for row in probe.values())
    assert all(report["exhausted_served"] == 0 for report in health)

    _persist("diurnal", metrics)


# ----------------------------------------------------------------------
# Escrow storm: mass graceful shutdown, identity quorum holds
# ----------------------------------------------------------------------
def test_escrow_storm_restores_every_identity(table_printer):
    pool = POOL_PER_CLIENT * ESCROW_CLIENTS
    spec = ScenarioSpec(
        name="escrow_storm", clients=ESCROW_CLIENTS, licenses=LICENSES,
        pool_per_license=pool, renews_per_client=FLASH_RENEWS,
        duration_seconds=DURATION, arrivals="mass_churn",
        escrow_fraction=1.0,
    )

    # quorum=1: identity (init/shutdown) acks gate on a follower
    # confirming the escrow delta — the storm hammers that gate.
    result, probe, health = _run_fleet(
        spec, pool, admission=True, autotune=False, seed=17, quorum=1)
    metrics = result.metrics()
    table_printer(
        "escrow storm (graceful shutdown + re-init, whole crowd)",
        ("metric", "value"),
        [(key, metrics[key])
         for key in ("renews_ok", "escrow_cycles", "escrow_restored",
                     "forfeited_units", "p99_ms")],
    )

    # Every client cycled and every root key came back bit-exact from
    # the quorum-replicated escrow record.
    assert result.escrow_cycles == spec.clients
    assert result.escrow_restored == result.escrow_cycles

    # Graceful is the opposite of the crash path: nothing forfeited,
    # nothing written off — the holdings survive the identity cycle.
    assert result.crashes == 0
    assert metrics["forfeited_units"] == 0
    assert sum(row["lost"] for row in probe.values()) == 0
    assert all(report["admission"] for report in health)

    _persist("escrow_storm", metrics)


# ----------------------------------------------------------------------
# The 10^5 tier: one hundred thousand SL-Locals, every shape at once
# ----------------------------------------------------------------------
def test_hundred_thousand_locals_headline(table_printer):
    """The release headline: 10^5 simulated SL-Locals — diurnal
    arrivals with escrow-storm and crash-churn slices mixed in — on the
    same 3-shard fleet, zero EXHAUSTED.  Feasible precisely because the
    incremental ledger makes per-renewal work independent of how many
    of the 10^5 already hold units."""
    pool = POOL_PER_CLIENT * HEADLINE_CLIENTS
    spec = ScenarioSpec(
        name="fleet_100k", clients=HEADLINE_CLIENTS, licenses=LICENSES,
        pool_per_license=pool, renews_per_client=1,
        duration_seconds=DURATION * 8, arrivals="diurnal",
        churn_fraction=0.02, churn_health=CHURN_HEALTH,
        escrow_fraction=0.10,
    )

    # quorum=0, like the flash crowd: the headline measures the renewal
    # path's scale independence.  The dedicated escrow-storm test owns
    # the quorum-gated identity plane (whose ack throughput is bounded
    # by the flusher's snapshot pass — O(#SLIDs) — and so caps gated
    # inits well below this crowd's arrival rate; see ROADMAP).
    result, probe, health = _run_fleet(
        spec, pool, admission=True, autotune=True, seed=23,
        workers=WORKERS * 2, connections=8)
    metrics = result.metrics()
    table_printer(
        f"{HEADLINE_CLIENTS} SL-Locals (diurnal + escrow + churn)",
        ("metric", "value"),
        [(key, metrics[key])
         for key in ("renews_ok", "exhausted", "goodput_renewals_per_second",
                     "crashes", "forfeited_units", "escrow_cycles",
                     "escrow_restored", "p50_ms", "p99_ms")],
    )

    # Zero refusals at 10× the PR 8 crowd, and every arrival served.
    assert result.renews_exhausted == 0
    assert result.renews_ok == spec.clients * spec.renews_per_client
    assert all(report["exhausted_served"] == 0 for report in health)

    # The identity quorum held under the embedded escrow storm.
    assert result.escrow_cycles > 0
    assert result.escrow_restored == result.escrow_cycles

    # Crash forfeits reconcile exactly against the fleet's write-offs;
    # graceful cycles contributed nothing to `lost`.
    lost_total = sum(row["lost"] for row in probe.values())
    assert lost_total == metrics["forfeited_units"], (
        f"fleet wrote off {lost_total}, clients forfeited "
        f"{metrics['forfeited_units']}")

    _persist("fleet_100k", metrics)
