"""Failover chaos and online membership, end to end over real sockets.

The replication release's headline claims, measured against real
``serve-remote`` subprocesses:

* **Kill the primary.**  A 3-shard fleet runs with ``--replicas 1``:
  each shard streams its license deltas to its ring successor under a
  bounded lag budget.  A client crowd renews and returns continuously;
  mid-load the harness SIGKILLs the shard that owns the hottest
  license.  Every client router independently observes the dial
  failure, promotes the follower, and resumes — the harness measures
  the gap between the kill and the first successful renew on a
  victim-owned license.  The run only counts if no client call fails,
  no unit is ever minted twice (client-observed net holdings are
  covered by outstanding + the pessimistic reserve), and the reserve
  itself never exceeds the lag budget per license.

* **Grow the ring under load.**  A 2-shard fleet serves the same crowd
  while the real ``ring add`` CLI verb joins a third (empty) shard and
  migrates its keyspace license by license.  Clients absorb only
  bounded retry-after waits during each license's freeze window and
  follow tombstone redirects to the shard they never configured — zero
  failed calls, exact conservation afterwards.

``SL_FAILOVER_SMOKE=1`` shrinks the crowd for CI; full-scale numbers
are persisted to ``BENCH_failover.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import threading
import time

from repro.core.protocol import InitRequest, RenewRequest, Status
from repro.net.endpoint import connect
from repro.net.sharding import HashRing, default_shard_names
from repro.sgx import SgxMachine
from repro.sim.clock import Clock

SMOKE = bool(os.environ.get("SL_FAILOVER_SMOKE"))

CLIENTS = 8 if SMOKE else 50
SHARDS = 3
LICENSES = 3 if SMOKE else 6
LAG_BUDGET = 128
#: The adaptive budget: the un-replicated window may grow to this many
#: *grants* of the peak observed size (capped by a pool fraction), so
#: forfeiture is bounded in the currency that matters — how many
#: in-flight grants a death can strand — not in absolute units.
LAG_GRANTS = 4
POOL = 10**9
#: Load runs this long before the kill (replication must have taken at
#: least one anti-entropy snapshot pass, interval 0.5 s) and this long
#: after it (the promoted ledgers must prove they serve steady state).
WARMUP_SECONDS = 1.5 if SMOKE else 2.5
CHAOS_SECONDS = 1.5 if SMOKE else 3.0

MARKER = "SL-Remote listening on "
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_failover.json")


# ----------------------------------------------------------------------
# Fleet-process harness
# ----------------------------------------------------------------------
def _free_ports(count):
    """Reserve ``count`` distinct ephemeral ports (bind, read, close).

    The fleet needs every member's address *before* any member starts
    (``--fleet`` names all replication peers), so ``--port 0`` is not
    enough here.  Holding all sockets open until every port is read
    keeps the kernel from handing the same port out twice.
    """
    sockets = []
    try:
        for _ in range(count):
            sock = socket.socket()
            sock.bind(("127.0.0.1", 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


def _license_args():
    return [arg
            for index in range(LICENSES)
            for arg in ("--license", f"lic-{index}:{POOL}")]


def _spawn(command):
    """Start one repro.cli subprocess; wait for its listening marker."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *command],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        if line.startswith(MARKER):
            return process
    process.kill()
    raise RuntimeError("serve-remote subprocess never reported its port")


def _spawn_fleet(ports, replicas, data_dir=None):
    """One serve-remote process per shard, every peer address wired in."""
    fleet = ",".join(
        f"{name}=127.0.0.1:{port}"
        for name, port in zip(default_shard_names(len(ports)), ports)
    )
    processes = []
    try:
        for index, port in enumerate(ports):
            command = [
                "serve-remote", "--port", str(port), "--accept-any-platform",
                "--shard-of", f"{index}:{len(ports)}", *_license_args(),
            ]
            if replicas:
                command += ["--replicas", str(replicas), "--fleet", fleet,
                            "--lag-budget", str(LAG_BUDGET),
                            "--lag-grants", str(LAG_GRANTS)]
            if data_dir:
                command += ["--data-dir", data_dir]
            processes.append(_spawn(command))
    except Exception:
        _stop(processes)
        raise
    return processes


def _stop(processes):
    for process in processes:
        process.terminate()
    for process in processes:
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()


def _fleet_url(ports, **params):
    authority = ",".join(f"127.0.0.1:{port}" for port in ports)
    query = "&".join(f"{key}={value}" for key, value in params.items())
    return f"sl+sharded://{authority}" + (f"?{query}" if query else "")


def _blob_for(license_id):
    """Clients rebuild the license blob the servers mint (same vendor
    secret) instead of reaching into another process's memory."""
    from repro.core.licensefile import VENDOR_SECRET, mint_license_blob

    return mint_license_blob(license_id, VENDOR_SECRET)


# ----------------------------------------------------------------------
# Client crowd: renew/return until told to stop, log every outcome
# ----------------------------------------------------------------------
class _ClientLog:
    """One client thread's whole story, merged by the main thread."""

    def __init__(self):
        self.successes = []      # (monotonic_ts, license_id, granted)
        self.granted = {}        # license_id -> units acknowledged OK
        self.returned = {}       # license_id -> units returned with OK
        self.exhausted = 0
        self.failure = None      # first exception, ends the thread
        self.failovers = 0


def _run_crowd(url, stop_event, started, logs):
    """Start CLIENTS renew/return loops; returns the thread list."""
    blobs = {f"lic-{i}": _blob_for(f"lic-{i}") for i in range(LICENSES)}

    def client(index, log):
        license_id = f"lic-{index % LICENSES}"
        machine = SgxMachine(f"chaos-{index}")
        endpoint = connect(url)
        try:
            report = machine.local_authority.generate_report(1, 1, nonce=1)
            response = endpoint.call(
                "init",
                InitRequest(slid=None, report=report,
                            platform_secret=machine.platform_secret),
                clock=machine.clock, stats=machine.stats,
            )
            slid = response.slid
            started.wait()
            while not stop_event.is_set():
                renewal = endpoint.call(
                    "renew",
                    RenewRequest(slid=slid, license_id=license_id,
                                 license_blob=blobs[license_id],
                                 network_reliability=1.0, health=1.0),
                    clock=machine.clock,
                )
                if renewal.status is Status.OK:
                    log.successes.append(
                        (time.monotonic(), license_id, renewal.granted_units)
                    )
                    log.granted[license_id] = (
                        log.granted.get(license_id, 0) + renewal.granted_units
                    )
                    returned = endpoint.call(
                        "return_units",
                        (slid, license_id, renewal.granted_units),
                        clock=machine.clock,
                    )
                    if returned is Status.OK:
                        log.returned[license_id] = (
                            log.returned.get(license_id, 0)
                            + renewal.granted_units
                        )
                elif renewal.status is Status.EXHAUSTED:
                    # Replication backpressure, not an error: grant
                    # sizing asks for half the pool, so one grant eats
                    # the whole headroom until the next flush is acked.
                    # The adaptive budget (--lag-grants) relaxes this
                    # after the first ship — the budget grows toward
                    # LAG_GRANTS peak-sized grants — but the floor
                    # applies until then, and a client just retries,
                    # exactly like a drained pool.
                    log.exhausted += 1
                else:
                    raise AssertionError(f"renew answered {renewal.status}")
                time.sleep(0.01)
            log.failovers = endpoint.transport.router.failovers
        except Exception as exc:  # noqa: BLE001 - surfaced by the harness
            log.failure = exc
        finally:
            endpoint.close()

    threads = [threading.Thread(target=client, args=(i, logs[i]))
               for i in range(len(logs))]
    for thread in threads:
        thread.start()
    return threads


def _fleet_audit(url, expect_licenses=LICENSES):
    """Fleet-wide ledger probe through a fresh endpoint."""
    endpoint = connect(url)
    try:
        probe = endpoint.call("ledger_probe", None, clock=Clock())
    finally:
        endpoint.close()
    assert len(probe) == expect_licenses
    for license_id, entry in probe.items():
        assert entry["outstanding"] + entry["lost"] + entry["available"] \
            == entry["total"], f"{license_id} leaked units"
    return probe


def _sum_logs(logs, field):
    totals = {}
    for log in logs:
        for license_id, units in getattr(log, field).items():
            totals[license_id] = totals.get(license_id, 0) + units
    return totals


# ----------------------------------------------------------------------
# Chaos: SIGKILL the primary mid-load, measure the recovery gap
# ----------------------------------------------------------------------
def test_primary_death_fails_over_under_load(benchmark, table_printer):
    ring = HashRing(default_shard_names(SHARDS))
    victim = ring.shard_for("lic-0")
    victim_index = default_shard_names(SHARDS).index(victim)
    victim_licenses = {f"lic-{i}" for i in range(LICENSES)
                       if ring.shard_for(f"lic-{i}") == victim}

    def measure():
        ports = _free_ports(SHARDS)
        processes = _spawn_fleet(ports, replicas=1)
        url = _fleet_url(ports, replicas=1, timeout=10, max_attempts=2,
                         reconnect_attempts=2, reconnect_backoff=0.05)
        stop_event, started = threading.Event(), threading.Event()
        logs = [_ClientLog() for _ in range(CLIENTS)]
        try:
            threads = _run_crowd(url, stop_event, started, logs)
            started.set()
            time.sleep(WARMUP_SECONDS)
            processes[victim_index].kill()  # SIGKILL: no goodbye frames
            kill_ts = time.monotonic()
            time.sleep(CHAOS_SECONDS)
            stop_event.set()
            for thread in threads:
                thread.join(timeout=120)
            probe = _fleet_audit(url)
        finally:
            stop_event.set()
            _stop(processes)
        recoveries = [ts - kill_ts
                      for log in logs
                      for ts, license_id, _granted in log.successes
                      if ts > kill_ts and license_id in victim_licenses]
        return logs, probe, recoveries

    logs, probe, recoveries = benchmark.pedantic(measure, rounds=1,
                                                 iterations=1)

    failures = [log.failure for log in logs if log.failure is not None]
    assert not failures, f"client failures: {failures[:3]}"
    # Every client that touched a victim-owned license must have renewed
    # successfully on the promoted follower after the kill.
    assert recoveries, "no client ever recovered a victim-owned license"
    assert any(log.failovers for log in logs)

    granted = _sum_logs(logs, "granted")
    returned = _sum_logs(logs, "returned")
    peak_grant = {}
    for log in logs:
        for _ts, license_id, units in log.successes:
            peak_grant[license_id] = max(peak_grant.get(license_id, 0), units)
    forfeited = 0
    for license_id, entry in probe.items():
        # No double mint: units clients still hold are all accounted as
        # outstanding or pessimistically written off.
        held = granted.get(license_id, 0) - returned.get(license_id, 0)
        assert held <= entry["outstanding"] + entry["lost"], \
            f"{license_id}: clients hold {held} units the fleet forgot"
        if license_id in victim_licenses:
            # Algorithms 2-3 applied only inside the lag window, which
            # the adaptive budget denominates in grants: a death may
            # strand at most LAG_GRANTS peak-sized grants (never less
            # than the absolute floor the fleet started from).
            lag_bound = max(LAG_BUDGET,
                            LAG_GRANTS * peak_grant.get(license_id, 0))
            assert entry["lost"] <= lag_bound, \
                (f"{license_id} forfeited {entry['lost']} past the "
                 f"adaptive lag bound {lag_bound}")
            forfeited += entry["lost"]
        else:
            assert entry["lost"] == 0, \
                f"{license_id} never lost its primary but wrote off units"

    first_success = min(recoveries)
    served = sum(len(log.successes) for log in logs)
    exhausted = sum(log.exhausted for log in logs)
    table_printer(
        f"Primary SIGKILL under load: {CLIENTS} clients, {SHARDS} shards, "
        f"lag budget {LAG_BUDGET} units / {LAG_GRANTS} grants"
        + (" [smoke]" if SMOKE else ""),
        ["Metric", "Value"],
        [
            ["victim shard (owns lic-0)", victim],
            ["renewals served", served],
            ["kill -> first victim-license renew", f"{first_success:.3f} s"],
            ["backpressure (EXHAUSTED) answers", exhausted],
            ["units forfeited (victim licenses)", forfeited],
            ["client failures", len(failures)],
        ],
    )

    if not SMOKE:
        # Smoke runs must not clobber the committed full-scale numbers.
        payload = {
            "benchmark": "primary_failover",
            "smoke": SMOKE,
            "clients": CLIENTS,
            "shards": SHARDS,
            "licenses": LICENSES,
            "lag_budget": LAG_BUDGET,
            "lag_grants": LAG_GRANTS,
            "victim_shard": victim,
            "renewals_served": served,
            "kill_to_first_success_seconds": round(first_success, 4),
            "backpressure_exhausted": exhausted,
            "forfeited_units": forfeited,
            "failed_calls": len(failures),
        }
        with open(BENCH_JSON, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")


# ----------------------------------------------------------------------
# Quorum chaos: two simultaneous SIGKILLs against a depth-2 fleet
# ----------------------------------------------------------------------
#: ``SL_QUORUM_SMOKE=1`` shrinks the quorum chaos run for CI the same
#: way ``SL_FAILOVER_SMOKE`` shrinks the single-kill run.
QUORUM_SMOKE = bool(os.environ.get("SL_QUORUM_SMOKE")) or SMOKE
Q_CLIENTS = 8 if QUORUM_SMOKE else 50
Q_SHARDS = 5
Q_REPLICAS = 2
Q_QUORUM = (Q_REPLICAS + 1) // 2  # the serve-remote default
Q_WARMUP = 2.0 if QUORUM_SMOKE else 2.5
Q_CHAOS = 2.0 if QUORUM_SMOKE else 3.0
BENCH_QUORUM_JSON = os.path.join(REPO_ROOT, "BENCH_quorum.json")


def _server_stats_of(port):
    endpoint = connect(f"sl://127.0.0.1:{port}")
    try:
        return endpoint.call("_server_stats", None, clock=Clock())
    finally:
        endpoint.close()


def test_two_simultaneous_deaths_promote_by_quorum(tmp_path, benchmark,
                                                   table_printer):
    """The quorum control plane's headline: SIGKILL a license's primary
    AND its first follower in the same instant.  Depth-2 replication
    means the second follower still holds the ledger (seeded by a
    WAL-shipped bootstrap at fleet start), epoch-fenced promotion makes
    it the unique new primary, and the client crowd recovers with zero
    double-grants and forfeiture bounded by the adaptive lag budget."""
    names = default_shard_names(Q_SHARDS)
    ring = HashRing(names)
    owner, first, _second = ring.owners("lic-0", 3)
    victims = [owner, first]
    victim_indices = [names.index(victim) for victim in victims]
    victim_licenses = {f"lic-{i}" for i in range(LICENSES)
                       if ring.shard_for(f"lic-{i}") in victims}
    assert "lic-0" in victim_licenses

    def measure():
        ports = _free_ports(Q_SHARDS)
        processes = _spawn_fleet(ports, replicas=Q_REPLICAS,
                                 data_dir=str(tmp_path))
        url = _fleet_url(ports, replicas=Q_REPLICAS, timeout=10,
                         max_attempts=3, reconnect_attempts=2,
                         reconnect_backoff=0.05)
        stop_event, started = threading.Event(), threading.Event()
        logs = [_ClientLog() for _ in range(Q_CLIENTS)]
        try:
            threads = _run_crowd(url, stop_event, started, logs)
            started.set()
            time.sleep(Q_WARMUP)
            for index in victim_indices:
                processes[index].kill()  # both at once: no goodbye frames
            kill_ts = time.monotonic()
            time.sleep(Q_CHAOS)
            stop_event.set()
            for thread in threads:
                thread.join(timeout=120)
            probe = _fleet_audit(url)
            survivors = [(name, port) for name, port in zip(names, ports)
                         if name not in victims]
            stats = {name: _server_stats_of(port)
                     for name, port in survivors}
        finally:
            stop_event.set()
            _stop(processes)
        recoveries = [ts - kill_ts
                      for log in logs
                      for ts, license_id, _granted in log.successes
                      if ts > kill_ts and license_id in victim_licenses]
        return logs, probe, stats, recoveries

    logs, probe, stats, recoveries = benchmark.pedantic(measure, rounds=1,
                                                        iterations=1)

    failures = [log.failure for log in logs if log.failure is not None]
    assert not failures, f"client failures: {failures[:3]}"
    assert recoveries, "no client ever recovered a victim-owned license"

    granted = _sum_logs(logs, "granted")
    returned = _sum_logs(logs, "returned")
    peak_grant = {}
    for log in logs:
        for _ts, license_id, units in log.successes:
            peak_grant[license_id] = max(peak_grant.get(license_id, 0), units)
    forfeited = 0
    double_grants = []
    for license_id, entry in probe.items():
        held = granted.get(license_id, 0) - returned.get(license_id, 0)
        if held > entry["outstanding"] + entry["lost"]:
            double_grants.append(license_id)
        if license_id in victim_licenses:
            lag_bound = max(LAG_BUDGET,
                            LAG_GRANTS * peak_grant.get(license_id, 0))
            assert entry["lost"] <= lag_bound, \
                (f"{license_id} forfeited {entry['lost']} past the "
                 f"adaptive lag bound {lag_bound}")
            forfeited += entry["lost"]
        else:
            assert entry["lost"] == 0, \
                f"{license_id} never lost its primary but wrote off units"
    assert double_grants == [], \
        f"units minted twice on {double_grants}"

    # The quorum control plane is visible in every survivor's stats:
    # epoch moved past 0 when the deaths were fenced, the quorum is the
    # fleet default, and at least one cold follower was seeded by a
    # WAL-shipped bootstrap (the fleet started with --data-dir).
    bootstraps_applied = 0
    for name, report in stats.items():
        replication = report["replication"]
        assert replication["quorum"] == Q_QUORUM, name
        assert replication["epoch"] >= 1, \
            f"{name} never learned the promotion epoch"
        assert "exhausted_served" in report, name
        bootstraps_applied += replication["follows"]["bootstraps_applied"]
    assert bootstraps_applied >= 1, \
        "no follower was ever seeded by a WAL-shipped bootstrap"

    first_success = min(recoveries)
    served = sum(len(log.successes) for log in logs)
    exhausted = sum(log.exhausted for log in logs)
    table_printer(
        f"Two simultaneous SIGKILLs: {Q_CLIENTS} clients, {Q_SHARDS} "
        f"shards, --replicas {Q_REPLICAS}, quorum {Q_QUORUM}"
        + (" [smoke]" if QUORUM_SMOKE else ""),
        ["Metric", "Value"],
        [
            ["victim shards (own lic-0 chain)", ", ".join(victims)],
            ["renewals served", served],
            ["kills -> first victim-license renew", f"{first_success:.3f} s"],
            ["backpressure (EXHAUSTED) answers", exhausted],
            ["units forfeited (victim licenses)", forfeited],
            ["WAL bootstraps applied (survivors)", bootstraps_applied],
            ["double-granted licenses", len(double_grants)],
            ["client failures", len(failures)],
        ],
    )

    # Unlike the single-kill bench this file always persists results:
    # the CI smoke step uploads BENCH_quorum.json as its run artifact.
    payload = {
        "benchmark": "quorum_two_shard_kill",
        "smoke": QUORUM_SMOKE,
        "clients": Q_CLIENTS,
        "shards": Q_SHARDS,
        "replicas": Q_REPLICAS,
        "quorum": Q_QUORUM,
        "licenses": LICENSES,
        "lag_budget": LAG_BUDGET,
        "lag_grants": LAG_GRANTS,
        "victim_shards": victims,
        "renewals_served": served,
        "kill_to_first_success_seconds": round(first_success, 4),
        "backpressure_exhausted": exhausted,
        "forfeited_units": forfeited,
        "bootstraps_applied": bootstraps_applied,
        "double_grants": len(double_grants),
        "failed_calls": len(failures),
    }
    with open(BENCH_QUORUM_JSON, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


# ----------------------------------------------------------------------
# Membership: the ring add CLI verb migrates a live fleet, zero failures
# ----------------------------------------------------------------------
def test_ring_add_migrates_live_fleet_without_failed_calls(table_printer):
    two_ring = HashRing(default_shard_names(2))
    grown = two_ring.add_shard("shard-2")
    expected_moves = sorted(
        f"lic-{i}" for i in range(LICENSES)
        if grown.shard_for(f"lic-{i}") == "shard-2"
    )
    assert expected_moves, "pick license names so the join migrates some"

    ports = _free_ports(3)
    processes = _spawn_fleet(ports[:2], replicas=0)
    url = _fleet_url(ports[:2], timeout=10)
    joiner = None
    stop_event, started = threading.Event(), threading.Event()
    logs = [_ClientLog() for _ in range(CLIENTS)]
    try:
        threads = _run_crowd(url, stop_event, started, logs)
        started.set()
        time.sleep(WARMUP_SECONDS / 2)
        # The joining shard is a blank server: no --shard-of, no
        # licenses.  Everything it serves arrives via migration.
        joiner = _spawn(["serve-remote", "--port", str(ports[2]),
                         "--accept-any-platform"])
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        admin = subprocess.run(
            [sys.executable, "-m", "repro.cli", "ring", "add",
             "--endpoint", url, "--name", "shard-2",
             "--address", f"127.0.0.1:{ports[2]}"],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert admin.returncode == 0, admin.stdout + admin.stderr
        time.sleep(WARMUP_SECONDS / 2)  # stale routers chase tombstones
        stop_event.set()
        for thread in threads:
            thread.join(timeout=120)
        # A *fresh* client that only knows the original two shards must
        # reach every migrated license through its redirect tombstone.
        fresh = connect(url)
        try:
            for license_id in expected_moves:
                machine = SgxMachine(f"fresh-{license_id}")
                report = machine.local_authority.generate_report(1, 1,
                                                                 nonce=1)
                slid = fresh.call(
                    "init",
                    InitRequest(slid=None, report=report,
                                platform_secret=machine.platform_secret),
                    clock=machine.clock, stats=machine.stats,
                ).slid
                renewal = fresh.call(
                    "renew",
                    RenewRequest(slid=slid, license_id=license_id,
                                 license_blob=_blob_for(license_id),
                                 network_reliability=1.0, health=1.0),
                    clock=machine.clock,
                )
                assert renewal.status is Status.OK
                fresh.call("return_units",
                           (slid, license_id, renewal.granted_units),
                           clock=machine.clock)
        finally:
            fresh.close()
        # The conservation audit needs eyes on all three shards: the old
        # owners released the migrated ledgers behind their tombstones.
        probe = _fleet_audit(_fleet_url(ports, timeout=10,
                                        names="shard-0,shard-1,shard-2"))
    finally:
        stop_event.set()
        _stop(processes + ([joiner] if joiner is not None else []))

    failures = [log.failure for log in logs if log.failure is not None]
    assert not failures, f"client failures during migration: {failures[:3]}"
    assert f"migrated {len(expected_moves)} license(s)" in admin.stdout

    granted = _sum_logs(logs, "granted")
    returned = _sum_logs(logs, "returned")
    for license_id, entry in probe.items():
        held = granted.get(license_id, 0) - returned.get(license_id, 0)
        assert held <= entry["outstanding"], \
            f"{license_id}: migration dropped {held} held units"
        assert entry["lost"] == 0

    table_printer(
        f"ring add under load: {CLIENTS} clients, 2 -> 3 shards"
        + (" [smoke]" if SMOKE else ""),
        ["Metric", "Value"],
        [
            ["licenses migrated", ", ".join(expected_moves)],
            ["renewals served", sum(len(log.successes) for log in logs)],
            ["client failures", len(failures)],
        ],
    )
