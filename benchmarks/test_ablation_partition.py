"""Ablation: the partitioner's cluster count k and memory budget m_t.

Section 4.2.1 defaults k to the module count and m_t to the EPC size.
This ablation sweeps both and verifies the design rationale:

* m_t above the EPC admits working sets that fault — exactly what the
  budget exists to prevent;
* k barely matters once the refinement pass has healed hot call loops
  (robustness of the whole-cluster strategy);
* security is never traded away: key functions migrate at every point
  of the sweep.
"""

from __future__ import annotations

import pytest

from repro.partition import PartitionEvaluator, SecureLeasePartitioner
from repro.partition.securelease import SecureLeaseBudget
from repro.sgx.costs import EPC_SIZE_BYTES
from repro.workloads import get_workload

SCALE = 0.3


@pytest.fixture(scope="module")
def svm_run():
    # SVM: the one workload whose *protected* cluster carries real
    # memory (the 85 MB model), making m_t the binding constraint.
    return get_workload("svm").run_profiled(scale=SCALE)


def regenerate_mt_sweep(run):
    evaluator = PartitionEvaluator()
    rows = []
    for label, budget_bytes in (
        ("1 MB", 1 << 20),
        ("32 MB", 32 << 20),
        ("92 MB (EPC)", EPC_SIZE_BYTES),
        ("256 MB", 256 << 20),
    ):
        partitioner = SecureLeasePartitioner(
            budget=SecureLeaseBudget(memory_bytes=budget_bytes)
        )
        partition = partitioner.partition(run.program, run.graph, run.profile)
        report = evaluator.evaluate(run.program, run.graph, run.profile,
                                    partition)
        keys_in = set(get_workload("svm").key_function_names) <= partition.trusted
        rows.append([
            label,
            report.functions_migrated,
            f"{report.trusted_memory_bytes / (1 << 20):.0f}MB",
            report.epc_faults,
            f"{report.slowdown:.2f}x",
            "yes" if keys_in else "NO",
        ])
    return rows


def test_ablation_memory_budget(benchmark, table_printer, svm_run):
    rows = benchmark(regenerate_mt_sweep, svm_run)
    table_printer(
        "Ablation: memory budget m_t (SVM)",
        ["m_t", "Functions", "Enclave mem", "EPC faults", "Slowdown",
         "Keys migrated"],
        rows,
    )
    # Keys always migrate, whatever the budget.
    assert all(row[5] == "yes" for row in rows)
    # At the EPC default the partition is fault-free.
    epc_row = rows[2]
    assert epc_row[3] == 0
    # A budget above the EPC can admit fault-prone working sets —
    # the reason the paper pins m_t to the EPC size.
    over_row = rows[3]
    assert float(over_row[2].rstrip("MB")) >= float(epc_row[2].rstrip("MB"))


def regenerate_k_sweep():
    evaluator = PartitionEvaluator()
    run = get_workload("bfs").run_profiled(scale=SCALE)
    rows = []
    for k in (2, 4, 6, 10):
        partitioner = SecureLeasePartitioner(k=k)
        partition = partitioner.partition(run.program, run.graph, run.profile)
        report = evaluator.evaluate(run.program, run.graph, run.profile,
                                    partition)
        rows.append([
            f"k={k}",
            report.functions_migrated,
            report.ecalls + report.ocalls,
            f"{report.slowdown:.2f}x",
        ])
    return rows


def test_ablation_cluster_count(benchmark, table_printer):
    rows = benchmark(regenerate_k_sweep)
    table_printer(
        "Ablation: cluster count k (BFS)",
        ["k", "Functions migrated", "Boundary calls", "Slowdown"],
        rows,
    )
    # Robustness: across the sweep, boundary traffic stays tiny — the
    # refinement + absorption pipeline heals fragmentation at any k.
    assert all(row[2] < 100 for row in rows)
    slowdowns = [float(row[3].rstrip("x")) for row in rows]
    assert max(slowdowns) < 2 * min(slowdowns)
