"""Red-team campaign bench: the adversarial zero-gates, persisted.

Runs every campaign in :mod:`repro.redteam.campaigns` against a real
``serve-remote`` fleet — the headline kill chain (capture, SIGKILL,
replay at the promoted successor, tamper, rollback restore), the
deposed-primary resurrection, and the crash-forfeiture-vs-coalesced-
batch race — then persists one merged verdict to
``BENCH_redteam.json``.

Unlike the perf benches, the numbers that matter here are *zeros*:
``double_grants``, ``resurrected_units``, and
``stale_frames_accepted`` are CI-gated at exactly 0 by
``compare_baselines.py``; any other value means an execution-control
invariant broke under attack.

``SL_REDTEAM_SMOKE=1`` shrinks the crowds and chaos windows for CI;
the gates are identical at both scales — a breach in a small campaign
is still a breach.  The JSON is always written (smoke included): the
CI step uploads it as the run's adversarial audit artifact.
"""

from __future__ import annotations

import json
import os

from repro.redteam.audit import AuditReport
from repro.redteam.campaigns import CAMPAIGN_NAMES, run_campaigns

SMOKE = bool(os.environ.get("SL_REDTEAM_SMOKE"))
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_redteam.json")


def test_campaigns_all_defended(tmp_path, benchmark, table_printer):
    """Every campaign must end DEFENDED: all zero-gates at zero,
    conservation intact on every audited license, and every tampered
    frame met with a typed rejection."""

    def measure():
        return run_campaigns(str(tmp_path), smoke=SMOKE)

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert [r.name for r in results] == list(CAMPAIGN_NAMES)

    merged = AuditReport()  # fresh: merge() mutates its receiver
    for result in results:
        merged.merge(result.audit)

    table_printer(
        "Red-team campaigns vs the live fleet"
        + (" [smoke]" if SMOKE else ""),
        ["Campaign", "double_grants", "resurrected", "stale_accepted",
         "tamper rej/sent", "renewals", "client failures"],
        [
            [r.name, r.audit.double_grants, r.audit.resurrected_units,
             r.audit.stale_frames_accepted,
             f"{r.audit.tampered_frames_rejected}"
             f"/{r.audit.tampered_frames_sent}",
             r.audit.renewals_served, r.audit.failed_calls]
            for r in results
        ],
    )

    for result in results:
        audit = result.audit
        assert audit.ok(), (
            f"{result.name} BREACHED: "
            + "; ".join(audit.notes[:5])
        )
        assert audit.tampered_frames_rejected == audit.tampered_frames_sent, \
            (f"{result.name}: {audit.tampered_frames_sent} frames "
             f"tampered but only {audit.tampered_frames_rejected} drew "
             f"a typed rejection")
        assert audit.failed_calls == 0, \
            f"{result.name}: honest clients failed under attack"
    assert merged.renewals_served > 0

    # Always persisted — the zero-gates are this file's whole point and
    # the CI smoke step uploads BENCH_redteam.json as its artifact.
    payload = {
        "benchmark": "redteam_campaigns",
        "smoke": SMOKE,
        "campaigns": [
            {"name": r.name, **r.audit.as_dict(),
             "victim": r.details.get("victim")}
            for r in results
        ],
        "double_grants": merged.double_grants,
        "resurrected_units": merged.resurrected_units,
        "stale_frames_accepted": merged.stale_frames_accepted,
        "conservation_violations": merged.conservation_violations,
        "tampered_frames_sent": merged.tampered_frames_sent,
        "tampered_frames_rejected": merged.tampered_frames_rejected,
        "renewals_served": merged.renewals_served,
        "failed_calls": merged.failed_calls,
        "licenses_audited": merged.licenses_audited,
        "ok": merged.ok(),
    }
    with open(BENCH_JSON, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
