"""Ablation: lease-tree geometry.

DESIGN.md calls out the 256-entry / 4-level layout (chosen to mirror a
page table over 32-bit IDs) as a design choice worth probing.  This
ablation compares the paper's tree against narrower radix trees on the
two axes that matter: find() pointer chases and resident metadata.

A narrower fan-out means deeper trees (more hops per find) but smaller
nodes; the 256/4 point buys page-table-like lookups at node sizes that
exactly match the 4 KB sealing granularity.
"""

from __future__ import annotations

import math

import pytest

from repro.core.gcl import Gcl
from repro.core.lease_tree import LeaseTree, NODE_SIZE_BYTES
from repro.crypto.keys import KeyGenerator
from repro.sim.rng import DeterministicRng

N_LEASES = 4_096


def generic_radix_stats(fanout: int, n_leases: int):
    """Analytic hops/levels/node-bytes for a radix tree over 32-bit IDs.

    Sequential IDs 0..n: the number of allocated nodes per level is
    ceil(n / fanout^(levels - level)).
    """
    levels = math.ceil(32 / math.log2(fanout))
    entry_bytes = 16
    node_bytes = fanout * entry_bytes
    nodes = 0
    for level in range(1, levels + 1):
        span = fanout ** (levels - level)
        nodes += math.ceil(n_leases / max(span, 1)) if span >= 1 else n_leases
    return levels, nodes * node_bytes


def measured_paper_tree(n_leases: int):
    """The real implementation's hops and resident bytes."""
    hops = []
    tree = LeaseTree(keygen=KeyGenerator(DeterministicRng(5)),
                     find_cost_hook=hops.append)
    for lease_id in range(n_leases):
        tree.insert(lease_id, Gcl.count_based("lic", 1))
    tree.find(n_leases // 2)
    return hops[-1], tree.resident_bytes()


def regenerate_ablation():
    rows = []
    for fanout in (16, 64, 256):
        levels, metadata_bytes = generic_radix_stats(fanout, N_LEASES)
        rows.append([f"radix-{fanout}", levels,
                     f"{metadata_bytes / 1024:.0f}KB (analytic)"])
    hops, resident = measured_paper_tree(N_LEASES)
    rows.append(["paper 256/4 (measured)", hops,
                 f"{resident / 1024:.0f}KB incl. leases"])
    return rows


def test_ablation_tree_fanout(benchmark, table_printer):
    rows = benchmark(regenerate_ablation)
    table_printer(
        "Ablation: lease-tree fan-out at 4,096 leases",
        ["Geometry", "Find hops", "Metadata"],
        rows,
    )
    # The measured tree walks exactly its 4 levels.
    assert rows[-1][1] == 4
    # Narrow radix trees chase more pointers per find.
    assert rows[0][1] > rows[2][1]


def test_ablation_spatial_locality(benchmark, table_printer):
    """Sequential vs scattered lease IDs: the allocator's sequential
    policy (Section 5.2.2's locality argument) saves interior nodes."""

    def measure():
        sequential = LeaseTree(keygen=KeyGenerator(DeterministicRng(5)))
        scattered = LeaseTree(keygen=KeyGenerator(DeterministicRng(5)))
        rng = DeterministicRng(77)
        for i in range(512):
            sequential.insert(i, Gcl.count_based("lic", 1))
            scattered.insert(rng.randint(0, (1 << 32) - 1),
                             Gcl.count_based("lic", 1))
        return sequential.resident_bytes(), scattered.resident_bytes()

    seq_bytes, scat_bytes = benchmark(measure)
    table_printer(
        "Ablation: lease-ID locality at 512 leases",
        ["Allocation", "Resident bytes"],
        [["Sequential IDs", f"{seq_bytes:,}"],
         ["Random 32-bit IDs", f"{scat_bytes:,}"]],
    )
    assert seq_bytes < 0.2 * scat_bytes
