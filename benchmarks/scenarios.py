"""Open-loop scenario engine: fleet-scale load shapes for SL-Remote.

The wire and failover benchmarks drive closed renew/return loops — each
client fires its next request the moment the previous one answers, so
offered load self-throttles to whatever the server sustains.  Real
fleets do not behave that way: demand arrives on its own clock.  This
engine generates *arrival-curve-driven* load:

* **zipf license popularity** — a few licenses take most of the crowd;
* **flash crowd** — a trickle of early arrivals, then most of the
  fleet lands inside a narrow burst window;
* **diurnal curve** — arrival intensity follows a day/night cosine
  with a configurable floor, so the fleet sees load peaks separated by
  deep valleys (the regime where grant sizes should recover);
* **mass churn** — a slice of the crowd crashes mid-hold (re-init
  without graceful shutdown), exercising the pessimistic write-off and
  the forfeiture budget;
* **escrow storm** — a slice (or all) of the crowd gracefully shuts
  down mid-run and immediately re-inits the same SLID, expecting the
  exact escrowed root key back — mass pressure on the quorum-gated
  identity path, with zero forfeiture allowed;
* **lossy last-mile tiers** — clients ship tiered reliability priors
  *and* synthetic transport telemetry (rising retry/reconnect
  counters), exercising the server's evidence-vs-claim weighting.

Simulated SL-Locals are multiplexed: a small pool of worker threads
shares the arrival schedule and drives many SLIDs each over pipelined
(optionally batching) endpoints, so 10^4-10^5 simulated clients need
tens of sockets, not tens of thousands of threads.  The schedule is
open-loop — a request whose arrival time has passed is issued as soon
as a worker frees up, and the slip is measured rather than hidden.

Pure library: no pytest, no subprocess management.  The harness in
``test_scenarios.py`` owns the fleet processes and the acceptance
gates.
"""

from __future__ import annotations

import math
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.licensefile import VENDOR_SECRET, mint_license_blob
from repro.core.protocol import (InitRequest, RenewRequest, ShutdownNotice,
                                 Status)
from repro.net.endpoint import connect
from repro.sgx import SgxMachine
from repro.sim.clock import Clock


# ----------------------------------------------------------------------
# Load-shape primitives
# ----------------------------------------------------------------------
def zipf_weights(n: int, s: float = 1.1) -> List[float]:
    """Normalized zipf popularity: weight of rank r is 1/r^s."""
    raw = [1.0 / ((rank + 1) ** s) for rank in range(n)]
    total = sum(raw)
    return [w / total for w in raw]


def weighted_pick(weights: Sequence[float], rng: random.Random) -> int:
    """Index drawn from ``weights`` (assumed normalized)."""
    roll = rng.random()
    cumulative = 0.0
    for index, weight in enumerate(weights):
        cumulative += weight
        if roll < cumulative:
            return index
    return len(weights) - 1


def flash_crowd_schedule(clients: int, duration: float,
                         rng: random.Random,
                         trickle_fraction: float = 0.2,
                         burst_start: float = 0.6,
                         burst_width: float = 0.1) -> List[float]:
    """Arrival times for a flash crowd.

    ``trickle_fraction`` of the crowd arrives uniformly over the lead-in
    ``[0, burst_start * duration)``; everyone else lands inside the
    burst window ``[burst_start, burst_start + burst_width) * duration``
    — the moment a product launch (or a license popping up on a forum)
    hits.
    """
    times = []
    trickle = int(clients * trickle_fraction)
    for _ in range(trickle):
        times.append(rng.uniform(0.0, burst_start * duration))
    for _ in range(clients - trickle):
        times.append(duration * (burst_start + rng.random() * burst_width))
    times.sort()
    return times


def mass_churn_schedule(clients: int, duration: float,
                        rng: random.Random) -> List[float]:
    """Steady arrivals for a churn scenario: uniform over the run."""
    times = sorted(rng.uniform(0.0, duration) for _ in range(clients))
    return times


def diurnal_schedule(clients: int, duration: float, rng: random.Random,
                     cycles: int = 2, trough: float = 0.15) -> List[float]:
    """Arrival times following a day/night intensity curve.

    Intensity is ``trough + (1 - trough) * (1 - cos(2π·cycles·t/D)) / 2``
    — full days compressed into the run: ``cycles`` peaks separated by
    valleys that never quite go silent (``trough`` is the night-shift
    floor).  Sampled by rejection against the peak intensity, so the
    empirical histogram follows the curve for any crowd size.
    """
    times: List[float] = []
    while len(times) < clients:
        t = rng.uniform(0.0, duration)
        intensity = trough + (1.0 - trough) * 0.5 * (
            1.0 - math.cos(2.0 * math.pi * cycles * t / duration))
        if rng.random() < intensity:
            times.append(t)
    times.sort()
    return times


# ----------------------------------------------------------------------
# Scenario description
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReliabilityTier:
    """One last-mile link quality class.

    ``drops_per_renew``/``redials_per_renew`` advance the synthetic
    transport counters shipped as renew telemetry, so the server's
    evidence check sees a link that keeps dropping frames even though
    the client claims ``network_reliability``.
    """

    name: str
    share: float                  # fraction of the crowd on this tier
    network_reliability: float    # the client's claimed/observed prior
    drops_per_renew: int = 0
    redials_per_renew: int = 0


DEFAULT_TIERS = (
    ReliabilityTier("fibre", share=0.6, network_reliability=1.0),
    ReliabilityTier("lossy", share=0.3, network_reliability=0.7,
                    drops_per_renew=1),
    ReliabilityTier("flaky", share=0.1, network_reliability=0.4,
                    drops_per_renew=2, redials_per_renew=1),
)


@dataclass(frozen=True)
class ScenarioSpec:
    """One open-loop scenario, fully determined by (spec, seed)."""

    name: str
    clients: int
    licenses: int
    pool_per_license: int
    renews_per_client: int = 3
    duration_seconds: float = 4.0
    zipf_s: float = 1.1
    tiers: Sequence[ReliabilityTier] = DEFAULT_TIERS
    arrivals: str = "flash_crowd"         # or "mass_churn" / "diurnal"
    churn_fraction: float = 0.0           # crowd slice that crashes
    churn_health: float = 0.85            # what churn-prone clients claim
    escrow_fraction: float = 0.0          # slice that gracefully cycles

    def license_ids(self) -> List[str]:
        return [f"lic-{index}" for index in range(self.licenses)]


@dataclass
class _SimClient:
    """One simulated SL-Local's plan (built up-front, deterministic)."""

    index: int
    arrival: float
    license_id: str
    tier: ReliabilityTier
    churns: bool
    health: float
    escrows: bool = False
    retries: int = 0
    reconnects: int = 0


def _build_crowd(spec: ScenarioSpec, rng: random.Random) -> List[_SimClient]:
    if spec.arrivals == "flash_crowd":
        arrivals = flash_crowd_schedule(spec.clients, spec.duration_seconds,
                                        rng)
    elif spec.arrivals == "mass_churn":
        arrivals = mass_churn_schedule(spec.clients, spec.duration_seconds,
                                       rng)
    elif spec.arrivals == "diurnal":
        arrivals = diurnal_schedule(spec.clients, spec.duration_seconds, rng)
    else:
        raise ValueError(f"unknown arrival curve {spec.arrivals!r}")
    weights = zipf_weights(spec.licenses, spec.zipf_s)
    licenses = spec.license_ids()
    tier_weights = [tier.share for tier in spec.tiers]
    total_share = sum(tier_weights)
    tier_weights = [w / total_share for w in tier_weights]
    crowd = []
    for index, arrival in enumerate(arrivals):
        tier = spec.tiers[weighted_pick(tier_weights, rng)]
        # One roll splits the crowd into crash-churners, graceful
        # escrow-cyclers, and everyone else (mutually exclusive).
        roll = rng.random()
        churns = roll < spec.churn_fraction
        escrows = (not churns
                   and roll < spec.churn_fraction + spec.escrow_fraction)
        crowd.append(_SimClient(
            index=index,
            arrival=arrival,
            license_id=licenses[weighted_pick(weights, rng)],
            tier=tier,
            churns=churns,
            health=spec.churn_health if churns else 1.0,
            escrows=escrows,
        ))
    return crowd


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
@dataclass
class ScenarioResult:
    """Everything one run measured, JSON-ready via ``metrics()``."""

    spec: ScenarioSpec
    elapsed_seconds: float = 0.0
    renews_ok: int = 0
    renews_exhausted: int = 0
    granted_units: int = 0
    crashes: int = 0
    crash_forfeits: List[int] = field(default_factory=list)
    escrow_cycles: int = 0
    escrow_restored: int = 0
    latencies_ms: List[float] = field(default_factory=list)
    slips_ms: List[float] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    @property
    def renews_total(self) -> int:
        return self.renews_ok + self.renews_exhausted

    def metrics(self) -> Dict[str, object]:
        total = max(self.renews_total, 1)
        return {
            "clients": self.spec.clients,
            "licenses": self.spec.licenses,
            "pool_per_license": self.spec.pool_per_license,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "renews_total": self.renews_total,
            "renews_ok": self.renews_ok,
            "exhausted": self.renews_exhausted,
            "exhausted_rate": round(self.renews_exhausted / total, 5),
            "goodput_renewals_per_second": round(
                self.renews_ok / max(self.elapsed_seconds, 1e-9), 1),
            "granted_units": self.granted_units,
            "crashes": self.crashes,
            "forfeited_units": sum(self.crash_forfeits),
            "max_crash_forfeit": max(self.crash_forfeits, default=0),
            "escrow_cycles": self.escrow_cycles,
            "escrow_restored": self.escrow_restored,
            "p50_ms": round(_quantile(self.latencies_ms, 0.50), 3),
            "p99_ms": round(_quantile(self.latencies_ms, 0.99), 3),
            "schedule_slip_p99_ms": round(_quantile(self.slips_ms, 0.99), 1),
            "failures": len(self.failures),
        }


def _quantile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    position = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[position]


def run_scenario(url: str, spec: ScenarioSpec, seed: int = 7,
                 workers: int = 12, connections: int = 4) -> ScenarioResult:
    """Drive one scenario against a running fleet at ``url``.

    Workers share the arrival-ordered crowd; each simulated SL-Local is
    inited (own SLID), issues ``renews_per_client`` renewals with its
    tier's telemetry and *holds* what it is granted, then — if
    churn-marked — crashes (re-init without graceful shutdown),
    forfeiting everything it held.

    The crowd is *multiplexed*: ``workers`` threads share only
    ``connections`` endpoints, so concurrent renewals from different
    simulated clients ride the same pipelined socket (and, with a
    ``batch_window`` on the URL, coalesce into ``BatchRequest``
    frames) — tens of sockets carry 10^4+ SL-Locals.
    """
    rng = random.Random(seed)
    crowd = _build_crowd(spec, rng)
    blobs = {license_id: mint_license_blob(license_id, VENDOR_SECRET)
             for license_id in spec.license_ids()}
    result = ScenarioResult(spec=spec)
    cursor = {"next": 0}
    cursor_lock = threading.Lock()
    logs = [ScenarioResult(spec=spec) for _ in range(workers)]
    started = threading.Event()
    endpoints = [connect(url) for _ in range(max(1, connections))]

    def worker(worker_index: int) -> None:
        log = logs[worker_index]
        endpoint = endpoints[worker_index % len(endpoints)]
        started.wait()
        while True:
            with cursor_lock:
                position = cursor["next"]
                if position >= len(crowd):
                    return
                cursor["next"] = position + 1
            client = crowd[position]
            due = t0 + client.arrival
            now = time.monotonic()
            if due > now:
                time.sleep(due - now)
                log.slips_ms.append(0.0)
            else:
                log.slips_ms.append((now - due) * 1000.0)
            try:
                _drive_client(endpoint, client, blobs, spec, log)
            except Exception as exc:  # noqa: BLE001 - recorded, judged later
                log.failures.append(f"client {client.index}: {exc!r}")

    threads = [threading.Thread(target=worker, args=(index,), daemon=True)
               for index in range(workers)]
    for thread in threads:
        thread.start()
    t0 = time.monotonic()
    started.set()
    # 10^5-client crowds legitimately run for many minutes; scale the
    # watchdog with offered load instead of hard-coding one ceiling.
    deadline = time.monotonic() + max(
        600.0, 0.02 * len(crowd) * max(1, spec.renews_per_client))
    try:
        for thread in threads:
            thread.join(timeout=max(1.0, deadline - time.monotonic()))
    finally:
        for endpoint in endpoints:
            endpoint.close()
    result.elapsed_seconds = time.monotonic() - t0
    for log in logs:
        result.renews_ok += log.renews_ok
        result.renews_exhausted += log.renews_exhausted
        result.granted_units += log.granted_units
        result.crashes += log.crashes
        result.crash_forfeits.extend(log.crash_forfeits)
        result.escrow_cycles += log.escrow_cycles
        result.escrow_restored += log.escrow_restored
        result.latencies_ms.extend(log.latencies_ms)
        result.slips_ms.extend(log.slips_ms)
        result.failures.extend(log.failures)
    return result


def _drive_client(endpoint, client: _SimClient, blobs, spec: ScenarioSpec,
                  log: ScenarioResult) -> None:
    """One simulated SL-Local's lifetime.

    The client *holds* every unit it is granted for the rest of the run
    (a flash crowd is people launching the app and keeping it open, not
    a renew/return ping-pong) — that is what makes the license's
    concurrent-holder count C genuinely accumulate, which is the regime
    where Algorithm 1's geometric g = αTG/(C·D) decay floors static
    proposals to zero while most of the pool sits idle.
    """
    machine = SgxMachine(f"sim-{client.index}")
    report = machine.local_authority.generate_report(1, 1, nonce=1)
    init = endpoint.call(
        "init",
        InitRequest(slid=None, report=report,
                    platform_secret=machine.platform_secret),
        clock=machine.clock, stats=machine.stats,
    )
    slid = init.slid
    held = 0
    for _cycle in range(spec.renews_per_client):
        client.retries += client.tier.drops_per_renew
        client.reconnects += client.tier.redials_per_renew
        request = RenewRequest(
            slid=slid, license_id=client.license_id,
            license_blob=blobs[client.license_id],
            network_reliability=client.tier.network_reliability,
            health=client.health,
            rtt_seconds=0.001,
            retries=client.retries,
            reconnects=client.reconnects,
        )
        issued = time.monotonic()
        response = endpoint.call("renew", request, clock=machine.clock)
        log.latencies_ms.append((time.monotonic() - issued) * 1000.0)
        if response.status is Status.OK:
            log.renews_ok += 1
            log.granted_units += response.granted_units
            held += response.granted_units
        elif response.status is Status.EXHAUSTED:
            log.renews_exhausted += 1
        else:
            raise RuntimeError(
                f"renew answered {response.status} for {client.license_id}"
            )
    if client.churns:
        # Crash: re-init the same SLID without a graceful shutdown.
        # The pessimistic rule writes off everything still held.
        endpoint.call(
            "init",
            InitRequest(slid=slid, report=report,
                        platform_secret=machine.platform_secret),
            clock=machine.clock, stats=machine.stats,
        )
        log.crashes += 1
        log.crash_forfeits.append(held)
    elif client.escrows:
        # Graceful cycle: escrow the root sealing key, come right back,
        # and demand the *exact* key from the (quorum-replicated)
        # identity record.  Holdings survive — the tree image on disk
        # still owns them — so this path must forfeit nothing.
        root_key = 0x5EC0DE + client.index * 7919
        status = endpoint.call(
            "shutdown", ShutdownNotice(slid=slid, root_key=root_key),
            clock=machine.clock,
        )
        if status is not Status.OK:
            raise RuntimeError(f"shutdown answered {status} for slid {slid}")
        revived = endpoint.call(
            "init",
            InitRequest(slid=slid, report=report,
                        platform_secret=machine.platform_secret),
            clock=machine.clock, stats=machine.stats,
        )
        log.escrow_cycles += 1
        if (revived.status is Status.OK
                and revived.old_backup_key == root_key):
            log.escrow_restored += 1
        else:
            raise RuntimeError(
                f"escrow cycle lost identity for slid {slid}: "
                f"{revived.status}, obk={revived.old_backup_key}"
            )


# ----------------------------------------------------------------------
# Fleet probes (the harness audits through these)
# ----------------------------------------------------------------------
def fleet_ledger_audit(url: str) -> Dict[str, Dict]:
    """Fleet-wide per-license accounting through the routed endpoint.

    A ``ledger_probe`` with a ``None`` payload fans out across shards
    and merges (license ids are disjoint by construction); every row
    must conserve: ``outstanding + lost + available == total``.
    """
    endpoint = connect(url)
    try:
        probe = endpoint.call("ledger_probe", None, clock=Clock())
    finally:
        endpoint.close()
    for license_id, row in probe.items():
        leak = row["outstanding"] + row["lost"] + row["available"]
        if leak != row["total"]:
            raise AssertionError(f"{license_id} leaked units: {row}")
    return probe


def fleet_renewal_health(ports: Sequence[int]) -> List[Dict]:
    """Every shard's ``_server_stats`` renewal section, by direct dial."""
    reports = []
    for port in ports:
        endpoint = connect(f"sl://127.0.0.1:{port}")
        try:
            stats = endpoint.call("_server_stats", None, clock=Clock())
        finally:
            endpoint.close()
        renewal = stats.get("renewal")
        if renewal is not None:
            reports.append(renewal)
    return reports
