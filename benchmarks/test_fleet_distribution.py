"""Fleet-level lease-distribution benchmark (Algorithm 1 at scale).

Beyond the paper's single-machine evaluation: Algorithm 1's whole point
is fleets (Table 2's C, alpha, n, h inputs), so this bench sweeps fleet
shapes and reports how the server distributes one license — fairness
under weights, loss-bounding under crashes, and renewal traffic as a
function of fleet size.
"""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, NodeSpec

LICENSE = "lic-fleet-bench"
POOL = 50_000


def regenerate_fleet_sweep():
    rows = []
    for n_nodes in (2, 4, 8):
        cluster = Cluster(seed=67)
        cluster.issue_license(LICENSE, POOL)
        for index in range(n_nodes):
            cluster.add_node(NodeSpec(
                f"n{index}",
                health=1.0 if index % 2 == 0 else 0.7,
            ))
        served = cluster.run_checks(LICENSE, checks_per_node=100)
        renewals = cluster.remote.renewals_served
        loss = cluster.expected_loss(LICENSE)
        rows.append([
            n_nodes,
            sum(served.values()),
            renewals,
            f"{loss:,.0f}",
            "yes" if cluster.pool_conserved(LICENSE, POOL) else "NO",
        ])
    return rows


def test_fleet_size_sweep(benchmark, table_printer):
    rows = benchmark.pedantic(regenerate_fleet_sweep, rounds=1, iterations=1)
    table_printer(
        "Fleet sweep: one 50,000-unit license, 100 checks per node",
        ["Nodes", "Checks served", "Renewal RPCs", "Expected loss",
         "Pool conserved"],
        rows,
    )
    tau = 0.10 * POOL
    for row in rows:
        assert row[1] == row[0] * 100          # everyone fully served
        assert float(row[3].replace(",", "")) <= tau + 1.0
        assert row[4] == "yes"


def regenerate_crash_storm():
    """A fleet where half the nodes crash-loop: the loss bound holds
    and honest nodes keep full service."""
    cluster = Cluster(seed=73)
    cluster.issue_license(LICENSE, POOL)
    honest = [NodeSpec(f"honest-{i}") for i in range(3)]
    crashy = [NodeSpec(f"crashy-{i}", health=0.6) for i in range(3)]
    for spec in honest + crashy:
        cluster.add_node(spec)

    honest_served = 0
    for round_index in range(5):
        served = cluster.run_checks(LICENSE, checks_per_node=40)
        honest_served += sum(served[s.name] for s in honest)
        for spec in crashy:
            cluster.crash_node(spec.name)
    ledger = cluster.remote.ledger(LICENSE)
    return honest_served, ledger.lost_units, cluster.pool_conserved(
        LICENSE, POOL
    )


def test_fleet_crash_storm(benchmark, table_printer):
    honest_served, lost, conserved = benchmark.pedantic(
        regenerate_crash_storm, rounds=1, iterations=1
    )
    table_printer(
        "Crash storm: 3 honest + 3 crash-looping nodes, 5 rounds x 40 checks",
        ["Honest checks served", "Units lost to crashes", "Pool conserved"],
        [[honest_served, f"{lost:,}", "yes" if conserved else "NO"]],
    )
    assert honest_served == 3 * 5 * 40   # honest service untouched
    assert conserved
    assert lost < POOL                   # crashers never drain the pool
