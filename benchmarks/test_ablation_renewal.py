"""Ablation: the renewal policy's D (scale divisor) and tau (loss bound).

Section 7.4 fixes D = 4 (g_i = 25 % of G_i) as "a balance between the
performance of an application and crash-based attacks on SL-Local", and
tau = 10 % of the total GCL because "a lower value results in frequent
remote attestations".  This ablation sweeps both knobs and shows the
trade-off the authors describe:

* small D (big grants) -> few renewals but large crash losses;
* large D (small grants) -> frequent network round trips;
* small tau -> tight loss bound but starved grants for shaky nodes.
"""

from __future__ import annotations

import pytest

from repro.core.renewal import LicenseLedger, NodeCondition, RenewalPolicy, renew_lease

TOTAL = 10_000
CHECKS = 8_000


def simulate_client(policy: RenewalPolicy, health: float = 1.0,
                    crash_every: int = 0):
    """Run up to CHECKS license checks under a policy.

    Returns (renewal round trips, checks served, units lost).  A crash
    every ``crash_every`` checks burns the remaining local balance; the
    run ends when the pool can grant nothing more.
    """
    ledger = LicenseLedger(license_id="lic", total_gcl=TOTAL,
                           beta=policy.default_beta)
    requester = NodeCondition("n1", health=health)
    renewals = 0
    lost = 0
    served = 0
    balance = 0
    for check in range(1, CHECKS + 1):
        if balance == 0:
            decision = renew_lease(ledger, requester, [requester], policy)
            renewals += 1
            balance = decision.granted_units
            if balance == 0:
                break
        balance -= 1
        served += 1
        if crash_every and check % crash_every == 0:
            # Pessimistic write-off: the unspent balance is lost; the
            # spent portion stays consumed (it was real usage).
            lost += balance
            ledger.outstanding["n1"] = max(
                0, ledger.outstanding.get("n1", 0) - balance
            )
            ledger.lost_units += balance
            balance = 0
    return renewals, served, lost


def regenerate_d_sweep():
    rows = []
    for divisor in (1.0, 2.0, 4.0, 8.0, 16.0):
        policy = RenewalPolicy(scale_divisor=divisor)
        renewals, _, _ = simulate_client(policy)
        _, served, lost = simulate_client(policy, crash_every=500)
        rows.append([f"D={divisor:g}", renewals, served, lost])
    return rows


def test_ablation_scale_divisor(benchmark, table_printer):
    rows = benchmark(regenerate_d_sweep)
    table_printer(
        "Ablation: renewal divisor D (8,000 checks, 10,000-unit license)",
        ["Policy", "Round trips (no crash)", "Served (crash every 500)",
         "Units lost"],
        rows,
    )
    renewals = [row[1] for row in rows]
    served = [row[2] for row in rows]
    # Bigger D -> more network round trips (smaller grants) ...
    assert renewals[-1] > renewals[0]
    # ... but a crashing client gets more mileage from the same pool —
    # the balance the paper sets D = 4 to strike.
    assert served[-1] > served[0]


def regenerate_tau_sweep():
    rows = []
    for tau_fraction in (0.01, 0.05, 0.10, 0.25):
        policy = RenewalPolicy(tau_fraction=tau_fraction)
        renewals, _, _ = simulate_client(policy, health=0.8)
        ledger = LicenseLedger(license_id="lic", total_gcl=TOTAL,
                               beta=policy.default_beta)
        shaky = NodeCondition("n1", health=0.8)
        grant = renew_lease(ledger, shaky, [shaky], policy).granted_units
        rows.append([f"tau={tau_fraction:.0%}", grant, renewals])
    return rows


def test_ablation_tau(benchmark, table_printer):
    rows = benchmark(regenerate_tau_sweep)
    table_printer(
        "Ablation: loss bound tau (shaky node, health 0.8)",
        ["Policy", "First grant (units)", "Renewals for 2,000 checks"],
        rows,
    )
    grants = [row[1] for row in rows]
    renewals = [row[2] for row in rows]
    # A tighter tau shrinks what a shaky node may hold locally...
    assert grants[0] < grants[-1]
    # ...which costs more remote round trips (the paper's warning).
    assert renewals[0] >= renewals[-1]


def test_ablation_expected_loss_never_violated(benchmark):
    """Whatever the knobs, the invariant holds: loss <= tau."""

    def measure():
        violations = 0
        for tau_fraction in (0.01, 0.05, 0.10, 0.25):
            for health in (0.5, 0.7, 0.9):
                policy = RenewalPolicy(tau_fraction=tau_fraction)
                ledger = LicenseLedger(license_id="lic", total_gcl=TOTAL,
                                       beta=policy.default_beta)
                nodes = [NodeCondition(f"n{i}", health=health) for i in range(4)]
                for requester in nodes * 3:
                    renew_lease(ledger, requester, nodes, policy)
                    loss = ledger.expected_loss()
                    if loss > tau_fraction * TOTAL + 1.0:
                        violations += 1
        return violations

    assert benchmark(measure) == 0
