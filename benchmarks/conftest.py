"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints the corresponding rows (virtual-time measurements from the
simulated SGX platform).  pytest-benchmark additionally times the real
(host) execution of each regeneration kernel.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest


def print_table(title: str, headers, rows) -> None:
    """Render one paper-style table to stdout."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print()
    print(f"== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))


@pytest.fixture
def table_printer():
    return print_table
