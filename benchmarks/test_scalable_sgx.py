"""Section 7.5: impact of scalable SGX (512 GB EPC).

The paper argues SecureLease stays relevant under Intel's scalable SGX:
the huge EPC removes faults, but (a) the firmware must still provide
integrity/freshness over whatever is enclave-resident — so a small
secure footprint stays valuable — and (b) add-ons sharing one address
space still need the partitioner's isolation.

This bench re-runs the Table 5 comparison under the 512 GB cost model
and reports what changes: Glamdring's fault column collapses to zero,
its runtime gap narrows, and the footprint gap (the firmware's burden)
stays orders of magnitude wide.
"""

from __future__ import annotations

import statistics

import pytest

from repro.partition import (
    GlamdringPartitioner,
    PartitionEvaluator,
    SecureLeasePartitioner,
)
from repro.sgx.costs import SCALABLE_SGX_COSTS, SgxCostModel
from repro.workloads import all_workloads

SCALE = 0.3


def regenerate_scalable_comparison():
    rows = []
    gaps = {"sgx1": [], "scalable": []}
    for name, workload in all_workloads().items():
        run = workload.run_profiled(scale=SCALE)
        secure_partition = SecureLeasePartitioner().partition(
            run.program, run.graph, run.profile
        )
        glam_partition = GlamdringPartitioner().partition(
            run.program, run.graph, run.profile
        )
        small = PartitionEvaluator()
        big = PartitionEvaluator(costs=SCALABLE_SGX_COSTS)

        glam_sgx1 = small.evaluate(run.program, run.graph, run.profile,
                                   glam_partition)
        glam_big = big.evaluate(run.program, run.graph, run.profile,
                                glam_partition)
        secure_sgx1 = small.evaluate(run.program, run.graph, run.profile,
                                     secure_partition)
        secure_big = big.evaluate(run.program, run.graph, run.profile,
                                  secure_partition)
        gaps["sgx1"].append(secure_sgx1.improvement_over(glam_sgx1))
        gaps["scalable"].append(secure_big.improvement_over(glam_big))
        footprint_ratio = (
            glam_big.trusted_memory_bytes
            / max(secure_big.trusted_memory_bytes, 1)
        )
        rows.append([
            name,
            glam_sgx1.epc_faults,
            glam_big.epc_faults,
            f"{secure_sgx1.improvement_over(glam_sgx1):+.1%}",
            f"{secure_big.improvement_over(glam_big):+.1%}",
            f"{footprint_ratio:,.0f}x",
        ])
    return rows, statistics.mean(gaps["sgx1"]), statistics.mean(gaps["scalable"])


def test_scalable_sgx_comparison(benchmark, table_printer):
    rows, mean_sgx1, mean_scalable = benchmark.pedantic(
        regenerate_scalable_comparison, rounds=1, iterations=1
    )
    table_printer(
        "Section 7.5: SGX1 (92 MB EPC) vs scalable SGX (512 GB EPC)",
        ["Workload", "Glam faults (SGX1)", "Glam faults (512G)",
         "SLease impr (SGX1)", "SLease impr (512G)",
         "Footprint gap (512G)"],
        rows,
    )
    print(f"\nMean SecureLease improvement: SGX1 {mean_sgx1:.1%}, "
          f"scalable SGX {mean_scalable:.1%}")
    # Scalable SGX removes every Glamdring fault...
    assert all(row[2] == 0 for row in rows)
    # ...which narrows (but need not erase) SecureLease's runtime edge.
    assert mean_scalable < mean_sgx1
    # The footprint argument survives: Glamdring-style whole-app
    # enclaves burden the integrity firmware 10-1000x more.
    for row in rows:
        assert float(row[5].rstrip("x").replace(",", "")) >= 1.0


def test_scalable_sgx_still_needs_partitioning_for_isolation(benchmark):
    """The paper's second §7.5 argument: add-ons share an enclave's
    address space, so isolating them is a partitioning property, not an
    EPC-size property — the guarded key functions remain per-license
    regardless of the cost model."""
    from repro.workloads.pluginhost import PLUGIN_LICENSES, PluginHostWorkload

    def measure():
        run = PluginHostWorkload().run_profiled(scale=0.2)
        partition = SecureLeasePartitioner(
            costs=SCALABLE_SGX_COSTS
        ).partition(run.program, run.graph, run.profile)
        guards = {
            run.program.functions[name].guarded_by
            for name in partition.trusted
            if run.program.functions[name].guarded_by
        }
        return guards

    guards = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert guards == set(PLUGIN_LICENSES)
