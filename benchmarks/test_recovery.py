"""Whole-fleet crash recovery from the durable ledger, over real sockets.

The durability release's headline claim, measured end to end:

* **Kill everything.**  A 3-shard ``serve-remote`` fleet runs with
  ``--data-dir`` and ``--fsync always`` — every grant is journalled to
  its shard's sealed write-ahead log *before* it is acknowledged.  A
  client crowd renews and returns continuously; mid-load the harness
  SIGKILLs **every** shard at once (no replication, no survivors — the
  disk is the only witness).  The fleet restarts on the same ports from
  the same directories; each shard prints its ``SL-Recovery`` marker
  before accepting connections.

* The audit after restart: per-license unit conservation holds; no
  committed unit is resurrected — every unit a client was holding at
  the kill is accounted as forfeited (``lost``), never re-granted
  (paper Section 5.7's pessimistic rule); outstanding is empty (the
  forfeiture is total); and a *fresh* client crowd completes a full
  renew/return round with zero failed calls.

``SL_RECOVERY_SMOKE=1`` shrinks the crowd for CI; full-scale numbers
(recovery wall-clock, WAL replay throughput) are persisted to
``BENCH_recovery.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import socket
import subprocess
import sys
import tempfile
import threading
import time

from repro.core.protocol import InitRequest, RenewRequest, Status
from repro.net.endpoint import connect
from repro.net.sharding import default_shard_names
from repro.sgx import SgxMachine
from repro.sim.clock import Clock

SMOKE = bool(os.environ.get("SL_RECOVERY_SMOKE"))

CLIENTS = 8 if SMOKE else 50
SHARDS = 3
LICENSES = 3 if SMOKE else 6
POOL = 10**9
LOAD_SECONDS = 1.5 if SMOKE else 3.0

MARKER = "SL-Remote listening on "
RECOVERY_MARKER = "SL-Recovery "
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_recovery.json")


# ----------------------------------------------------------------------
# Fleet-process harness
# ----------------------------------------------------------------------
def _free_ports(count):
    sockets = []
    try:
        for _ in range(count):
            sock = socket.socket()
            sock.bind(("127.0.0.1", 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


def _license_args():
    return [arg
            for index in range(LICENSES)
            for arg in ("--license", f"lic-{index}:{POOL}")]


def _spawn(command):
    """Start one repro.cli subprocess; returns ``(process, startup_lines)``.

    The startup lines include any ``SL-Recovery`` markers, which print
    *before* the listening marker — a recovered shard must finish its
    replay before it accepts a single connection.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *command],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    lines = []
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        lines.append(line.rstrip("\n"))
        if line.startswith(MARKER):
            return process, lines
    process.kill()
    raise RuntimeError(
        "serve-remote subprocess never reported its port:\n"
        + "\n".join(lines)
    )


def _spawn_fleet(ports, data_dir):
    """One durable serve-remote per shard on fixed ports; returns
    ``(processes, startup_lines_per_shard)``."""
    processes, startup = [], []
    try:
        for index, port in enumerate(ports):
            command = [
                "serve-remote", "--port", str(port), "--accept-any-platform",
                "--shard-of", f"{index}:{len(ports)}", *_license_args(),
                "--data-dir", data_dir, "--fsync", "always",
            ]
            process, lines = _spawn(command)
            processes.append(process)
            startup.append(lines)
    except Exception:
        _stop(processes)
        raise
    return processes, startup


def _stop(processes):
    for process in processes:
        process.terminate()
    for process in processes:
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()


def _fleet_url(ports, **params):
    authority = ",".join(f"127.0.0.1:{port}" for port in ports)
    query = "&".join(f"{key}={value}" for key, value in params.items())
    return f"sl+sharded://{authority}" + (f"?{query}" if query else "")


def _blob_for(license_id):
    from repro.core.licensefile import VENDOR_SECRET, mint_license_blob

    return mint_license_blob(license_id, VENDOR_SECRET)


def _parse_recovery_markers(startup_lines):
    """``SL-Recovery <name>: records=N forfeited=U dropped=D bytes=B
    seconds=S`` lines -> one dict per shard."""
    reports = []
    pattern = re.compile(
        r"SL-Recovery (?P<name>\S+): records=(?P<records>\d+) "
        r"forfeited=(?P<forfeited>\d+) dropped=(?P<dropped>\d+) "
        r"bytes=(?P<bytes>\d+) seconds=(?P<seconds>[0-9.]+)"
    )
    for lines in startup_lines:
        for line in lines:
            match = pattern.match(line)
            if match:
                reports.append({
                    "name": match.group("name"),
                    "records": int(match.group("records")),
                    "forfeited": int(match.group("forfeited")),
                    "dropped": int(match.group("dropped")),
                    "bytes": int(match.group("bytes")),
                    "seconds": float(match.group("seconds")),
                })
    return reports


# ----------------------------------------------------------------------
# Client crowd
# ----------------------------------------------------------------------
class _ClientLog:
    def __init__(self):
        self.granted = {}        # license_id -> units acknowledged OK
        self.returned = {}       # license_id -> units returned with OK
        self.successes = 0
        self.failure = None      # (monotonic_ts, exception)
        #: The one return call that may have been in flight when the
        #: fleet died: the server may have journalled it without the
        #: client ever seeing the ack, so its units are *uncertain* —
        #: they are excluded from the client's provable holdings.
        self.pending_return = None  # (license_id, units)


def _run_crowd(url, stop_event, started, logs):
    """Renew-and-hold crowd: each client keeps half its first grant.

    Holding (rather than returning everything immediately) is what
    makes the no-resurrection audit meaningful: at the kill, clients
    provably hold units the recovered fleet must account as forfeited.
    Only the first grant is held — holding a slice of every grant
    would drain the pool geometrically and starve later phases.
    """
    blobs = {f"lic-{i}": _blob_for(f"lic-{i}") for i in range(LICENSES)}

    def client(index, log):
        license_id = f"lic-{index % LICENSES}"
        machine = SgxMachine(f"chaos-{index}")
        endpoint = connect(url)
        try:
            report = machine.local_authority.generate_report(1, 1, nonce=1)
            response = endpoint.call(
                "init",
                InitRequest(slid=None, report=report,
                            platform_secret=machine.platform_secret),
                clock=machine.clock, stats=machine.stats,
            )
            slid = response.slid
            holding = False
            started.wait()
            while not stop_event.is_set():
                renewal = endpoint.call(
                    "renew",
                    RenewRequest(slid=slid, license_id=license_id,
                                 license_blob=blobs[license_id],
                                 network_reliability=1.0, health=1.0),
                    clock=machine.clock,
                )
                if renewal.status is Status.OK:
                    log.successes += 1
                    log.granted[license_id] = (
                        log.granted.get(license_id, 0) + renewal.granted_units
                    )
                    if holding:
                        give_back = renewal.granted_units
                    else:
                        give_back = renewal.granted_units // 2
                        holding = True
                    if give_back:
                        log.pending_return = (license_id, give_back)
                        returned = endpoint.call(
                            "return_units",
                            (slid, license_id, give_back),
                            clock=machine.clock,
                        )
                        log.pending_return = None
                        if returned is Status.OK:
                            log.returned[license_id] = (
                                log.returned.get(license_id, 0) + give_back
                            )
                elif renewal.status is not Status.EXHAUSTED:
                    raise AssertionError(f"renew answered {renewal.status}")
                time.sleep(0.01)
        except Exception as exc:  # noqa: BLE001 - audited by the harness
            log.failure = (time.monotonic(), exc)
        finally:
            endpoint.close()

    threads = [threading.Thread(target=client, args=(i, logs[i]))
               for i in range(CLIENTS)]
    for thread in threads:
        thread.start()
    return threads


def _sum_logs(logs, field):
    totals = {}
    for log in logs:
        for license_id, units in getattr(log, field).items():
            totals[license_id] = totals.get(license_id, 0) + units
    return totals


# ----------------------------------------------------------------------
# The chaos benchmark
# ----------------------------------------------------------------------
def test_fleet_sigkill_recovers_from_disk(table_printer):
    data_dir = tempfile.mkdtemp(prefix="sl-recovery-bench-")
    ports = _free_ports(SHARDS)
    url = _fleet_url(ports, timeout=10)
    processes = []
    stop_event, started = threading.Event(), threading.Event()
    stop_event2, started2 = threading.Event(), threading.Event()
    try:
        # -- phase 1: load, then kill every shard at once ---------------
        processes, _startup = _spawn_fleet(ports, data_dir)
        logs = [_ClientLog() for _ in range(CLIENTS)]
        threads = _run_crowd(url, stop_event, started, logs)
        started.set()
        time.sleep(LOAD_SECONDS)
        for process in processes:
            process.kill()  # SIGKILL the whole fleet: disk is all that's left
        kill_ts = time.monotonic()
        stop_event.set()
        for thread in threads:
            thread.join(timeout=120)
        for process in processes:
            process.wait(timeout=10)

        # Mid-load client failures are expected — but only *after* the
        # kill.  Anything earlier is a server bug, not chaos.
        early = [(ts, exc) for log in logs if log.failure is not None
                 for ts, exc in [log.failure] if ts < kill_ts]
        assert not early, f"clients failed before the kill: {early[:3]}"
        assert sum(log.successes for log in logs) > 0, \
            "the crowd never got a single grant before the kill"

        granted = _sum_logs(logs, "granted")
        returned = _sum_logs(logs, "returned")

        # -- phase 2: restart from the same directories -----------------
        restart_start = time.monotonic()
        processes, startup = _spawn_fleet(ports, data_dir)
        recovery_wall_seconds = time.monotonic() - restart_start
        reports = _parse_recovery_markers(startup)
        assert len(reports) == SHARDS, \
            f"expected {SHARDS} SL-Recovery markers, got {reports}"
        # The --license specs must defer to the recovered ledgers: a
        # restart must never mint a fresh pool over a charged one.
        reissued = [line for lines in startup for line in lines
                    if line.startswith("issued license")]
        assert not reissued, f"restart re-minted licenses: {reissued}"

        # -- audit: conservation, pessimistic forfeiture, no resurrection
        endpoint = connect(url)
        try:
            probe = endpoint.call("ledger_probe", None, clock=Clock())
        finally:
            endpoint.close()
        assert len(probe) == LICENSES
        for license_id, entry in probe.items():
            assert entry["outstanding"] + entry["lost"] + entry["available"] \
                == entry["total"], f"{license_id} leaked units"
            # Total forfeiture: nothing outstanding survives a crash.
            assert entry["outstanding"] == 0, \
                f"{license_id} resurrected outstanding sub-GCLs"
            # No committed unit resurrected: whatever clients *provably*
            # held at the kill is covered by the pessimistic write-off.
            # A return call that was in flight when the fleet died may
            # have been journalled without its ack ever reaching the
            # client, so those units are uncertain and excluded.
            held = granted.get(license_id, 0) - returned.get(license_id, 0)
            uncertain = sum(
                units for log in logs
                if log.pending_return is not None
                for lic, units in [log.pending_return] if lic == license_id
            )
            assert held - uncertain <= entry["lost"], \
                (f"{license_id}: clients provably hold "
                 f"{held - uncertain} acknowledged units "
                 f"({held} held, {uncertain} in-flight at the kill) "
                 f"but only {entry['lost']} were forfeited")

        # -- phase 3: a fresh crowd must serve cleanly, zero failures ----
        logs2 = [_ClientLog() for _ in range(CLIENTS)]
        threads2 = _run_crowd(url, stop_event2, started2, logs2)
        started2.set()
        time.sleep(LOAD_SECONDS / 2)
        stop_event2.set()
        for thread in threads2:
            thread.join(timeout=120)
        failures2 = [log.failure for log in logs2 if log.failure is not None]
        assert not failures2, \
            f"client failures after recovery: {failures2[:3]}"
        assert sum(log.successes for log in logs2) > 0, \
            "the recovered fleet never served a grant"
    finally:
        stop_event.set()
        stop_event2.set()
        _stop(processes)
        shutil.rmtree(data_dir, ignore_errors=True)

    total_records = sum(r["records"] for r in reports)
    total_bytes = sum(r["bytes"] for r in reports)
    total_forfeited = sum(r["forfeited"] for r in reports)
    replay_seconds = sum(r["seconds"] for r in reports)
    throughput_mb = (total_bytes / replay_seconds / 1e6
                     if replay_seconds > 0 else 0.0)
    throughput_records = (total_records / replay_seconds
                          if replay_seconds > 0 else 0.0)

    table_printer(
        f"Whole-fleet SIGKILL + disk recovery: {CLIENTS} clients, "
        f"{SHARDS} shards, fsync=always" + (" [smoke]" if SMOKE else ""),
        ["Metric", "Value"],
        [
            ["grants served before the kill",
             sum(log.successes for log in logs)],
            ["WAL records replayed", total_records],
            ["WAL bytes replayed", total_bytes],
            ["units forfeited on recovery", total_forfeited],
            ["recovery wall-clock (fleet restart)",
             f"{recovery_wall_seconds:.3f} s"],
            ["WAL replay time (sum of shards)", f"{replay_seconds:.4f} s"],
            ["replay throughput", f"{throughput_records:.0f} records/s, "
                                  f"{throughput_mb:.2f} MB/s"],
            ["grants served after recovery",
             sum(log.successes for log in logs2)],
            ["post-recovery client failures", len(failures2)],
        ],
    )

    if not SMOKE:
        payload = {
            "benchmark": "fleet_recovery",
            "smoke": SMOKE,
            "clients": CLIENTS,
            "shards": SHARDS,
            "licenses": LICENSES,
            "fsync": "always",
            "grants_before_kill": sum(log.successes for log in logs),
            "wal_records_replayed": total_records,
            "wal_bytes_replayed": total_bytes,
            "units_forfeited": total_forfeited,
            "recovery_wall_clock_seconds": round(recovery_wall_seconds, 4),
            "wal_replay_seconds": round(replay_seconds, 4),
            "replay_records_per_second": round(throughput_records, 1),
            "replay_mb_per_second": round(throughput_mb, 3),
            "grants_after_recovery": sum(log.successes for log in logs2),
            "post_recovery_failures": len(failures2),
            "per_shard": reports,
        }
        with open(BENCH_JSON, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
