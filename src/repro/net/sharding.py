"""Sharded SL-Remote: consistent-hash partitioning and a shard router.

One vendor server dies at one core.  This module partitions the license
ledgers across N :class:`~repro.core.sl_remote.SlRemote` shards and
routes the lease protocol so the fleet behaves like a single server:

* :class:`HashRing` — a deterministic, sha256-based consistent-hash
  ring mapping ``license_id`` -> shard name.  No Python ``hash()``
  anywhere: the mapping must agree across processes and runs
  (``PYTHONHASHSEED`` randomises ``hash()``).  ``add_shard`` /
  ``remove_shard`` derive the ring for a changed fleet, and
  ``owners(key, n)`` walks the successor list — the ring position a key
  falls to when its owner leaves, which is exactly where replication
  places its follower.
* :class:`ShardRouter` — the routing brain, working over any set of
  per-shard dispatch callables (in-process handler tables or TCP
  transports alike).  With ``failover`` armed it also *heals*: a dead
  shard (:class:`~repro.net.errors.DialError`) triggers a ``promote``
  broadcast to the survivors, ring removal, and a retry on the
  license's new owner; a :class:`~repro.core.protocol.MigratingNotice`
  answer triggers a bounded retry-after loop that follows the notice's
  ``new_owner`` redirect.
* :class:`ShardedRemote` — N in-process shards behind the standard
  ``protocol_handlers()`` surface; a drop-in for ``SlRemote`` anywhere
  a remote is wired (``Cluster``, ``SecureLeaseDeployment``,
  ``LeaseServer``).  ``replicas=1`` wires a
  :class:`~repro.net.replication.ReplicationManager` per shard over
  in-process peer links.
* :class:`ShardRouterTransport` / :func:`connect_sharded_tcp` — the
  client-side router over N ``serve-remote`` processes (one per shard,
  started with ``--shard-of``).

Routing rules (the SLID-vs-license partitioning decision)
---------------------------------------------------------
License-scoped traffic (``renew``, ``return_units``, ``ledger_probe``
with a license) goes to the ring owner of the ``license_id`` — that
shard holds the one authoritative ledger, so per-license unit
conservation needs no cross-shard coordination.

SLID-scoped traffic cannot hash the same way (an ``init`` has no
license, and one client holds licenses on many shards), so identity is
**pinned to a home shard** — the first shard name on the ring, which
allocates SLIDs, verifies remote attestation once (not N times), and
escrows root keys — and then **mirrored**: after a successful init the
router broadcasts ``admit(slid)`` to every other shard so renewals
there recognise the client, and when the home shard's response reveals
a crash re-init (a re-init answered without an old-backup key) it
broadcasts ``crash(slid)`` so every shard writes off the holdings *it*
tracks.  ``shutdown`` stays home-only: escrow lives there, and a
graceful restart must leave outstanding units untouched on the license
shards.  The net effect: write-offs and grants always mutate a ledger
under its owning shard's license lock, so conservation holds per shard
and therefore fleet-wide.

Membership changes (``ShardRouter.add_shard`` / ``remove_shard``)
migrate each affected license online: freeze on the old owner (clients
get a retry-after :class:`~repro.core.protocol.MigratingNotice`),
export -> install on the new owner, then release with a tombstone that
redirects stale routers — including routers that never heard about the
new shard, which dial it straight from the tombstone's ``name=host:port``.
"""

from __future__ import annotations

import bisect
import hashlib
import os
import threading
import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.core.licensefile import VENDOR_SECRET
from repro.core.protocol import (
    BatchRequest,
    BatchResponse,
    InitResponse,
    MigratingNotice,
    Status,
)
from repro.core.renewal import RenewalPolicy
from repro.core.sl_remote import LicenseDefinition, SlRemote
from repro.net.endpoint import EndpointConfig
from repro.net.errors import DialError, Migrating, TransportError
from repro.net.replication import (
    DEFAULT_LAG_BUDGET_GRANTS,
    DEFAULT_LAG_BUDGET_UNITS,
    LocalPeerLink,
    PeerLink,
    ReplicationManager,
)
from repro.storage.wal import RecoveryReport, ShardPersistence
from repro.net.transport import HandlerTable, Transport
from repro.sgx.driver import SgxStats
from repro.sim.clock import Clock, ThreadSafeClock

#: A per-shard dispatch callable: (method, payload, clock, stats) -> response.
DispatchFn = Callable[..., Any]

#: Methods routed by the license id carried in their payload.
_LICENSE_SCOPED = ("renew", "return_units")


def _sha256_point(data: bytes) -> int:
    """A 64-bit ring position from sha256 (deterministic across runs)."""
    return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")


class HashRing:
    """Consistent hashing of string keys onto named shards.

    Each shard contributes ``replicas`` virtual points so load spreads
    evenly; a key belongs to the first point clockwise from its own
    hash.  Adding or removing one shard only remaps the keys that
    belonged to it — the property that lets a fleet grow without
    re-homing every license.
    """

    def __init__(self, shard_names: Sequence[str], replicas: int = 64) -> None:
        if not shard_names:
            raise ValueError("a hash ring needs at least one shard")
        if len(set(shard_names)) != len(shard_names):
            raise ValueError("shard names must be unique")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.shard_names = tuple(shard_names)
        self.replicas = replicas
        points = []
        for name in self.shard_names:
            for replica in range(replicas):
                point = _sha256_point(f"{name}#{replica}".encode("utf-8"))
                points.append((point, name))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [name for _, name in points]

    def shard_for(self, key: str) -> str:
        """The shard owning ``key`` (deterministic, sha256-based)."""
        point = _sha256_point(key.encode("utf-8"))
        index = bisect.bisect_right(self._points, point) % len(self._points)
        return self._owners[index]

    def owners(self, key: str, count: int = 1) -> List[str]:
        """The first ``count`` *distinct* shards clockwise from ``key``.

        ``owners(key, 2)[1]`` is where ``key`` lands if its owner is
        removed — every virtual point of the owner yields to the next
        distinct shard on the walk — which is why replication uses it
        as the follower placement rule: failover routing and replica
        placement agree by construction.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        point = _sha256_point(key.encode("utf-8"))
        index = bisect.bisect_right(self._points, point)
        found: List[str] = []
        for offset in range(len(self._points)):
            name = self._owners[(index + offset) % len(self._points)]
            if name not in found:
                found.append(name)
                if len(found) == count:
                    break
        return found

    def add_shard(self, name: str) -> "HashRing":
        """A new ring with ``name`` joined (this ring is unchanged)."""
        if name in self.shard_names:
            raise ValueError(f"shard {name!r} is already on the ring")
        return HashRing((*self.shard_names, name), replicas=self.replicas)

    def remove_shard(self, name: str) -> "HashRing":
        """A new ring with ``name`` departed (this ring is unchanged)."""
        if name not in self.shard_names:
            raise ValueError(f"shard {name!r} is not on the ring")
        remaining = tuple(n for n in self.shard_names if n != name)
        if not remaining:
            raise ValueError("cannot remove the last shard")
        return HashRing(remaining, replicas=self.replicas)

    def __len__(self) -> int:
        return len(self.shard_names)


def default_shard_names(count: int) -> List[str]:
    """The canonical names for an N-shard fleet (``shard-0`` .. ``shard-N-1``).

    Both sides of the wire — ``serve-remote --shard-of I:N`` workers and
    :func:`connect_sharded_tcp` clients — derive the same names, so
    their rings agree without exchanging configuration.
    """
    if count < 1:
        raise ValueError("shard count must be >= 1")
    return [f"shard-{index}" for index in range(count)]


class ShardRouter:
    """Routes lease-protocol calls across per-shard dispatch callables.

    The router is transport-agnostic: a backend is any callable with the
    dispatch signature, so the same routing logic serves the in-process
    :class:`ShardedRemote` (backends are ``HandlerTable.dispatch``) and
    the wire-level :class:`ShardRouterTransport` (backends are
    ``Transport.request``).

    ``failover=True`` arms self-healing: a backend raising
    :class:`~repro.net.errors.DialError` is declared dead, ``promote``
    is broadcast to every survivor (each folds the replicas it holds
    for the dead shard into its serving state — idempotently, so any
    number of routers may race to report the same death), the dead
    shard leaves the ring, and the call retries on the new owner.

    ``connect_backend(name, host, port)`` (optional) lets the router
    dial shards it first hears about from a migration tombstone;
    ``addresses`` maps shard name -> ``"host:port"`` so the tombstones
    *this* router writes carry a dialable address; ``on_shard_down`` is
    told when a backend leaves (transports close their socket there).
    """

    def __init__(self, backends: Mapping[str, DispatchFn],
                 ring: Optional[HashRing] = None,
                 home: Optional[str] = None,
                 config: Optional[EndpointConfig] = None,
                 failover: bool = False,
                 connect_backend: Optional[Callable[..., DispatchFn]] = None,
                 addresses: Optional[Mapping[str, str]] = None,
                 on_shard_down: Optional[Callable[[str], None]] = None) -> None:
        if not backends:
            raise ValueError("a shard router needs at least one backend")
        self.backends: Dict[str, DispatchFn] = dict(backends)
        names = list(self.backends)
        self.ring = ring if ring is not None else HashRing(names)
        for name in self.ring.shard_names:
            if name not in self.backends:
                raise ValueError(f"ring names shard {name!r} with no backend")
        #: Identity authority: SLIDs, attestation, escrow (see module doc).
        self.home = home if home is not None else self.ring.shard_names[0]
        if self.home not in self.backends:
            raise ValueError(f"home shard {self.home!r} has no backend")
        self.failover = failover
        self.migrate_retries = (config.migrate_retries if config is not None
                                else EndpointConfig().migrate_retries)
        self.connect_backend = connect_backend
        self.addresses: Dict[str, str] = dict(addresses or {})
        self.on_shard_down = on_shard_down
        self._lock = threading.Lock()
        #: Serializes dialing (and identity-syncing) a tombstone-learned
        #: shard, so exactly one transport per name is ever published.
        self._learn_lock = threading.Lock()
        #: Tombstone redirects learned from MigratingNotice answers and
        #: local migrations: license_id -> shard name (overrides ring).
        self._moves: Dict[str, str] = {}
        self._admin_lock = threading.Lock()
        self._admin_clock = ThreadSafeClock()
        self.failovers = 0
        self.shards_failed: List[str] = []
        self.migrations = 0

    # -- placement -----------------------------------------------------
    def shard_for(self, license_id: str) -> str:
        return self.ring.shard_for(license_id)

    def _owner_of(self, license_id: str) -> str:
        with self._lock:
            moved = self._moves.get(license_id)
            if moved is not None and moved in self.backends:
                return moved
            return self.ring.shard_for(license_id)

    def _license_key(self, method: str, payload: Any) -> str:
        if method == "renew":
            return payload.license_id
        # return_units travels as the plain tuple (slid, license_id, units).
        return payload[1]

    # -- the routed round trip -----------------------------------------
    def request(self, method: str, payload: Any,
                clock: Optional[Clock] = None,
                stats: Optional[SgxStats] = None):
        if method in _LICENSE_SCOPED:
            return self._license_call(self._license_key(method, payload),
                                      method, payload, clock, stats)
        if method == "renew_batch":
            return self._batch_call(payload, clock, stats)
        if method == "init":
            return self._routed_init(payload, clock, stats)
        if method == "ledger_probe":
            # Payload is a license id, or the dict form carrying a
            # detail level ({"license_id": ..., "detail": ...}); a
            # missing/None license id fans out across the whole fleet.
            license_id = payload
            if isinstance(payload, dict):
                license_id = payload.get("license_id")
            if license_id is None:
                return self._fleet_probe(method, payload, clock, stats)
            return self._license_call(license_id, method, payload,
                                      clock, stats)
        # Everything SLID-scoped (shutdown, admit, crash) and anything
        # unrecognised is pinned to the home shard; unknown methods fail
        # there with the standard dispatch error.
        return self._home_call(method, payload, clock, stats)

    def _license_call(self, license_id: str, method: str, payload: Any,
                      clock: Optional[Clock], stats: Optional[SgxStats]):
        waits = 0
        while True:
            owner = self._owner_of(license_id)
            backend = self.backends.get(owner)
            if backend is None:
                continue  # owner changed under us; re-resolve
            try:
                response = backend(method, payload, clock=clock, stats=stats)
            except DialError:
                if not self._arm_failover():
                    raise
                self._failover(owner, clock, stats)
                continue
            if isinstance(response, MigratingNotice):
                if self._learn_move(license_id, response, clock, stats):
                    continue  # redirect known; retry immediately
                waits += 1
                if waits > self.migrate_retries:
                    raise Migrating(
                        f"license {license_id!r} is still migrating after "
                        f"{self.migrate_retries} retries",
                        license_id=license_id,
                        retry_after_seconds=response.retry_after_seconds,
                        new_owner=response.new_owner,
                    )
                time.sleep(response.retry_after_seconds)
                continue
            return response

    def _batch_call(self, batch: BatchRequest,
                    clock: Optional[Clock], stats: Optional[SgxStats]):
        """Split a renewal batch by ring owner and rejoin the replies.

        Each owner gets one sub-batch carrying its licenses' members (so
        a coalesced frame stays coalesced shard-by-shard), owners are
        visited in sorted order for deterministic lock acquisition
        downstream, and the positional replies are stitched back into
        submission order.  A :class:`~repro.core.protocol.MigratingNotice`
        slot re-drives just that member through the single-renewal path,
        which follows redirects and absorbs bounded retry-after waits —
        one migrating license never fails a whole batch.
        """
        requests = list(batch.requests)
        responses: List[Any] = [None] * len(requests)
        pending = list(range(len(requests)))
        while pending:
            by_owner: Dict[str, List[int]] = {}
            for index in pending:
                owner = self._owner_of(requests[index].license_id)
                by_owner.setdefault(owner, []).append(index)
            pending = []
            for owner in sorted(by_owner):
                indices = by_owner[owner]
                backend = self.backends.get(owner)
                if backend is None:
                    pending.extend(indices)  # owner changed; re-resolve
                    continue
                sub = BatchRequest(
                    requests=tuple(requests[i] for i in indices)
                )
                try:
                    reply = backend("renew_batch", sub, clock=clock,
                                    stats=stats)
                except DialError:
                    if not self._arm_failover():
                        raise
                    self._failover(owner, clock, stats)
                    pending.extend(indices)
                    continue
                if not isinstance(reply, BatchResponse) \
                        or len(reply.responses) != len(indices):
                    raise TransportError(
                        f"shard {owner!r} answered a batch of "
                        f"{len(indices)} renewals with "
                        f"{type(reply).__name__}"
                    )
                for index, slot in zip(indices, reply.responses):
                    if isinstance(slot, MigratingNotice):
                        self._learn_move(requests[index].license_id, slot,
                                         clock, stats)
                        responses[index] = self._license_call(
                            requests[index].license_id, "renew",
                            requests[index], clock, stats,
                        )
                    else:
                        responses[index] = slot
        return BatchResponse(responses=tuple(responses))

    def _home_call(self, method: str, payload: Any,
                   clock: Optional[Clock], stats: Optional[SgxStats]):
        while True:
            home = self.home
            backend = self.backends.get(home)
            if backend is None:
                continue  # failover re-homed concurrently
            try:
                return backend(method, payload, clock=clock, stats=stats)
            except DialError:
                if not self._arm_failover():
                    raise
                self._failover(home, clock, stats)

    def _fleet_probe(self, method: str, payload: Any,
                     clock: Optional[Clock], stats: Optional[SgxStats]):
        # Fleet-wide audit: fan out and merge (license ids are disjoint
        # across shards by construction).  A death mid-probe fails over
        # and restarts the merge so promoted ledgers are not missed.
        while True:
            merged: Dict[str, Any] = {}
            name = None
            try:
                for name in list(self.backends):
                    backend = self.backends.get(name)
                    if backend is None:
                        continue
                    merged.update(backend(method, payload, clock=clock,
                                          stats=stats))
                return merged
            except DialError:
                if not self._arm_failover():
                    raise
                self._failover(name, clock, stats)

    def _routed_init(self, payload: Any,
                     clock: Optional[Clock], stats: Optional[SgxStats]):
        """Home-shard init + identity mirror + crash broadcast."""
        response = self._home_call("init", payload, clock, stats)
        if not isinstance(response, InitResponse):
            return response
        if response.status is not Status.OK or response.slid is None:
            return response
        was_reinit = getattr(payload, "slid", None) is not None
        crashed = was_reinit and response.old_backup_key is None
        for name in list(self.backends):
            if name == self.home:
                continue
            backend = self.backends.get(name)
            if backend is None:
                continue
            try:
                backend("admit", response.slid, clock=clock, stats=stats)
                if crashed:
                    backend("crash", response.slid, clock=clock, stats=stats)
            except DialError:
                if not self._arm_failover():
                    raise
                self._failover(name, clock, stats)
        return response

    # -- failover ------------------------------------------------------
    def _arm_failover(self) -> bool:
        return self.failover and len(self.backends) > 1

    def _learn_move(self, license_id: str, notice: MigratingNotice,
                    clock: Optional[Clock] = None,
                    stats: Optional[SgxStats] = None) -> bool:
        """Follow a tombstone redirect; False when all we can do is wait."""
        target = notice.new_owner
        if not target:
            return False
        name, _, address = target.partition("=")
        with self._lock:
            known = name in self.backends
            home_backend = self.backends.get(self.home)
        if not known:
            if not (address and self.connect_backend):
                return False
            host, _, port_text = address.rpartition(":")
            try:
                port = int(port_text)
            except ValueError:
                return False
            with self._learn_lock:
                with self._lock:
                    known = name in self.backends
                if not known:
                    backend = self.connect_backend(name, host, port)
                    # A shard this router first hears about from a
                    # tombstone has never seen this router's admit
                    # broadcasts: every SLID this router initialised
                    # after the shard joined is unknown there.  Mirror
                    # the home shard's identity registry (the authority
                    # — every init lands at home) before publishing the
                    # backend, so no request races ahead of the sync.
                    # install_identity merges, so replays are harmless.
                    if home_backend is not None:
                        try:
                            identity = home_backend("export_identity", None,
                                                    clock=clock, stats=stats)
                            backend("install_identity", identity,
                                    clock=clock, stats=stats)
                        except Exception:  # noqa: BLE001 - a failed sync
                            pass  # resurfaces as UNKNOWN_CLIENT, as before
                    with self._lock:
                        self.backends[name] = backend
                        self.addresses[name] = address
        with self._lock:
            self._moves[license_id] = name
        return True

    def _failover(self, dead: Optional[str],
                  clock: Optional[Clock], stats: Optional[SgxStats]):
        """Declare ``dead`` dead: probe + promote survivors, shrink the ring.

        Survivors are probed first and ranked by ``(epoch, last_seq)``
        for the dead source — the max-epoch, max-seq survivor holds the
        freshest replica, so it promotes first (installing the adopted
        ledgers before anyone else answers for them), and the epoch
        broadcast with ``promote`` is one past the fleet maximum so
        every follower fences the deposed shard's late traffic.
        """
        if dead is None:
            return
        with self._lock:
            if dead not in self.backends:
                return  # another caller already buried it
            survivors = [(name, backend)
                         for name, backend in self.backends.items()
                         if name != dead]
        ranked: List[Any] = []
        max_epoch = 0
        for name, backend in survivors:
            epoch, seq = 0, -1
            try:
                probe = backend("replication_probe", None,
                                clock=clock, stats=stats)
                epoch = int(probe.get("epoch", 0))
                seq = int(probe.get("follows", {})
                          .get(dead, {}).get("last_seq", -1))
            except Exception:  # noqa: BLE001 - unprobeable survivor
                pass  # ranks last; promote is still attempted below
            max_epoch = max(max_epoch, epoch)
            ranked.append((epoch, seq, name, backend))
        ranked.sort(key=lambda item: (item[0], item[1], item[2]),
                    reverse=True)
        new_epoch = max_epoch + 1
        # Promotion first, removal second: a racing request that still
        # routes to the dead shard just dials, fails, and lands here too
        # (handle_promote is idempotent on the serving side).
        for _epoch, _seq, name, backend in ranked:
            try:
                backend("promote", {"source": dead, "epoch": new_epoch},
                        clock=clock, stats=stats)
            except Exception:  # noqa: BLE001 - a non-replicated or slow
                continue  # survivor cannot block the ring repair
        with self._lock:
            if dead not in self.backends:
                return
            del self.backends[dead]
            if dead in self.ring.shard_names and len(self.ring) > 1:
                self.ring = self.ring.remove_shard(dead)
            self.addresses.pop(dead, None)
            for license_id, target in list(self._moves.items()):
                if target == dead:
                    del self._moves[license_id]
            if self.home == dead:
                self.home = self.ring.shard_names[0]
            self.failovers += 1
            self.shards_failed.append(dead)
        if self.on_shard_down is not None:
            self.on_shard_down(dead)

    # -- membership (online migration) ---------------------------------
    def add_shard(self, name: str, backend: DispatchFn,
                  address: Optional[str] = None,
                  clock: Optional[Clock] = None,
                  stats: Optional[SgxStats] = None) -> List[str]:
        """Join ``name`` and migrate its keyspace to it, online.

        Every license the new ring assigns to ``name`` is frozen on its
        current shard (clients absorb bounded retry-after notices),
        exported, installed on ``name``, and released behind a redirect
        tombstone.  Returns the migrated license ids.
        """
        clock = clock if clock is not None else self._admin_clock
        with self._admin_lock:
            with self._lock:
                old_ring = self.ring
                new_ring = old_ring.add_shard(name)
                self.backends[name] = backend
                if address:
                    self.addresses[name] = address
            # The new shard must recognise every admitted client before
            # it serves renewals for migrated licenses.
            identity = self.backends[self.home](
                "export_identity", None, clock=clock, stats=stats
            )
            backend("install_identity", identity, clock=clock, stats=stats)
            moved: List[str] = []
            for owner in old_ring.shard_names:
                source = self.backends.get(owner)
                if source is None:
                    continue
                probe = source("ledger_probe", None, clock=clock, stats=stats)
                for license_id in sorted(probe):
                    if new_ring.shard_for(license_id) != name:
                        continue
                    self._migrate(license_id, owner, name, clock, stats)
                    moved.append(license_id)
            with self._lock:
                self.ring = new_ring
            return moved

    def remove_shard(self, name: str,
                     clock: Optional[Clock] = None,
                     stats: Optional[SgxStats] = None) -> List[str]:
        """Drain ``name`` and retire it from the ring, online."""
        clock = clock if clock is not None else self._admin_clock
        with self._admin_lock:
            with self._lock:
                if name not in self.ring.shard_names:
                    raise ValueError(f"shard {name!r} is not on the ring")
                if len(self.ring) == 1:
                    raise ValueError("cannot remove the last shard")
                new_ring = self.ring.remove_shard(name)
            departing = self.backends[name]
            probe = departing("ledger_probe", None, clock=clock, stats=stats)
            moved: List[str] = []
            for license_id in sorted(probe):
                target = new_ring.shard_for(license_id)
                if target == name:
                    continue
                self._migrate(license_id, name, target, clock, stats)
                moved.append(license_id)
            if self.home == name:
                # Identity authority moves with the home role.
                identity = departing("export_identity", None, clock=clock,
                                     stats=stats)
                self.backends[new_ring.shard_names[0]](
                    "install_identity", identity, clock=clock, stats=stats
                )
            with self._lock:
                self.ring = new_ring
                if self.home == name:
                    self.home = new_ring.shard_names[0]
                self.backends.pop(name, None)
                self.addresses.pop(name, None)
                for license_id, target in list(self._moves.items()):
                    if target == name:
                        del self._moves[license_id]
            if self.on_shard_down is not None:
                self.on_shard_down(name)
            return moved

    def _migrate(self, license_id: str, source: str, target: str,
                 clock: Optional[Clock], stats: Optional[SgxStats]) -> None:
        """freeze -> export -> install -> release, one license."""
        src = self.backends[source]
        dst = self.backends[target]
        src("freeze", license_id, clock=clock, stats=stats)
        record = dict(src("export_license", license_id, clock=clock,
                          stats=stats))
        record["frozen"] = False
        dst("install_license", record, clock=clock, stats=stats)
        tombstone = target
        address = self.addresses.get(target)
        if address:
            tombstone = f"{target}={address}"
        src("release", (license_id, tombstone), clock=clock, stats=stats)
        with self._lock:
            self._moves[license_id] = target
        self.migrations += 1


class _DownPeer(PeerLink):
    """A peer link to a shard that was killed (always refuses)."""

    def __init__(self, name: str) -> None:
        self.name = name

    def call(self, method: str, payload: Any) -> Any:
        raise ConnectionError(f"peer shard {self.name!r} is down")


class ShardedRemote:
    """N in-process SL-Remote shards behind one protocol surface.

    Duck-types the ``SlRemote`` surface every wiring point uses —
    ``protocol_handlers()``, provisioning, ledger probes — so a
    :class:`~repro.net.server.LeaseServer`, a
    :class:`~repro.cluster.Cluster`, or a deployment can swap it in
    with a ``shards=N`` knob.  Per-license locking inside each shard
    plus the partitioning here means concurrent renewals contend only
    when they target the *same* license.

    ``replicas=K`` additionally wires a
    :class:`~repro.net.replication.ReplicationManager` per shard over
    in-process peer links (each license streams to its K distinct ring
    successors) and arms the router's failover, giving the in-process
    fleet the same kill-K-shards story as the TCP one — which is what
    the replication test suite exercises deterministically via
    ``replicate_now()`` / ``snapshot_now()`` / ``kill_shard()``.
    ``quorum=N`` gates ``init``/``shutdown`` acks on N follower acks
    of the identity watermark (0/None = off for in-process fleets;
    the CLI defaults TCP fleets to a majority of K).

    ``data_dir=...`` makes every shard durable: each gets its own
    :class:`~repro.storage.wal.ShardPersistence` under
    ``data_dir/<shard-name>/``, recovered *before* replication wires up
    so sources stream the recovered state.  Recovery reports land in
    ``self.recovery_reports``; ``close()`` flushes and detaches.
    """

    def __init__(
        self,
        ras,
        shards: int = 4,
        policy: Optional[RenewalPolicy] = None,
        server_secret: bytes = VENDOR_SECRET,
        shard_names: Optional[Sequence[str]] = None,
        ring_replicas: int = 64,
        ledger_commit_seconds: float = 0.0,
        replicas: int = 0,
        lag_budget_units: int = DEFAULT_LAG_BUDGET_UNITS,
        lag_budget_grants: int = DEFAULT_LAG_BUDGET_GRANTS,
        flush_interval: float = 0.02,
        snapshot_interval: float = 0.5,
        data_dir: Optional[str] = None,
        fsync: str = "interval",
        compact_every: int = 4096,
        quorum: Optional[int] = None,
        admission: bool = True,
        autotune_lag: bool = False,
    ) -> None:
        if replicas < 0:
            raise ValueError("replicas must be >= 0")
        if quorum is not None and quorum < 0:
            raise ValueError("quorum must be >= 0")
        names = (list(shard_names) if shard_names is not None
                 else default_shard_names(shards))
        self.shards: Dict[str, SlRemote] = {
            name: SlRemote(ras, policy=policy, server_secret=server_secret,
                           ledger_commit_seconds=ledger_commit_seconds,
                           admission=admission, autotune_lag=autotune_lag)
            for name in names
        }
        # Durability wires up BEFORE replication: recovery replays the
        # on-disk ledger into each shard first, so replication sources
        # start from (and journal observers see) the recovered state.
        self.persistences: Dict[str, ShardPersistence] = {}
        self.recovery_reports: List[RecoveryReport] = []
        if data_dir is not None:
            for name, remote in self.shards.items():
                persistence = ShardPersistence(
                    os.path.join(data_dir, name), name=name,
                    server_secret=server_secret, fsync=fsync,
                    compact_every=compact_every,
                )
                self.recovery_reports.append(persistence.recover(remote))
                persistence.attach(remote)
                self.persistences[name] = persistence
        ring = HashRing(names, replicas=ring_replicas)
        self.replicas = replicas
        self.replication_depth = 0
        self.quorum = 0
        self.managers: Dict[str, ReplicationManager] = {}
        handler_maps = {
            name: dict(remote.protocol_handlers())
            for name, remote in self.shards.items()
        }
        if replicas > 0 and len(names) > 1:
            # Depth-K replication: each license streams to its K
            # distinct ring successors, so failover routing and replica
            # location agree without any lookup table no matter how
            # many primaries die.
            depth = min(replicas, len(names) - 1)
            self.replication_depth = depth
            self.quorum = quorum if quorum is not None else 0
            links = {name: LocalPeerLink(None) for name in names}

            def followers_for(license_id: str) -> List[str]:
                return ring.owners(license_id, depth + 1)[1:]

            def owners_for(license_id: str) -> List[str]:
                return ring.owners(license_id, len(ring))

            for name, remote in self.shards.items():
                self.managers[name] = ReplicationManager(
                    remote, name,
                    peers={peer: links[peer] for peer in names
                           if peer != name},
                    followers_for=followers_for,
                    owners_for=owners_for,
                    quorum=self.quorum,
                    lag_budget_units=lag_budget_units,
                    lag_budget_grants=lag_budget_grants,
                    flush_interval=flush_interval,
                    snapshot_interval=snapshot_interval,
                    persistence=self.persistences.get(name),
                )
            for name, link in links.items():
                link.manager = self.managers[name]
            for name, manager in self.managers.items():
                handler_maps[name].update(manager.extra_handlers())
        self._tables = {
            name: HandlerTable(handlers)
            for name, handlers in handler_maps.items()
        }
        self.router = ShardRouter(
            {name: table.dispatch for name, table in self._tables.items()},
            ring=ring,
            failover=replicas > 0,
        )
        self.policy = next(iter(self.shards.values())).policy

    # ------------------------------------------------------------------
    # Wire protocol surface (drop-in for SlRemote)
    # ------------------------------------------------------------------
    def protocol_handlers(self) -> Dict[str, Callable]:
        def routed(method: str) -> Callable:
            def handler(request, clock: Optional[Clock] = None,
                        stats: Optional[SgxStats] = None):
                return self.router.request(method, request, clock=clock,
                                           stats=stats)
            handler.__name__ = f"route_{method}"
            return handler

        return {method: routed(method)
                for method in ("init", "renew", "renew_batch", "shutdown",
                               "return_units", "admit", "crash",
                               "ledger_probe")}

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    @property
    def ring(self) -> HashRing:
        return self.router.ring

    def shard_for(self, license_id: str) -> str:
        return self.router._owner_of(license_id)

    def shard_of(self, license_id: str) -> SlRemote:
        return self.shards[self.shard_for(license_id)]

    @property
    def home_shard(self) -> SlRemote:
        return self.shards[self.router.home]

    # ------------------------------------------------------------------
    # Replication lifecycle (no-ops when replicas=0)
    # ------------------------------------------------------------------
    def start_replication(self) -> None:
        for manager in self.managers.values():
            manager.start()

    def stop_replication(self) -> None:
        for manager in self.managers.values():
            manager.stop()

    def close_persistence(self) -> None:
        """Detach and close every shard's write-ahead log."""
        for persistence in self.persistences.values():
            persistence.close()
        self.persistences.clear()

    def close(self) -> None:
        """Tear down in dependency order, idempotently: replication
        shipper threads first (they call into peers and journal via the
        WAL), persistence second, so callers can close sockets after
        this returns knowing no background thread will touch them."""
        if getattr(self, "_closed", False):
            return
        self._closed = True
        self.stop_replication()
        self.close_persistence()

    def replicate_now(self) -> None:
        """Flush every shard's pending deltas (deterministic tests)."""
        for manager in self.managers.values():
            if manager.source is not None:
                manager.source.flush_now()

    def snapshot_now(self) -> None:
        """Run one anti-entropy snapshot pass on every shard."""
        for manager in self.managers.values():
            if manager.source is not None:
                manager.source.snapshot_now()

    def kill_shard(self, name: str) -> None:
        """Simulate a shard death: its backend dials out, its peers see
        connection refusals, its replication stops mid-stream."""
        if name not in self.shards:
            raise ValueError(f"unknown shard {name!r}")
        manager = self.managers.get(name)
        if manager is not None:
            manager.stop()
        persistence = self.persistences.pop(name, None)
        if persistence is not None:
            persistence.close()

        def down(method, payload, clock=None, stats=None):
            raise DialError(f"shard {name!r} is down", host=name, attempts=1)

        self.router.backends[name] = down
        for other, peer_manager in self.managers.items():
            if other == name or peer_manager.source is None:
                continue
            if name in peer_manager.source.peers:
                peer_manager.source.peers[name] = _DownPeer(name)

    # ------------------------------------------------------------------
    # Developer-facing provisioning (routed to the owning shard)
    # ------------------------------------------------------------------
    def issue_license(self, license_id: str, total_units: int,
                      **kwargs) -> LicenseDefinition:
        return self.shard_of(license_id).issue_license(
            license_id, total_units, **kwargs
        )

    def revoke_license(self, license_id: str) -> None:
        self.shard_of(license_id).revoke_license(license_id)

    def ledger(self, license_id: str):
        return self.shard_of(license_id).ledger(license_id)

    def license_definition(self, license_id: str) -> LicenseDefinition:
        return self.shard_of(license_id).license_definition(license_id)

    def report_crash(self, slid: int) -> None:
        """Out-of-band crash: every shard writes off what it tracks."""
        for remote in self.shards.values():
            remote.report_crash(slid)

    def ledger_probe(self, license_id: Optional[str] = None):
        return self.router.request("ledger_probe", license_id)

    # ------------------------------------------------------------------
    # Aggregated counters
    # ------------------------------------------------------------------
    @property
    def renewals_served(self) -> int:
        return sum(remote.renewals_served for remote in self.shards.values())

    @property
    def inits_served(self) -> int:
        return sum(remote.inits_served for remote in self.shards.values())

    @property
    def exhausted_served(self) -> int:
        """EXHAUSTED renewals answered fleet-wide (backpressure signal
        for the adaptive-renewal control loop)."""
        return sum(remote.exhausted_served
                   for remote in self.shards.values())

    @property
    def degraded_served(self) -> int:
        """Grants the admission ladder degraded, fleet-wide."""
        return sum(remote.degraded_served
                   for remote in self.shards.values())

    def renewal_health(self) -> Dict[str, Any]:
        """Per-shard renewal health (same shape as replication health:
        one :meth:`SlRemote.renewal_health` report per shard)."""
        return {name: remote.renewal_health()
                for name, remote in self.shards.items()}

    def replication_health(self) -> Dict[str, Any]:
        """Per-shard replication health (ack lag, epoch, quorum) for
        ``_server_stats``."""
        return {name: manager.health()
                for name, manager in self.managers.items()}


class ShardRouterTransport(Transport):
    """Client-side router over one transport per shard.

    The thin layer that lets one SL-Local fleet span N ``serve-remote``
    processes: requests route exactly like :class:`ShardRouter` (it *is*
    a ShardRouter over ``Transport.request`` backends), and every
    underlying transport keeps its own connection, retry budget, and
    virtual-RTT accounting — a mirror broadcast to N-1 shards charges
    N-1 honest round trips to the caller's clock.

    ``dial(host, port) -> Transport`` (supplied by
    :func:`repro.net.connect`) lets the router open sockets it learns
    about at runtime — migration tombstones naming a shard this client
    never configured, and the ``add_shard`` admin verb.
    """

    name = "shard-router"

    def __init__(self, transports: Mapping[str, Transport],
                 ring: Optional[HashRing] = None,
                 home: Optional[str] = None,
                 config: Optional[EndpointConfig] = None,
                 dial: Optional[Callable[[str, int], Transport]] = None,
                 failover: bool = False) -> None:
        self.transports: Dict[str, Transport] = dict(transports)
        self.dial = dial
        addresses = {
            name: f"{transport.host}:{transport.port}"
            for name, transport in self.transports.items()
            if hasattr(transport, "host")
        }
        self.router = ShardRouter(
            {name: transport.request
             for name, transport in self.transports.items()},
            ring=ring, home=home, config=config, failover=failover,
            connect_backend=self._connect_backend if dial is not None
            else None,
            addresses=addresses,
            on_shard_down=self._drop_transport,
        )

    def _connect_backend(self, name: str, host: str, port: int) -> DispatchFn:
        transport = self.dial(host, port)
        self.transports[name] = transport
        return transport.request

    def _drop_transport(self, name: str) -> None:
        transport = self.transports.pop(name, None)
        if transport is not None:
            transport.close()

    # -- membership admin ----------------------------------------------
    def add_shard(self, name: str, host: str, port: int) -> List[str]:
        """Dial a new shard and migrate its keyspace to it, online."""
        if self.dial is None:
            raise ValueError(
                "this router has no dial function; connect with "
                "repro.net.connect() to manage membership"
            )
        transport = self.dial(host, port)
        self.transports[name] = transport
        return self.router.add_shard(name, transport.request,
                                     address=f"{host}:{port}")

    def remove_shard(self, name: str) -> List[str]:
        """Drain a shard and retire it (its transport is closed)."""
        return self.router.remove_shard(name)

    def request(self, method: str, payload: Any,
                clock: Optional[Clock] = None,
                stats: Optional[SgxStats] = None):
        return self.router.request(method, payload, clock=clock, stats=stats)

    def close(self) -> None:
        for transport in self.transports.values():
            transport.close()


def connect_sharded_tcp(addresses, conditions=None, timeout_seconds: float = 5.0,
                        max_attempts: int = 5, backoff_seconds: float = 0.05,
                        shard_names: Optional[Sequence[str]] = None,
                        ring_replicas: int = 64,
                        io: str = "threads"):
    """Deprecated: use ``repro.net.connect("sl+sharded://h1:p1,h2:p2")``.

    Kept as a thin wrapper over :func:`repro.net.endpoint.connect` with
    byte-identical protocol outcomes.  ``addresses`` is a sequence of
    ``(host, port)`` pairs, one per shard **in ring order** — the i-th
    address must be the worker started with ``--shard-of i:N`` (or with
    the i-th name of ``shard_names``), otherwise the client's ring
    disagrees with the fleet's license placement.
    """
    from repro.net.endpoint import connect, deprecated_connect_warning

    deprecated_connect_warning("connect_sharded_tcp",
                               "sl+sharded://host:port,host:port")
    addresses = list(addresses)
    authority = ",".join(f"{host}:{port}" for host, port in addresses)
    url = f"sl+sharded://{authority}"
    if shard_names is not None:
        url += "?names=" + ",".join(shard_names)
    return connect(url, conditions=conditions,
                   timeout_seconds=timeout_seconds,
                   max_attempts=max_attempts,
                   backoff_seconds=backoff_seconds,
                   ring_replicas=ring_replicas, io=io)
