"""Sharded SL-Remote: consistent-hash partitioning and a shard router.

One vendor server dies at one core.  This module partitions the license
ledgers across N :class:`~repro.core.sl_remote.SlRemote` shards and
routes the lease protocol so the fleet behaves like a single server:

* :class:`HashRing` — a deterministic, sha256-based consistent-hash
  ring mapping ``license_id`` -> shard name.  No Python ``hash()``
  anywhere: the mapping must agree across processes and runs
  (``PYTHONHASHSEED`` randomises ``hash()``).
* :class:`ShardRouter` — the routing brain, working over any set of
  per-shard dispatch callables (in-process handler tables or TCP
  transports alike).
* :class:`ShardedRemote` — N in-process shards behind the standard
  ``protocol_handlers()`` surface; a drop-in for ``SlRemote`` anywhere
  a remote is wired (``Cluster``, ``SecureLeaseDeployment``,
  ``LeaseServer``).
* :class:`ShardRouterTransport` / :func:`connect_sharded_tcp` — the
  client-side router over N ``serve-remote`` processes (one per shard,
  started with ``--shard-of``).

Routing rules (the SLID-vs-license partitioning decision)
---------------------------------------------------------
License-scoped traffic (``renew``, ``return_units``, ``ledger_probe``
with a license) goes to the ring owner of the ``license_id`` — that
shard holds the one authoritative ledger, so per-license unit
conservation needs no cross-shard coordination.

SLID-scoped traffic cannot hash the same way (an ``init`` has no
license, and one client holds licenses on many shards), so identity is
**pinned to a home shard** — the first shard name on the ring, which
allocates SLIDs, verifies remote attestation once (not N times), and
escrows root keys — and then **mirrored**: after a successful init the
router broadcasts ``admit(slid)`` to every other shard so renewals
there recognise the client, and when the home shard's response reveals
a crash re-init (a re-init answered without an old-backup key) it
broadcasts ``crash(slid)`` so every shard writes off the holdings *it*
tracks.  ``shutdown`` stays home-only: escrow lives there, and a
graceful restart must leave outstanding units untouched on the license
shards.  The net effect: write-offs and grants always mutate a ledger
under its owning shard's license lock, so conservation holds per shard
and therefore fleet-wide.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.core.licensefile import VENDOR_SECRET
from repro.core.protocol import InitResponse, Status
from repro.core.renewal import RenewalPolicy
from repro.core.sl_remote import LicenseDefinition, SlRemote
from repro.net.transport import HandlerTable, Transport
from repro.sgx.driver import SgxStats
from repro.sim.clock import Clock

#: A per-shard dispatch callable: (method, payload, clock, stats) -> response.
DispatchFn = Callable[..., Any]

#: Methods routed by the license id carried in their payload.
_LICENSE_SCOPED = ("renew", "return_units")


def _sha256_point(data: bytes) -> int:
    """A 64-bit ring position from sha256 (deterministic across runs)."""
    return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")


class HashRing:
    """Consistent hashing of string keys onto named shards.

    Each shard contributes ``replicas`` virtual points so load spreads
    evenly; a key belongs to the first point clockwise from its own
    hash.  Adding or removing one shard only remaps the keys that
    belonged to it — the property that lets a fleet grow without
    re-homing every license.
    """

    def __init__(self, shard_names: Sequence[str], replicas: int = 64) -> None:
        if not shard_names:
            raise ValueError("a hash ring needs at least one shard")
        if len(set(shard_names)) != len(shard_names):
            raise ValueError("shard names must be unique")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.shard_names = tuple(shard_names)
        self.replicas = replicas
        points = []
        for name in self.shard_names:
            for replica in range(replicas):
                point = _sha256_point(f"{name}#{replica}".encode("utf-8"))
                points.append((point, name))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [name for _, name in points]

    def shard_for(self, key: str) -> str:
        """The shard owning ``key`` (deterministic, sha256-based)."""
        point = _sha256_point(key.encode("utf-8"))
        index = bisect.bisect_right(self._points, point) % len(self._points)
        return self._owners[index]

    def __len__(self) -> int:
        return len(self.shard_names)


def default_shard_names(count: int) -> List[str]:
    """The canonical names for an N-shard fleet (``shard-0`` .. ``shard-N-1``).

    Both sides of the wire — ``serve-remote --shard-of I:N`` workers and
    :func:`connect_sharded_tcp` clients — derive the same names, so
    their rings agree without exchanging configuration.
    """
    if count < 1:
        raise ValueError("shard count must be >= 1")
    return [f"shard-{index}" for index in range(count)]


class ShardRouter:
    """Routes lease-protocol calls across per-shard dispatch callables.

    The router is transport-agnostic: a backend is any callable with the
    dispatch signature, so the same routing logic serves the in-process
    :class:`ShardedRemote` (backends are ``HandlerTable.dispatch``) and
    the wire-level :class:`ShardRouterTransport` (backends are
    ``Transport.request``).
    """

    def __init__(self, backends: Mapping[str, DispatchFn],
                 ring: Optional[HashRing] = None,
                 home: Optional[str] = None) -> None:
        if not backends:
            raise ValueError("a shard router needs at least one backend")
        self.backends: Dict[str, DispatchFn] = dict(backends)
        names = list(self.backends)
        self.ring = ring if ring is not None else HashRing(names)
        for name in self.ring.shard_names:
            if name not in self.backends:
                raise ValueError(f"ring names shard {name!r} with no backend")
        #: Identity authority: SLIDs, attestation, escrow (see module doc).
        self.home = home if home is not None else self.ring.shard_names[0]
        if self.home not in self.backends:
            raise ValueError(f"home shard {self.home!r} has no backend")

    # -- placement -----------------------------------------------------
    def shard_for(self, license_id: str) -> str:
        return self.ring.shard_for(license_id)

    def _license_key(self, method: str, payload: Any) -> str:
        if method == "renew":
            return payload.license_id
        # return_units travels as the plain tuple (slid, license_id, units).
        return payload[1]

    # -- the routed round trip -----------------------------------------
    def request(self, method: str, payload: Any,
                clock: Optional[Clock] = None,
                stats: Optional[SgxStats] = None):
        if method in _LICENSE_SCOPED:
            owner = self.shard_for(self._license_key(method, payload))
            return self.backends[owner](method, payload, clock=clock,
                                        stats=stats)
        if method == "init":
            return self._routed_init(payload, clock, stats)
        if method == "ledger_probe" and payload is None:
            # Fleet-wide audit: fan out and merge (license ids are
            # disjoint across shards by construction).
            merged: Dict[str, Any] = {}
            for backend in self.backends.values():
                merged.update(backend(method, None, clock=clock, stats=stats))
            return merged
        if method == "ledger_probe":
            owner = self.shard_for(payload)
            return self.backends[owner](method, payload, clock=clock,
                                        stats=stats)
        # Everything SLID-scoped (shutdown, admit, crash) and anything
        # unrecognised is pinned to the home shard; unknown methods fail
        # there with the standard dispatch error.
        return self.backends[self.home](method, payload, clock=clock,
                                        stats=stats)

    def _routed_init(self, payload: Any,
                     clock: Optional[Clock], stats: Optional[SgxStats]):
        """Home-shard init + identity mirror + crash broadcast."""
        response = self.backends[self.home]("init", payload, clock=clock,
                                            stats=stats)
        if not isinstance(response, InitResponse):
            return response
        if response.status is not Status.OK or response.slid is None:
            return response
        was_reinit = getattr(payload, "slid", None) is not None
        crashed = was_reinit and response.old_backup_key is None
        for name, backend in self.backends.items():
            if name == self.home:
                continue
            backend("admit", response.slid, clock=clock, stats=stats)
            if crashed:
                backend("crash", response.slid, clock=clock, stats=stats)
        return response


class ShardedRemote:
    """N in-process SL-Remote shards behind one protocol surface.

    Duck-types the ``SlRemote`` surface every wiring point uses —
    ``protocol_handlers()``, provisioning, ledger probes — so a
    :class:`~repro.net.server.LeaseServer`, a
    :class:`~repro.cluster.Cluster`, or a deployment can swap it in
    with a ``shards=N`` knob.  Per-license locking inside each shard
    plus the partitioning here means concurrent renewals contend only
    when they target the *same* license.
    """

    def __init__(
        self,
        ras,
        shards: int = 4,
        policy: Optional[RenewalPolicy] = None,
        server_secret: bytes = VENDOR_SECRET,
        shard_names: Optional[Sequence[str]] = None,
        ring_replicas: int = 64,
        ledger_commit_seconds: float = 0.0,
    ) -> None:
        names = (list(shard_names) if shard_names is not None
                 else default_shard_names(shards))
        self.shards: Dict[str, SlRemote] = {
            name: SlRemote(ras, policy=policy, server_secret=server_secret,
                           ledger_commit_seconds=ledger_commit_seconds)
            for name in names
        }
        self.ring = HashRing(names, replicas=ring_replicas)
        self._tables = {
            name: HandlerTable(remote.protocol_handlers())
            for name, remote in self.shards.items()
        }
        self.router = ShardRouter(
            {name: table.dispatch for name, table in self._tables.items()},
            ring=self.ring,
        )
        self.policy = next(iter(self.shards.values())).policy

    # ------------------------------------------------------------------
    # Wire protocol surface (drop-in for SlRemote)
    # ------------------------------------------------------------------
    def protocol_handlers(self) -> Dict[str, Callable]:
        def routed(method: str) -> Callable:
            def handler(request, clock: Optional[Clock] = None,
                        stats: Optional[SgxStats] = None):
                return self.router.request(method, request, clock=clock,
                                           stats=stats)
            handler.__name__ = f"route_{method}"
            return handler

        return {method: routed(method)
                for method in ("init", "renew", "shutdown", "return_units",
                               "admit", "crash", "ledger_probe")}

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def shard_for(self, license_id: str) -> str:
        return self.ring.shard_for(license_id)

    def shard_of(self, license_id: str) -> SlRemote:
        return self.shards[self.shard_for(license_id)]

    @property
    def home_shard(self) -> SlRemote:
        return self.shards[self.router.home]

    # ------------------------------------------------------------------
    # Developer-facing provisioning (routed to the owning shard)
    # ------------------------------------------------------------------
    def issue_license(self, license_id: str, total_units: int,
                      **kwargs) -> LicenseDefinition:
        return self.shard_of(license_id).issue_license(
            license_id, total_units, **kwargs
        )

    def revoke_license(self, license_id: str) -> None:
        self.shard_of(license_id).revoke_license(license_id)

    def ledger(self, license_id: str):
        return self.shard_of(license_id).ledger(license_id)

    def license_definition(self, license_id: str) -> LicenseDefinition:
        return self.shard_of(license_id).license_definition(license_id)

    def report_crash(self, slid: int) -> None:
        """Out-of-band crash: every shard writes off what it tracks."""
        for remote in self.shards.values():
            remote.report_crash(slid)

    def ledger_probe(self, license_id: Optional[str] = None):
        return self.router.request("ledger_probe", license_id)

    # ------------------------------------------------------------------
    # Aggregated counters
    # ------------------------------------------------------------------
    @property
    def renewals_served(self) -> int:
        return sum(remote.renewals_served for remote in self.shards.values())

    @property
    def inits_served(self) -> int:
        return sum(remote.inits_served for remote in self.shards.values())


class ShardRouterTransport(Transport):
    """Client-side router over one transport per shard.

    The thin layer that lets one SL-Local fleet span N ``serve-remote``
    processes: requests route exactly like :class:`ShardRouter` (it *is*
    a ShardRouter over ``Transport.request`` backends), and every
    underlying transport keeps its own connection, retry budget, and
    virtual-RTT accounting — a mirror broadcast to N-1 shards charges
    N-1 honest round trips to the caller's clock.
    """

    name = "shard-router"

    def __init__(self, transports: Mapping[str, Transport],
                 ring: Optional[HashRing] = None,
                 home: Optional[str] = None) -> None:
        self.transports: Dict[str, Transport] = dict(transports)
        self.router = ShardRouter(
            {name: transport.request
             for name, transport in self.transports.items()},
            ring=ring, home=home,
        )

    def request(self, method: str, payload: Any,
                clock: Optional[Clock] = None,
                stats: Optional[SgxStats] = None):
        return self.router.request(method, payload, clock=clock, stats=stats)

    def close(self) -> None:
        for transport in self.transports.values():
            transport.close()


def connect_sharded_tcp(addresses, conditions=None, timeout_seconds: float = 5.0,
                        max_attempts: int = 5, backoff_seconds: float = 0.05,
                        shard_names: Optional[Sequence[str]] = None,
                        ring_replicas: int = 64,
                        io: str = "threads"):
    """Endpoint routing across N ``serve-remote --shard-of`` processes.

    ``addresses`` is a sequence of ``(host, port)`` pairs, one per shard
    **in ring order** — the i-th address must be the worker started with
    ``--shard-of i:N`` (or with the i-th name of ``shard_names`` /
    ``--ring``), otherwise the client's ring disagrees with the fleet's
    license placement.

    ``io`` selects the per-shard client: ``"threads"`` is the strict-
    ordered :class:`~repro.net.transport.TcpTransport`; ``"async"`` is
    the pipelining :class:`~repro.net.aio.AsyncTcpTransport`, letting
    concurrent callers keep renewals to *every* shard in flight on one
    socket each (the whole sharded fleet then runs on event loops end
    to end).
    """
    from repro.net.rpc import RemoteEndpoint
    from repro.net.transport import TcpTransport

    if io == "async":
        from repro.net.aio import AsyncTcpTransport as transport_cls
    elif io == "threads":
        transport_cls = TcpTransport
    else:
        raise ValueError(f"unknown io backend {io!r}; choose 'threads' or 'async'")

    addresses = list(addresses)
    names = (list(shard_names) if shard_names is not None
             else default_shard_names(len(addresses)))
    if len(names) != len(addresses):
        raise ValueError("need exactly one shard name per address")
    transports = {
        name: transport_cls(host, port, conditions=conditions,
                            timeout_seconds=timeout_seconds,
                            max_attempts=max_attempts,
                            backoff_seconds=backoff_seconds)
        for name, (host, port) in zip(names, addresses)
    }
    ring = HashRing(names, replicas=ring_replicas)
    return RemoteEndpoint(ShardRouterTransport(transports, ring=ring))
