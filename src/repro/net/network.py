"""Latency/reliability-parameterised network links.

A :class:`SimulatedLink` charges a round-trip latency to the caller's
clock and drops messages with probability ``1 - reliability``; retries
are the caller's concern (the RPC layer retries with backoff, charging
time for each attempt, which is how an unreliable network translates
into longer renewal latencies — the quantity Algorithm 1 compensates
for by granting flaky-network nodes more units).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.clock import Clock, seconds_to_cycles
from repro.sim.rng import DeterministicRng


class NetworkError(Exception):
    """Raised when a message could not be delivered after retries."""


@dataclass(frozen=True)
class NetworkConditions:
    """Observable link quality (the ``n`` of Table 2)."""

    round_trip_seconds: float = 0.050
    reliability: float = 1.0  # delivery probability per attempt

    def __post_init__(self) -> None:
        if self.round_trip_seconds < 0:
            raise ValueError("round trip time cannot be negative")
        if not 0.0 < self.reliability <= 1.0:
            raise ValueError("reliability must be in (0, 1]")


class SimulatedLink:
    """A bidirectional link with fixed RTT and Bernoulli losses."""

    def __init__(self, conditions: NetworkConditions,
                 rng: DeterministicRng) -> None:
        self.conditions = conditions
        self._rng = rng
        self.messages_sent = 0
        self.messages_dropped = 0

    def round_trip(self, clock: Clock, max_attempts: int = 5) -> int:
        """Perform one request/response exchange.

        Charges one RTT per attempt (a dropped message is only detected
        at timeout, which we approximate as a full RTT).  Returns the
        number of attempts used; raises :class:`NetworkError` when all
        attempts drop.
        """
        for attempt in range(1, max_attempts + 1):
            self.messages_sent += 1
            clock.advance(seconds_to_cycles(self.conditions.round_trip_seconds))
            if self._rng.bernoulli(self.conditions.reliability):
                return attempt
            self.messages_dropped += 1
        raise NetworkError(
            f"message lost {max_attempts} times on a link with reliability "
            f"{self.conditions.reliability}"
        )

    @property
    def observed_reliability(self) -> float:
        """Empirical delivery rate so far (what SL-Local reports upstream)."""
        if self.messages_sent == 0:
            return self.conditions.reliability
        delivered = self.messages_sent - self.messages_dropped
        return delivered / self.messages_sent
