"""The one error surface every network backend raises from.

Before this module, a failed lease call surfaced as whatever the
backend happened to throw: ``ConnectionError`` from a dial loop, a
generic ``TransportError`` from a retry loop, a ``RemoteCallError``
whose *message text* had to be string-matched to discover the server
shed the connection.  Callers that wanted to react differently to
"server is gone" vs "server is overloaded" vs "license is mid-
migration" could not, portably.

The hierarchy::

    TransportError                  a request could not be completed
    ├── DialError                   (re)connect budget exhausted — the
    │                               far side is unreachable
    ├── RetriesExhausted            the per-call retry budget ran out on
    │                               an established session
    ├── TamperedFrame               a reply frame failed to decode —
    │                               tampering evidence, never retried
    ├── Overloaded                  the server answered with its typed
    │                               connection-shedding envelope
    └── Migrating                   a license's ledger is mid-migration
                                    and bounded retries did not outlast
                                    the freeze window

Both socket transports (:class:`~repro.net.transport.TcpTransport`,
:class:`~repro.net.aio.AsyncTcpTransport`) and the shard router
(:mod:`repro.net.sharding`) raise from this hierarchy; the legacy name
``repro.net.transport.TransportError`` is an alias of the base class,
so existing ``except TransportError`` call sites keep working and the
RPC layer's :class:`~repro.net.rpc.RpcError` wrapping is unchanged.

Semantics worth knowing:

* :class:`DialError` is **not** retried by the per-call budget — if a
  full reconnect budget (N dials with exponential backoff) could not
  reach the host, immediately re-dialing ``max_attempts`` more times
  would only multiply the two budgets.  It is also the shard router's
  failover trigger: a shard that cannot be dialed is presumed dead and
  its follower is promoted.
* :class:`Overloaded` is terminal for the attempt — the server
  *answered* (with ``{"overloaded": true}`` envelope metadata), so
  retrying on the same connection cannot help.
* :class:`Migrating` carries ``retry_after_seconds`` and the new
  owner's name, mirroring the
  :class:`~repro.core.protocol.MigratingNotice` that produced it.

This module deliberately imports nothing from the rest of the package
so it can be used from any layer without import cycles.
"""

from __future__ import annotations

from typing import Optional


class TransportError(Exception):
    """A request could not be completed by the transport."""


class DialError(TransportError):
    """The (re)connect budget ran out; the far side is unreachable."""

    def __init__(self, message: str, host: str = "", port: int = 0,
                 attempts: int = 0) -> None:
        super().__init__(message)
        self.host = host
        self.port = port
        self.attempts = attempts


class RetriesExhausted(TransportError):
    """Every per-call retry attempt failed on an established session."""

    def __init__(self, message: str, attempts: int = 0) -> None:
        super().__init__(message)
        self.attempts = attempts


class TamperedFrame(TransportError):
    """A reply frame failed to decode: evidence of in-flight tampering.

    Raised (never retried) when a transport reads a frame whose
    checksum, framing, or envelope cannot be decoded.  Retrying would
    be wrong twice over: the stream is desynchronized (the next read
    would misinterpret bytes mid-frame), and a man-in-the-middle could
    use silent retries to hide the tampering entirely.  The transport
    drops the connection, counts the frame in ``frames_rejected``, and
    surfaces this typed error so red-team harnesses and operators can
    observe every tampered frame.
    """

    def __init__(self, message: str, host: str = "", port: int = 0) -> None:
        super().__init__(message)
        self.host = host
        self.port = port


class Overloaded(TransportError):
    """The server shed this connection with its typed overload envelope."""


class Migrating(TransportError):
    """A license stayed frozen (mid-migration) past the retry budget."""

    def __init__(self, message: str, license_id: str = "",
                 retry_after_seconds: float = 0.0,
                 new_owner: Optional[str] = None) -> None:
        super().__init__(message)
        self.license_id = license_id
        self.retry_after_seconds = retry_after_seconds
        self.new_owner = new_owner


class UnknownMethodError(TransportError):
    """Dispatch target does not exist on the far side."""
