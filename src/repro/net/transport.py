"""Pluggable transports between the lease tiers.

The three-tier stack (SL-Manager -> SL-Local -> SL-Remote) talks
through a :class:`Transport`, so the *same* SL-Local code runs against:

* :class:`InProcessTransport` — direct dispatch to handler objects
  through a :class:`SimulatedLink`; the deterministic, cheap backend
  every experiment uses.
* :class:`SerializedLoopbackTransport` — identical topology, but every
  request and response is forced through the wire codec
  (:mod:`repro.net.codec`).  Anything that would break over a real
  network — shared object identity, unserializable fields — breaks
  loudly here, while determinism is fully preserved.
* :class:`TcpTransport` — a real socket client for an SL-Remote served
  by :class:`repro.net.server.LeaseServer` in another process, with
  length-prefixed framing, request timeouts, and retry-with-backoff.
  Each attempt still charges one RTT of *virtual* time to the caller's
  clock, folding the real wire into the SimulatedLink accounting model
  (an unreliable server shows up as longer renewal latencies, exactly
  like a lossy simulated link).

Handlers needing the caller's clock/stats (the remote-attestation path
charges its 3.5 s to the *caller*) declare it by accepting ``clock`` /
``stats`` keyword arguments; :class:`HandlerTable` forwards them.
"""

from __future__ import annotations

import inspect
import socket
import threading
import time
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.core.protocol import BatchRequest, BatchResponse
from repro.net import codec
from repro.net.endpoint import EndpointConfig
from repro.net.errors import (
    DialError,
    Overloaded,
    RetriesExhausted,
    TamperedFrame,
    TransportError,
    UnknownMethodError,
)
from repro.net.network import NetworkConditions, SimulatedLink
from repro.sgx.driver import SgxStats
from repro.sim.clock import Clock, seconds_to_cycles

__all__ = [
    "TransportError",
    "TamperedFrame",
    "UnknownMethodError",
    "HandlerTable",
    "Transport",
    "InProcessTransport",
    "SerializedLoopbackTransport",
    "RenewCoalescer",
    "TcpTransport",
    "TRANSPORT_BACKENDS",
    "loopback_transport",
    "read_frame",
    "transport_telemetry",
]


class HandlerTable:
    """Server-side dispatch table: method name -> handler callable."""

    def __init__(self, handlers: Optional[Mapping[str, Callable]] = None) -> None:
        self._handlers: Dict[str, Callable] = {}
        self._wants: Dict[str, Tuple[bool, bool]] = {}
        if handlers:
            for method, handler in handlers.items():
                self.register(method, handler)

    def register(self, method: str, handler: Callable,
                 override: bool = False) -> None:
        """Bind ``method`` to ``handler``.

        Duplicate bindings are a bug unless ``override=True`` — the
        escape hatch extra handlers use to wrap a protocol method
        (e.g. the replication manager's quorum-gated ``init``).
        """
        if method in self._handlers and not override:
            raise ValueError(f"handler for {method!r} already registered")
        self._handlers[method] = handler
        parameters = inspect.signature(handler).parameters
        self._wants[method] = ("clock" in parameters, "stats" in parameters)

    def methods(self) -> Tuple[str, ...]:
        return tuple(self._handlers)

    def dispatch(self, method: str, request: object,
                 clock: Optional[Clock] = None,
                 stats: Optional[SgxStats] = None):
        handler = self._handlers.get(method)
        if handler is None:
            raise UnknownMethodError(f"no such remote method {method!r}")
        wants_clock, wants_stats = self._wants[method]
        kwargs = {}
        if wants_clock and clock is not None:
            kwargs["clock"] = clock
        if wants_stats and stats is not None:
            kwargs["stats"] = stats
        return handler(request, **kwargs)


class Transport:
    """One round trip of the lease protocol; backends override this."""

    name = "abstract"

    def request(self, method: str, payload: object,
                clock: Optional[Clock] = None,
                stats: Optional[SgxStats] = None):
        """Send ``payload`` to ``method`` and return the response.

        ``clock=None`` means the caller explicitly opted out of link
        accounting (the RPC layer's ``local=True``); transports that
        cannot bypass a real network reject it.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release any connection state (no-op for in-process backends)."""


#: EWMA smoothing for the socket transports' observed round-trip time:
#: heavy enough that one slow request does not dominate, light enough
#: that a degrading link shows within a handful of renewals.
RTT_EWMA_ALPHA = 0.2


def transport_telemetry(transport) -> Dict[str, Any]:
    """Observed per-connection condition evidence, best effort.

    The renewal control loop ships this with every ``RenewRequest`` so
    SL-Remote sizes grants from what the connection actually did — the
    empirical delivery rate, the measured round-trip EWMA, and the
    cumulative retry/reconnect counters — rather than static defaults.
    Works against any transport: fields a backend does not track fall
    back to its configured :class:`SimulatedLink` conditions or to
    neutral defaults, so in-process experiments keep their semantics.
    """
    reliability = getattr(transport, "observed_reliability", None)
    if reliability is None:
        link = getattr(transport, "link", None)
        reliability = getattr(link, "observed_reliability", None)
    rtt = getattr(transport, "rtt_ewma_seconds", 0.0) or 0.0
    if not rtt:
        conditions = getattr(transport, "conditions", None)
        if conditions is None:
            link = getattr(transport, "link", None)
            conditions = getattr(link, "conditions", None)
        if conditions is not None:
            rtt = conditions.round_trip_seconds
    return {
        # NodeCondition demands reliability in (0, 1]: clamp a fully
        # dead sample window to a near-zero floor instead of zero.
        "network_reliability": (
            None if reliability is None
            else min(1.0, max(0.01, float(reliability)))
        ),
        "rtt_seconds": float(rtt),
        "retries": int(getattr(transport, "messages_dropped", 0) or 0),
        "reconnects": int(getattr(transport, "reconnects", 0) or 0),
    }


class InProcessTransport(Transport):
    """The historical behavior: simulated link + direct dispatch."""

    name = "in-process"

    def __init__(self, handlers: HandlerTable, link: SimulatedLink) -> None:
        self.handlers = handlers
        self.link = link

    def request(self, method: str, payload: object,
                clock: Optional[Clock] = None,
                stats: Optional[SgxStats] = None):
        if clock is not None:
            self.link.round_trip(clock)
        return self.handlers.dispatch(method, payload, clock=clock, stats=stats)


class SerializedLoopbackTransport(Transport):
    """In-process dispatch with a mandatory wire round trip.

    Requests and responses both pass through encode -> bytes -> decode,
    so the handler only ever sees a *rebuilt copy* of the request and
    the caller a rebuilt copy of the response — any accidental
    shared-object coupling between the tiers is severed, and fields a
    real network could not carry fail with :class:`codec.CodecError`.
    """

    name = "serialized"

    def __init__(self, handlers: HandlerTable, link: SimulatedLink) -> None:
        self.handlers = handlers
        self.link = link
        self.bytes_sent = 0
        self.bytes_received = 0
        self._request_id = 0

    def request(self, method: str, payload: object,
                clock: Optional[Clock] = None,
                stats: Optional[SgxStats] = None):
        if clock is not None:
            self.link.round_trip(clock)
        self._request_id += 1
        wire_request = codec.encode_request(method, payload, self._request_id)
        self.bytes_sent += len(wire_request)
        decoded_method, decoded_payload, request_id = codec.decode_request(
            wire_request
        )
        response = self.handlers.dispatch(
            decoded_method, decoded_payload, clock=clock, stats=stats
        )
        wire_response = codec.encode_response(response, request_id)
        self.bytes_received += len(wire_response)
        return codec.decode_response(wire_response)


class _BatchSlot:
    """One caller's seat in a coalesced renewal frame."""

    __slots__ = ("payload", "event", "reply", "error")

    def __init__(self, payload: object) -> None:
        self.payload = payload
        self.event = threading.Event()
        self.reply: object = None
        self.error: Optional[BaseException] = None


#: Most renewals one BatchRequest frame may carry; a gathering round
#: larger than this is sent as several sequential frames.
MAX_BATCH_REQUESTS = 256


class RenewCoalescer:
    """Gathers concurrent ``renew`` calls into one ``renew_batch`` frame.

    The first caller of a gathering round becomes the **leader**: it
    waits ``window_seconds`` for peers to pile on, then ships everything
    gathered so far as a single :class:`~repro.core.protocol.BatchRequest`
    and distributes the positional replies.  Followers just park on
    their slot.  Callers arriving while a leader is mid-flight start the
    next round, so the pipeline never stalls behind an in-flight batch.

    The payoff is server-side: N coalesced renewals cost one frame, one
    executor hop, and one ledger-commit charge per distinct license
    instead of N of each — the difference between ~700 and several
    thousand renewals/s at 100 clients (see
    ``benchmarks/test_wire_format.py``).
    """

    def __init__(self, window_seconds: float,
                 wait_budget_seconds: float = 60.0) -> None:
        if window_seconds <= 0:
            raise ValueError("batching needs a positive window")
        self.window_seconds = window_seconds
        self.wait_budget_seconds = wait_budget_seconds
        self._lock = threading.Lock()
        self._slots: list = []
        self.batches_sent = 0
        self.requests_coalesced = 0
        self.largest_batch = 0

    def submit(self, payload: object, send: Callable) -> object:
        """Park ``payload`` in the current round; returns its reply.

        ``send(payloads) -> replies`` ships one gathered round and must
        return exactly one reply per payload, in order.
        """
        slot = _BatchSlot(payload)
        with self._lock:
            self._slots.append(slot)
            leader = len(self._slots) == 1
        if leader:
            time.sleep(self.window_seconds)
            with self._lock:
                batch, self._slots = self._slots, []
            self._ship(batch, send)
        if not slot.event.wait(self.wait_budget_seconds):
            raise TransportError(
                f"coalesced renewal got no reply within "
                f"{self.wait_budget_seconds}s"
            )
        if slot.error is not None:
            raise slot.error
        return slot.reply

    def _ship(self, batch: list, send: Callable) -> None:
        for start in range(0, len(batch), MAX_BATCH_REQUESTS):
            chunk = batch[start:start + MAX_BATCH_REQUESTS]
            try:
                replies = send([s.payload for s in chunk])
                if len(replies) != len(chunk):
                    raise TransportError(
                        f"batch of {len(chunk)} renewals answered with "
                        f"{len(replies)} replies"
                    )
            except BaseException as exc:  # noqa: BLE001 - fan the fault out
                for member in chunk:
                    member.error = exc
                    member.event.set()
                continue
            self.batches_sent += 1
            self.requests_coalesced += len(chunk)
            self.largest_batch = max(self.largest_batch, len(chunk))
            for member, reply in zip(chunk, replies):
                member.reply = reply
                member.event.set()


class TcpTransport(Transport):
    """Socket client for an SL-Remote behind :class:`~repro.net.server.LeaseServer`.

    One persistent connection, length-prefixed JSON frames.  A request
    that times out or hits a broken connection is retried with
    exponential backoff up to ``max_attempts`` times; every attempt
    charges one virtual RTT to the caller's clock (the SimulatedLink
    accounting model), and real-world waiting happens via socket
    timeouts.  Application-level errors reported by the server are
    *not* retried — they surface immediately.

    Connection resilience: dialing has its **own** budget
    (``reconnect_attempts`` tries with ``reconnect_backoff_seconds``
    exponential backoff), separate from the per-call retry budget.  A
    server restart mid-session therefore costs the one in-flight request
    attempt that observed the broken socket, after which the transport
    re-dials on its reconnect budget and the session simply resumes —
    the lease protocol needs no connection-level handshake because every
    request carries the client's SLID, and all server-side session state
    (identity, ledgers, escrowed root keys) is keyed by it, not by the
    socket.  Half-open sockets (peer vanished without a FIN) cannot be
    seen at send time — the kernel buffers the bytes — so they are
    detected one step later, when the response read times out or the
    stream dies mid-frame; both land in the same reconnect path.
    """

    name = "tcp"

    def __init__(
        self,
        host: str,
        port: int,
        conditions: Optional[NetworkConditions] = None,
        timeout_seconds: float = 5.0,
        max_attempts: int = 5,
        backoff_seconds: float = 0.05,
        reconnect_attempts: int = 4,
        reconnect_backoff_seconds: float = 0.05,
        config: Optional[EndpointConfig] = None,
    ) -> None:
        # All knob validation lives in EndpointConfig.__post_init__ —
        # the legacy keyword form builds one, so both spellings share it.
        if config is None:
            config = EndpointConfig(
                timeout_seconds=timeout_seconds,
                max_attempts=max_attempts,
                backoff_seconds=backoff_seconds,
                reconnect_attempts=reconnect_attempts,
                reconnect_backoff_seconds=reconnect_backoff_seconds,
            )
        self.config = config
        self.host = host
        self.port = port
        self.conditions = conditions if conditions is not None else NetworkConditions()
        self.timeout_seconds = config.timeout_seconds
        self.max_attempts = config.max_attempts
        self.backoff_seconds = config.backoff_seconds
        self.reconnect_attempts = config.reconnect_attempts
        self.reconnect_backoff_seconds = config.reconnect_backoff_seconds
        self._sock: Optional[socket.socket] = None
        self._lock = threading.Lock()
        self._request_id = 0
        self._ever_connected = False
        self.messages_sent = 0
        self.messages_dropped = 0
        #: Reply frames that failed to decode (tampered/corrupted):
        #: surfaced as typed :class:`TamperedFrame` errors, never
        #: silently retried.
        self.frames_rejected = 0
        #: Successful re-dials after an established session lost its
        #: socket (a server restart survived in place).
        self.reconnects = 0
        #: EWMA of the *real* round-trip time of successful exchanges —
        #: the latency half of the telemetry renewals carry upstream.
        self.rtt_ewma_seconds = 0.0
        #: Preferred wire version; the connection's actual version is
        #: negotiated on dial and recorded in ``negotiated_wire``.
        self.wire = getattr(config, "wire", codec.WIRE_VERSION)
        self.negotiated_wire: Optional[int] = None
        #: Per-frame link accounting: every physical frame is charged
        #: once with its actual serialized length, so a batch of N
        #: coalesced renewals bills one frame, not N messages.
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_sent = 0
        self.frames_received = 0
        window = getattr(config, "batch_window", 0.0)
        self.coalescer: Optional[RenewCoalescer] = (
            RenewCoalescer(window) if window > 0 else None
        )

    # -- connection management -----------------------------------------
    def _connection(self) -> socket.socket:
        """The live socket, (re)dialing on the reconnect budget if needed."""
        if self._sock is not None:
            return self._sock
        last_error: Optional[OSError] = None
        for attempt in range(1, self.reconnect_attempts + 1):
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout_seconds
                )
            except OSError as exc:
                last_error = exc
                if attempt < self.reconnect_attempts:
                    time.sleep(
                        self.reconnect_backoff_seconds * (2 ** (attempt - 1))
                    )
                continue
            sock.settimeout(self.timeout_seconds)
            self._sock = sock
            if self._ever_connected:
                self.reconnects += 1
            self._ever_connected = True
            self.negotiated_wire = self._negotiate(sock)
            return sock
        raise DialError(
            f"could not (re)connect to {self.host}:{self.port} after "
            f"{self.reconnect_attempts} dial attempts: {last_error}",
            host=self.host, port=self.port,
            attempts=self.reconnect_attempts,
        )

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        with self._lock:
            self._drop_connection()

    # -- negotiation -----------------------------------------------------
    def _negotiate(self, sock: socket.socket) -> int:
        """First exchange on a fresh connection: agree on a wire version.

        A preference below v3 skips the hello entirely (the JSON
        revisions need no agreement — decoders accept both); otherwise
        one JSON round-trip asks the server to pick.  A server without
        a hello handler answers with an unknown-method error, which
        down-negotiates to v2.
        """
        if self.wire < codec.WIRE_V3:
            return self.wire
        frame = codec.frame(codec.encode_request(
            codec.HELLO_METHOD, codec.hello_payload(self.wire)
        ))
        sock.sendall(frame)
        self.bytes_sent += len(frame)
        self.frames_sent += 1
        data = read_frame(sock)
        self.bytes_received += len(data) + codec.FRAME_HEADER.size
        self.frames_received += 1
        reply = codec.decode_reply(data)
        if reply.kind == "error":
            if reply.meta.get("overloaded"):
                self._drop_connection()
                raise Overloaded(reply.error or "server overloaded")
            return codec.WIRE_VERSION  # pre-negotiation server: speak JSON
        chosen = reply.payload.get("wire") if isinstance(reply.payload, dict) \
            else None
        if chosen not in codec.SUPPORTED_WIRE_VERSIONS:
            raise codec.CodecError(f"server negotiated bogus wire {chosen!r}")
        return chosen

    # -- the round trip ------------------------------------------------
    def request(self, method: str, payload: object,
                clock: Optional[Clock] = None,
                stats: Optional[SgxStats] = None):
        if clock is None:
            raise TransportError(
                "TcpTransport cannot bypass the network: a real wire has no "
                "local fast path"
            )
        if method == "renew" and self.coalescer is not None:
            # The caller's own virtual RTT, then one seat in the shared
            # frame; the leader's send path skips its per-call RTT so the
            # frame itself is never double-billed.
            clock.advance(
                seconds_to_cycles(self.conditions.round_trip_seconds)
            )
            return self.coalescer.submit(
                payload, lambda batch: self._send_batch(batch, clock, stats)
            )
        return self._request_single(method, payload, clock, stats)

    def _send_batch(self, payloads: list, clock: Clock,
                    stats: Optional[SgxStats]):
        response = self._request_single(
            "renew_batch", BatchRequest(requests=tuple(payloads)),
            clock, stats, charge_rtt=False,
        )
        if not isinstance(response, BatchResponse) \
                or len(response.responses) != len(payloads):
            raise TransportError(
                f"malformed batch response for {len(payloads)} renewals: "
                f"{type(response).__name__}"
            )
        return list(response.responses)

    def _request_single(self, method: str, payload: object,
                        clock: Clock, stats: Optional[SgxStats],
                        charge_rtt: bool = True):
        last_error: Optional[Exception] = None
        with self._lock:
            for attempt in range(1, self.max_attempts + 1):
                # Virtual accounting first: a lost/timed-out request is
                # detected a full RTT later, same as SimulatedLink.
                if charge_rtt or attempt > 1:
                    clock.advance(
                        seconds_to_cycles(self.conditions.round_trip_seconds)
                    )
                self.messages_sent += 1
                started = time.monotonic()
                try:
                    result = self._round_trip(method, payload)
                    self._note_rtt(time.monotonic() - started)
                    return result
                except codec.RemoteCallError:
                    # The server answered — a complete round trip.
                    self._note_rtt(time.monotonic() - started)
                    raise  # retrying cannot help
                except DialError:
                    # A whole reconnect budget just failed; the per-call
                    # budget re-dialing max_attempts more times would only
                    # multiply the two budgets against a dead host.
                    self.messages_dropped += 1
                    raise
                except codec.CodecError as exc:
                    # The reply failed to decode: tampering evidence,
                    # not loss.  The stream is desynchronized (we may
                    # have stopped mid-frame) and a silent retry would
                    # hide the tamper, so drop the connection and
                    # surface the typed error immediately.
                    self.messages_dropped += 1
                    self.frames_rejected += 1
                    self._drop_connection()
                    raise TamperedFrame(
                        f"tcp reply for {method!r} from "
                        f"{self.host}:{self.port} failed to decode: {exc}",
                        host=self.host, port=self.port,
                    ) from exc
                except OSError as exc:
                    self.messages_dropped += 1
                    last_error = exc
                    self._drop_connection()
                    if attempt < self.max_attempts:
                        time.sleep(self.backoff_seconds * (2 ** (attempt - 1)))
        raise RetriesExhausted(
            f"tcp request {method!r} to {self.host}:{self.port} failed after "
            f"{self.max_attempts} attempts: {last_error}",
            attempts=self.max_attempts,
        )

    def _round_trip(self, method: str, payload: object):
        sock = self._connection()
        self._request_id += 1
        version = self.negotiated_wire or codec.WIRE_VERSION
        frame = codec.frame(
            codec.encode_request(method, payload, self._request_id,
                                 version=version)
        )
        sock.sendall(frame)
        # One physical frame = one charge, whatever it coalesces.
        self.bytes_sent += len(frame)
        self.frames_sent += 1
        data = read_frame(sock)
        self.bytes_received += len(data) + codec.FRAME_HEADER.size
        self.frames_received += 1
        reply = codec.decode_reply(data)
        if reply.kind == "error" and reply.meta.get("overloaded"):
            # The server answered by shedding this connection; it will
            # close the socket next, so drop our side pre-emptively.
            self._drop_connection()
            raise Overloaded(reply.error or "server overloaded")
        return reply.deliver()

    def _note_rtt(self, seconds: float) -> None:
        if self.rtt_ewma_seconds <= 0.0:
            self.rtt_ewma_seconds = seconds
        else:
            self.rtt_ewma_seconds += RTT_EWMA_ALPHA * (
                seconds - self.rtt_ewma_seconds
            )

    @property
    def observed_reliability(self) -> float:
        """Empirical delivery rate, mirroring SimulatedLink's probe."""
        if self.messages_sent == 0:
            return self.conditions.reliability
        return (self.messages_sent - self.messages_dropped) / self.messages_sent


#: Transport factories selectable by name (CLI / deployment knobs).
TRANSPORT_BACKENDS = ("in-process", "serialized", "tcp")


def loopback_transport(kind: str, handlers: HandlerTable,
                       link: SimulatedLink) -> Transport:
    """Build one of the two in-process backends by name."""
    if kind == "in-process":
        return InProcessTransport(handlers, link)
    if kind == "serialized":
        return SerializedLoopbackTransport(handlers, link)
    raise ValueError(
        f"unknown loopback transport {kind!r}; choose 'in-process' or "
        f"'serialized' (use TcpTransport for 'tcp')"
    )


def read_frame(sock: socket.socket) -> bytes:
    """Read one length-prefixed frame from a stream socket."""
    header = _read_exact(sock, codec.FRAME_HEADER.size)
    return _read_exact(sock, codec.frame_length(header))


def _read_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
