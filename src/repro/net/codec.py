"""Versioned wire codec for the three-tier lease protocol.

Everything SL-Local and SL-Remote say to each other can be flattened to
bytes and rebuilt on the far side: each protocol dataclass implements
``to_wire``/``from_wire`` (a JSON-ready field dict), and this module
wraps those payloads in versioned envelopes plus length-prefixed frames
for stream transports.

The codec is a **per-connection negotiated format registry**: v1/v2 are
JSON envelopes (v2 adds free-form metadata), v3 is a length-prefixed
binary format — struct-packed envelope header, raw bytes instead of
hex, and per-dataclass field tables so a ``RenewRequest`` travels as
packed values, not repeated key strings.  Peers pick a version during
the first exchange on a connection (:data:`HELLO_METHOD`); the sniffing
decoders (:func:`decode_request_envelope` / :func:`decode_reply`)
accept whichever format arrives, so a server can serve a mixed-version
fleet on one port.

The codec is deliberately strict:

* every envelope carries its wire version; a peer speaking an unknown
  version is rejected up front instead of mis-parsing fields;
* only registered message types decode (no pickle, no arbitrary code) —
  the untrusted network may corrupt a lease request but cannot smuggle
  objects into the enclave simulation;
* in v1/v2, byte strings travel as hex, so a frame is printable JSON
  end to end; v3 frames carry a CRC-32 over the whole envelope, so a
  flipped or missing byte raises :class:`CodecError` instead of
  mis-parsing.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import struct
import zlib
from typing import Any, Dict, NamedTuple, Optional, Tuple

from repro.core.gcl import LeaseKind
from repro.core.protocol import (
    AttestRequest,
    AttestResponse,
    BatchRequest,
    BatchResponse,
    InitRequest,
    InitResponse,
    MigratingNotice,
    RenewRequest,
    RenewResponse,
    ShutdownNotice,
    Status,
)
from repro.core.tokens import ExecutionToken
from repro.crypto.sealing import SealedBlob
from repro.sgx.attestation import AttestationReport

#: Protocol revision; bumped whenever an envelope or field layout changes.
#: v2 (the sharding release) adds optional envelope metadata — e.g. a
#: ``shard`` routing hint — and, from v2 on, decoders tolerate unknown
#: envelope keys so the client and server can upgrade independently.
WIRE_VERSION = 2

#: The binary wire revision: length-prefixed frames with a struct-packed
#: envelope header, CRC-32 integrity, raw byte strings, and field-table
#: packing for protocol dataclasses.  Never emitted unnegotiated — a
#: client proposes it via :data:`HELLO_METHOD` first.
WIRE_V3 = 3

#: Wire versions this decoder accepts, across both formats.  v1
#: envelopes carry the same required keys as v2, so a v2 peer
#: interoperates with a v1 peer in both directions as long as the v2
#: side *emits* v1 when talking down (``encode_request(..., version=1)``);
#: v3 frames are self-describing binary and sniffed by leading magic.
SUPPORTED_WIRE_VERSIONS = (1, 2, 3)

#: The subset of versions that are JSON envelopes.  A JSON envelope
#: claiming ``v: 3`` is rejected — v3 is binary-framed only, so a
#: mislabeled envelope cannot masquerade as the negotiated format.
JSON_WIRE_VERSIONS = (1, 2)

#: Reserved method name for wire-version negotiation.  The first
#: exchange on a TCP connection may be a v2-JSON request to this method
#: with ``{"supported": [...], "preferred": n}``; the server answers
#: ``{"wire": chosen}`` and records the choice for that connection.
#: Servers that predate negotiation answer with an unknown-method
#: error, which clients treat as "speak v2" — down-negotiation costs
#: one round-trip and never strands a connection.
HELLO_METHOD = "_wire_hello"

#: Envelope keys with fixed meaning; everything else in a v2 envelope is
#: free-form metadata (routing hints, correlation ids) that a peer may
#: ignore entirely — a v1 peer does, and still interoperates.
RESERVED_ENVELOPE_KEYS = frozenset({"v", "kind", "id", "method", "body", "error"})

#: Metadata key carrying a pipelining correlation id.  A client that
#: keeps several requests in flight on one connection tags each request
#: ``{CORRELATION_KEY: n}``; a pipelining-aware server echoes the tag on
#: the matching response, which may arrive out of order.  Peers that
#: ignore metadata (v1, or the threaded server answering in order)
#: degrade to strict-ordered mode: responses match requests by position.
CORRELATION_KEY = "corr"

#: Frame header for stream transports: 4-byte big-endian payload length.
FRAME_HEADER = struct.Struct(">I")

#: Refuse frames above this size (a corrupt length prefix must not make
#: the server allocate gigabytes).
MAX_FRAME_BYTES = 16 * 1024 * 1024


class CodecError(Exception):
    """Raised when a frame or payload cannot be (de)serialized."""


class RemoteCallError(Exception):
    """An error envelope from the far side of the wire."""


#: Message types allowed on the wire, keyed by their envelope tag.
MESSAGE_TYPES = {
    cls.__name__: cls
    for cls in (
        InitRequest,
        InitResponse,
        RenewRequest,
        RenewResponse,
        BatchRequest,
        BatchResponse,
        ShutdownNotice,
        MigratingNotice,
        AttestRequest,
        AttestResponse,
        ExecutionToken,
        SealedBlob,
        AttestationReport,
    )
}


def register_message_type(cls) -> None:
    """Allow an additional ``to_wire``/``from_wire`` message on the wire.

    Used by higher layers (e.g. :mod:`repro.net.replication`) that
    define fleet-internal message types without this module importing
    them — the registry stays explicit either way: only registered
    classes ever decode, and re-registering a different class under a
    taken name is rejected.
    """
    name = cls.__name__
    if not (hasattr(cls, "to_wire") and hasattr(cls, "from_wire")):
        raise CodecError(f"{name} lacks to_wire/from_wire")
    existing = MESSAGE_TYPES.get(name)
    if existing is not None and existing is not cls:
        raise CodecError(f"message type {name!r} already registered")
    MESSAGE_TYPES[name] = cls

#: Enum types allowed on the wire (encoded by value).
ENUM_TYPES = {cls.__name__: cls for cls in (Status, LeaseKind)}


# ----------------------------------------------------------------------
# Payload encoding: tagged, recursive, JSON-ready
# ----------------------------------------------------------------------
def encode_payload(obj: Any) -> Any:
    """Turn a protocol value into a JSON-serializable structure."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, bytes):
        return {"__kind__": "bytes", "hex": obj.hex()}
    if isinstance(obj, tuple):
        return {"__kind__": "tuple", "items": [encode_payload(x) for x in obj]}
    if isinstance(obj, list):
        return {"__kind__": "list", "items": [encode_payload(x) for x in obj]}
    if isinstance(obj, dict):
        return {
            "__kind__": "map",
            "items": [[encode_payload(k), encode_payload(v)] for k, v in obj.items()],
        }
    if isinstance(obj, enum.Enum):
        name = type(obj).__name__
        if name not in ENUM_TYPES:
            raise CodecError(f"enum {name} is not wire-encodable")
        return {"__kind__": "enum", "type": name, "value": obj.value}
    name = type(obj).__name__
    if name in MESSAGE_TYPES and hasattr(obj, "to_wire"):
        return {"__kind__": "msg", "type": name, "fields": obj.to_wire()}
    raise CodecError(f"object of type {name} is not wire-encodable")


def decode_payload(data: Any) -> Any:
    """Inverse of :func:`encode_payload`."""
    if data is None or isinstance(data, (bool, int, float, str)):
        return data
    if not isinstance(data, dict) or "__kind__" not in data:
        raise CodecError(f"malformed payload: {data!r}")
    kind = data["__kind__"]
    if kind == "bytes":
        return bytes.fromhex(data["hex"])
    if kind == "tuple":
        return tuple(decode_payload(x) for x in data["items"])
    if kind == "list":
        return [decode_payload(x) for x in data["items"]]
    if kind == "map":
        return {decode_payload(k): decode_payload(v) for k, v in data["items"]}
    if kind == "enum":
        cls = ENUM_TYPES.get(data["type"])
        if cls is None:
            raise CodecError(f"unknown enum type {data['type']!r}")
        return cls(data["value"])
    if kind == "msg":
        cls = MESSAGE_TYPES.get(data["type"])
        if cls is None:
            raise CodecError(f"unknown message type {data['type']!r}")
        return cls.from_wire(data["fields"])
    raise CodecError(f"unknown payload kind {kind!r}")


# ----------------------------------------------------------------------
# Envelopes
# ----------------------------------------------------------------------
def _check_version(version: int) -> int:
    if version not in JSON_WIRE_VERSIONS:
        raise CodecError(
            f"cannot emit wire version {version!r} as a JSON envelope; "
            f"supported: {SUPPORTED_WIRE_VERSIONS}"
        )
    return version


def _merge_meta(envelope: Dict[str, Any], meta: Optional[Dict[str, Any]],
                version: int) -> None:
    """Fold free-form metadata into a v2+ envelope (v1 cannot carry it)."""
    if not meta or version < 2:
        return
    clobbered = RESERVED_ENVELOPE_KEYS.intersection(meta)
    if clobbered:
        raise CodecError(
            f"metadata may not override reserved envelope keys: "
            f"{sorted(clobbered)}"
        )
    envelope.update(meta)


def envelope_meta(envelope: Dict[str, Any]) -> Dict[str, Any]:
    """The free-form metadata of a decoded envelope (empty for v1)."""
    return {key: value for key, value in envelope.items()
            if key not in RESERVED_ENVELOPE_KEYS}


def encode_request(method: str, payload: Any, request_id: int = 0,
                   version: int = WIRE_VERSION,
                   meta: Optional[Dict[str, Any]] = None) -> bytes:
    """A versioned request envelope carrying one protocol message.

    ``version`` selects the emitted wire revision (a v2 peer talks
    down to a v1 server by emitting 1; a negotiated connection emits
    :data:`WIRE_V3` binary frames); ``meta`` attaches v2+ routing
    metadata (e.g. ``{"shard": "shard-2"}`` or a pipelining
    ``{CORRELATION_KEY: n}``) that decoders ignore unless they route
    on it.
    """
    if version == WIRE_V3:
        return _encode_v3("request", request_id, meta,
                          method=method, body=payload)
    envelope: Dict[str, Any] = {
        "v": _check_version(version),
        "kind": "request",
        "id": request_id,
        "method": method,
        "body": encode_payload(payload),
    }
    _merge_meta(envelope, meta, version)
    return json.dumps(envelope, separators=(",", ":")).encode("utf-8")


def decode_request(data: bytes) -> Tuple[str, Any, int]:
    """Returns ``(method, payload, request_id)``."""
    method, payload, request_id, _meta = decode_request_envelope(data)
    return method, payload, request_id


def decode_request_envelope(data: bytes) -> Tuple[str, Any, int, Dict[str, Any]]:
    """Returns ``(method, payload, request_id, meta)``.

    ``meta`` is the envelope's free-form metadata — empty for v1 peers,
    which is exactly how a pipelining server knows to answer a client in
    strict request order.  Accepts both formats: binary v3 frames are
    sniffed by their leading magic byte, everything else is parsed as a
    JSON envelope.
    """
    if is_binary_frame(data):
        kind, request_id, meta, method, body, _error = _decode_v3(data)
        if kind != "request":
            raise CodecError(f"expected a request, got {kind!r}")
        return method, body, request_id, meta
    envelope = _load_envelope(data, expected_kind="request")
    method = envelope.get("method")
    if not isinstance(method, str):
        raise CodecError("request envelope missing method")
    return (method, decode_payload(envelope.get("body")),
            int(envelope.get("id", 0)), envelope_meta(envelope))


def encode_response(payload: Any, request_id: int = 0,
                    version: int = WIRE_VERSION,
                    meta: Optional[Dict[str, Any]] = None) -> bytes:
    if version == WIRE_V3:
        return _encode_v3("response", request_id, meta, body=payload)
    envelope: Dict[str, Any] = {
        "v": _check_version(version),
        "kind": "response",
        "id": request_id,
        "body": encode_payload(payload),
    }
    _merge_meta(envelope, meta, version)
    return json.dumps(envelope, separators=(",", ":")).encode("utf-8")


def encode_error(message: str, request_id: int = 0,
                 version: int = WIRE_VERSION,
                 meta: Optional[Dict[str, Any]] = None) -> bytes:
    if version == WIRE_V3:
        return _encode_v3("error", request_id, meta, error=message)
    envelope: Dict[str, Any] = {
        "v": _check_version(version),
        "kind": "error",
        "id": request_id,
        "error": message,
    }
    _merge_meta(envelope, meta, version)
    return json.dumps(envelope, separators=(",", ":")).encode("utf-8")


class WireReply(NamedTuple):
    """A decoded response/error envelope, metadata included.

    Pipelining clients need the *routing* fields (``request_id``,
    ``meta``'s correlation id) before they know which caller an error
    belongs to, so this form defers raising; :meth:`deliver` converts to
    the classic payload-or-raise contract in the right caller.
    """

    kind: str  # "response" | "error"
    payload: Any  # decoded body (None for errors)
    error: Optional[str]  # server-side error text (None for responses)
    request_id: int
    meta: Dict[str, Any]

    def deliver(self) -> Any:
        if self.kind == "error":
            raise RemoteCallError(self.error or "unspecified remote error")
        return self.payload


def decode_reply(data: bytes) -> WireReply:
    """Decode a response **or** error envelope without raising on errors.

    Sniffs the format: binary v3 frames and JSON envelopes both decode
    to the same :class:`WireReply`.
    """
    if is_binary_frame(data):
        kind, request_id, meta, _method, body, error = _decode_v3(data)
        if kind == "error":
            return WireReply(kind="error", payload=None,
                             error=error or "unspecified remote error",
                             request_id=request_id, meta=meta)
        if kind != "response":
            raise CodecError(f"expected a response, got {kind!r}")
        return WireReply(kind="response", payload=body, error=None,
                         request_id=request_id, meta=meta)
    envelope = _load_envelope(data)
    kind = envelope["kind"]
    if kind == "error":
        return WireReply(
            kind="error", payload=None,
            error=envelope.get("error", "unspecified remote error"),
            request_id=int(envelope.get("id", 0)),
            meta=envelope_meta(envelope),
        )
    if kind != "response":
        raise CodecError(f"expected a response, got {kind!r}")
    return WireReply(
        kind="response", payload=decode_payload(envelope.get("body")),
        error=None, request_id=int(envelope.get("id", 0)),
        meta=envelope_meta(envelope),
    )


def decode_response(data: bytes) -> Any:
    """Returns the response payload; raises :class:`RemoteCallError` for
    error envelopes (the server-side exception, stringified)."""
    return decode_reply(data).deliver()


def _load_envelope(data: bytes, expected_kind: str = "") -> Dict[str, Any]:
    try:
        envelope = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"undecodable envelope: {exc}") from exc
    if not isinstance(envelope, dict):
        raise CodecError("envelope must be a JSON object")
    version = envelope.get("v")
    if version not in JSON_WIRE_VERSIONS:
        # Bump-tolerant decoding: every still-supported JSON revision is
        # accepted (v1 envelopes are a strict subset of v2), so peers
        # upgrade independently; anything else — including a JSON
        # envelope claiming the binary-only v3 — is rejected up front.
        raise CodecError(
            f"wire version mismatch: got {version!r}, "
            f"speak {JSON_WIRE_VERSIONS} in JSON envelopes "
            f"(v{WIRE_V3} is binary-framed)"
        )
    kind = envelope.get("kind")
    if kind not in ("request", "response", "error"):
        raise CodecError(f"unknown envelope kind {kind!r}")
    if expected_kind and kind != expected_kind:
        raise CodecError(f"expected a {expected_kind}, got {kind!r}")
    return envelope


# ----------------------------------------------------------------------
# Wire v3: struct-packed binary envelopes with field-table payloads
# ----------------------------------------------------------------------
#: First byte of every v3 frame.  JSON envelopes always start with
#: ``{`` (0x7B), so one byte disambiguates the formats on a shared port.
V3_MAGIC = 0xB3

#: Fixed envelope prefix: magic byte + CRC-32 of everything after it.
#: The CRC is what turns "corrupt frame" into a typed :class:`CodecError`
#: instead of a silently mis-parsed value — any single flipped byte or
#: truncated tail fails the checksum before field decoding even starts.
_V3_PREFIX = struct.Struct(">BI")

#: Envelope body prefix inside the CRC region: kind code + request id.
_V3_BODY = struct.Struct(">BQ")

_V3_KIND_CODES = {"request": 0, "response": 1, "error": 2}
_V3_KIND_NAMES = {code: kind for kind, code in _V3_KIND_CODES.items()}

# Value tags for the recursive binary payload encoding.
_T_NONE, _T_FALSE, _T_TRUE = 0x00, 0x01, 0x02
_T_INT, _T_FLOAT, _T_STR, _T_BYTES = 0x03, 0x04, 0x05, 0x06
_T_LIST, _T_TUPLE, _T_MAP = 0x07, 0x08, 0x09
_T_ENUM, _T_MSG, _T_MSG_WIRE = 0x0A, 0x0B, 0x0C

_U8 = struct.Struct(">B")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_F64 = struct.Struct(">d")

#: Message name -> ordered field names, for dataclass messages.  The
#: field table is the v3 answer to JSON's repeated key strings: both
#: sides derive the same column order from the dataclass definition, so
#: only *values* travel.  Non-dataclass messages (none today, but the
#: registry is open) fall back to shipping their ``to_wire()`` dict.
_FIELD_TABLES: Dict[str, Tuple[str, ...]] = {}


def _field_table(cls) -> Optional[Tuple[str, ...]]:
    table = _FIELD_TABLES.get(cls.__name__)
    if table is None and dataclasses.is_dataclass(cls):
        table = tuple(f.name for f in dataclasses.fields(cls))
        _FIELD_TABLES[cls.__name__] = table
    return table


def _write_str(buf: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    buf += _U32.pack(len(raw))
    buf += raw


def _write_value(buf: bytearray, obj: Any) -> None:
    if obj is None:
        buf.append(_T_NONE)
    elif obj is True:
        buf.append(_T_TRUE)
    elif obj is False:
        buf.append(_T_FALSE)
    elif isinstance(obj, int) and not isinstance(obj, bool):
        length = (obj.bit_length() + 8) // 8 or 1
        if length > 0xFFFF:
            raise CodecError(f"integer of {length} bytes is not wire-encodable")
        buf.append(_T_INT)
        buf += _U16.pack(length)
        buf += obj.to_bytes(length, "big", signed=True)
    elif isinstance(obj, float):
        buf.append(_T_FLOAT)
        buf += _F64.pack(obj)
    elif isinstance(obj, str):
        buf.append(_T_STR)
        _write_str(buf, obj)
    elif isinstance(obj, bytes):
        buf.append(_T_BYTES)
        buf += _U32.pack(len(obj))
        buf += obj
    elif isinstance(obj, (list, tuple)):
        buf.append(_T_TUPLE if isinstance(obj, tuple) else _T_LIST)
        buf += _U32.pack(len(obj))
        for item in obj:
            _write_value(buf, item)
    elif isinstance(obj, dict):
        buf.append(_T_MAP)
        buf += _U32.pack(len(obj))
        for key, value in obj.items():
            _write_value(buf, key)
            _write_value(buf, value)
    elif isinstance(obj, enum.Enum):
        name = type(obj).__name__
        if name not in ENUM_TYPES:
            raise CodecError(f"enum {name} is not wire-encodable")
        buf.append(_T_ENUM)
        _write_str(buf, name)
        _write_value(buf, obj.value)
    else:
        name = type(obj).__name__
        if name not in MESSAGE_TYPES or not hasattr(obj, "to_wire"):
            raise CodecError(f"object of type {name} is not wire-encodable")
        table = _field_table(type(obj))
        if table is not None:
            buf.append(_T_MSG)
            _write_str(buf, name)
            buf += _U8.pack(len(table))
            for field_name in table:
                _write_value(buf, getattr(obj, field_name))
        else:
            buf.append(_T_MSG_WIRE)
            _write_str(buf, name)
            _write_value(buf, obj.to_wire())


class _Reader:
    """Bounds-checked cursor over a v3 envelope body."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, count: int) -> bytes:
        end = self.pos + count
        if count < 0 or end > len(self.data):
            raise CodecError(
                f"truncated v3 frame: wanted {count} bytes at offset "
                f"{self.pos}, have {len(self.data) - self.pos}"
            )
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def read_str(self) -> str:
        (length,) = _U32.unpack(self.take(_U32.size))
        try:
            return self.take(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"undecodable v3 string: {exc}") from exc

    def read_value(self, depth: int = 0) -> Any:
        if depth > 64:
            raise CodecError("v3 payload nests too deeply")
        (tag,) = self.take(1)
        if tag == _T_NONE:
            return None
        if tag == _T_TRUE:
            return True
        if tag == _T_FALSE:
            return False
        if tag == _T_INT:
            (length,) = _U16.unpack(self.take(_U16.size))
            return int.from_bytes(self.take(length), "big", signed=True)
        if tag == _T_FLOAT:
            (value,) = _F64.unpack(self.take(_F64.size))
            return value
        if tag == _T_STR:
            return self.read_str()
        if tag == _T_BYTES:
            (length,) = _U32.unpack(self.take(_U32.size))
            return self.take(length)
        if tag in (_T_LIST, _T_TUPLE):
            (count,) = _U32.unpack(self.take(_U32.size))
            items = [self.read_value(depth + 1) for _ in range(count)]
            return tuple(items) if tag == _T_TUPLE else items
        if tag == _T_MAP:
            (count,) = _U32.unpack(self.take(_U32.size))
            return {self.read_value(depth + 1): self.read_value(depth + 1)
                    for _ in range(count)}
        if tag == _T_ENUM:
            name = self.read_str()
            cls = ENUM_TYPES.get(name)
            value = self.read_value(depth + 1)
            if cls is None:
                raise CodecError(f"unknown enum type {name!r}")
            try:
                return cls(value)
            except ValueError as exc:
                raise CodecError(f"bad {name} value {value!r}") from exc
        if tag == _T_MSG:
            name = self.read_str()
            cls = MESSAGE_TYPES.get(name)
            if cls is None:
                raise CodecError(f"unknown message type {name!r}")
            table = _field_table(cls)
            (count,) = _U8.unpack(self.take(_U8.size))
            # A *shorter* table than ours means an older peer whose
            # dataclass predates fields we appended (telemetry grows
            # this way): accept the prefix and let dataclass defaults
            # fill the tail — a missing non-defaulted field still fails
            # construction below.  A longer table would silently drop
            # the peer's trailing data, so it stays fatal.
            if table is None or count > len(table):
                raise CodecError(
                    f"field table mismatch for {name}: frame has {count} "
                    f"fields, this side expects "
                    f"{len(table) if table else 'a wire dict'}"
                )
            values = [self.read_value(depth + 1) for _ in range(count)]
            try:
                return cls(**dict(zip(table, values)))
            except (TypeError, ValueError) as exc:
                raise CodecError(f"bad {name} fields: {exc}") from exc
        if tag == _T_MSG_WIRE:
            name = self.read_str()
            cls = MESSAGE_TYPES.get(name)
            if cls is None:
                raise CodecError(f"unknown message type {name!r}")
            fields = self.read_value(depth + 1)
            if not isinstance(fields, dict):
                raise CodecError(f"malformed wire dict for {name}")
            try:
                return cls.from_wire(fields)
            except (TypeError, ValueError, KeyError) as exc:
                raise CodecError(f"bad {name} fields: {exc}") from exc
        raise CodecError(f"unknown v3 value tag {tag:#x}")


def encode_value(obj: Any) -> bytes:
    """Serialize one value with the v3 binary value codec.

    The public face of the recursive tagged encoding v3 envelopes use
    internally: registered messages, enums, containers, and scalars all
    round-trip.  Higher layers (e.g. the WAL-shipped replication
    bootstrap) use it to frame record streams without inventing a
    second binary format.
    """
    buf = bytearray()
    _write_value(buf, obj)
    return bytes(buf)


def decode_value(data: bytes) -> Any:
    """Inverse of :func:`encode_value`; rejects trailing bytes."""
    reader = _Reader(data)
    value = reader.read_value()
    if reader.pos != len(data):
        raise CodecError(
            f"value has {len(data) - reader.pos} trailing bytes"
        )
    return value


def _encode_v3(kind: str, request_id: int, meta: Optional[Dict[str, Any]],
               method: Optional[str] = None, body: Any = None,
               error: Optional[str] = None) -> bytes:
    if meta:
        clobbered = RESERVED_ENVELOPE_KEYS.intersection(meta)
        if clobbered:
            raise CodecError(
                f"metadata may not override reserved envelope keys: "
                f"{sorted(clobbered)}"
            )
    buf = bytearray(_V3_BODY.size)
    try:
        _V3_BODY.pack_into(buf, 0, _V3_KIND_CODES[kind], request_id)
    except struct.error as exc:
        raise CodecError(f"bad v3 request id {request_id!r}: {exc}") from exc
    _write_value(buf, dict(meta) if meta else {})
    if kind == "request":
        _write_value(buf, method)
        _write_value(buf, body)
    elif kind == "response":
        _write_value(buf, body)
    else:
        _write_value(buf, error)
    return _V3_PREFIX.pack(V3_MAGIC, zlib.crc32(buf) & 0xFFFFFFFF) + buf


def _decode_v3(data: bytes) -> Tuple[str, int, Dict[str, Any],
                                     Optional[str], Any, Optional[str]]:
    """Returns ``(kind, request_id, meta, method, body, error)``."""
    if len(data) < _V3_PREFIX.size + _V3_BODY.size:
        raise CodecError(f"truncated v3 frame: {len(data)} bytes")
    magic, crc = _V3_PREFIX.unpack_from(data, 0)
    region = data[_V3_PREFIX.size:]
    if zlib.crc32(region) & 0xFFFFFFFF != crc:
        raise CodecError("v3 frame checksum mismatch (corrupt or truncated)")
    kind_code, request_id = _V3_BODY.unpack_from(region, 0)
    kind = _V3_KIND_NAMES.get(kind_code)
    if kind is None:
        raise CodecError(f"unknown v3 envelope kind {kind_code:#x}")
    reader = _Reader(region)
    reader.pos = _V3_BODY.size
    meta = reader.read_value()
    if not isinstance(meta, dict):
        raise CodecError("v3 envelope metadata must be a map")
    method = body = error = None
    if kind == "request":
        method = reader.read_value()
        if not isinstance(method, str):
            raise CodecError("request envelope missing method")
        body = reader.read_value()
    elif kind == "response":
        body = reader.read_value()
    else:
        error = reader.read_value()
        if not isinstance(error, str):
            raise CodecError("v3 error envelope missing message")
    if reader.pos != len(region):
        raise CodecError(
            f"v3 frame has {len(region) - reader.pos} trailing bytes"
        )
    return kind, request_id, meta, method, body, error


def is_binary_frame(data: bytes) -> bool:
    """True when ``data`` is a v3 binary envelope (sniffed by magic)."""
    return bool(data) and data[0] == V3_MAGIC


def wire_version_of(data: bytes) -> int:
    """The wire version a serialized envelope speaks (3 for binary)."""
    if is_binary_frame(data):
        return WIRE_V3
    return int(_load_envelope(data).get("v", 0))


# ----------------------------------------------------------------------
# Negotiation
# ----------------------------------------------------------------------
def hello_payload(preferred: int = WIRE_V3) -> Dict[str, Any]:
    """The client side of the first-exchange version negotiation."""
    supported = [v for v in SUPPORTED_WIRE_VERSIONS if v <= preferred]
    if not supported:
        raise CodecError(f"cannot negotiate from wire version {preferred!r}")
    return {"supported": supported, "preferred": preferred}


def choose_wire_version(offered, ceiling: Optional[int] = None) -> int:
    """Server-side pick: the highest mutually supported version.

    ``ceiling`` caps the server's willingness (``--wire 2`` keeps a
    fleet on JSON during a staged rollout); an empty intersection is a
    :class:`CodecError`, answered to the client as an error envelope.
    """
    try:
        common = [int(v) for v in offered
                  if int(v) in SUPPORTED_WIRE_VERSIONS
                  and (ceiling is None or int(v) <= ceiling)]
    except (TypeError, ValueError) as exc:
        raise CodecError(f"malformed hello offer {offered!r}") from exc
    if not common:
        raise CodecError(
            f"no common wire version: offered {offered!r}, "
            f"speak {SUPPORTED_WIRE_VERSIONS}"
            + (f" capped at {ceiling}" if ceiling is not None else "")
        )
    return max(common)


# ----------------------------------------------------------------------
# Framing for stream transports
# ----------------------------------------------------------------------
def frame(data: bytes) -> bytes:
    """Length-prefix a serialized envelope for a byte stream."""
    if len(data) > MAX_FRAME_BYTES:
        raise CodecError(f"frame of {len(data)} bytes exceeds {MAX_FRAME_BYTES}")
    return FRAME_HEADER.pack(len(data)) + data


def frame_length(header: bytes) -> int:
    """Parse a frame header; validates the advertised length."""
    (length,) = FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise CodecError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    return length
