"""Versioned wire codec for the three-tier lease protocol.

Everything SL-Local and SL-Remote say to each other can be flattened to
bytes and rebuilt on the far side: each protocol dataclass implements
``to_wire``/``from_wire`` (a JSON-ready field dict), and this module
wraps those payloads in versioned envelopes plus length-prefixed frames
for stream transports.

The codec is deliberately strict:

* every envelope carries ``WIRE_VERSION``; a peer speaking a different
  version is rejected up front instead of mis-parsing fields;
* only registered message types decode (no pickle, no arbitrary code) —
  the untrusted network may corrupt a lease request but cannot smuggle
  objects into the enclave simulation;
* byte strings travel as hex, so a frame is printable JSON end to end.
"""

from __future__ import annotations

import enum
import json
import struct
from typing import Any, Dict, NamedTuple, Optional, Tuple

from repro.core.gcl import LeaseKind
from repro.core.protocol import (
    AttestRequest,
    AttestResponse,
    InitRequest,
    InitResponse,
    MigratingNotice,
    RenewRequest,
    RenewResponse,
    ShutdownNotice,
    Status,
)
from repro.core.tokens import ExecutionToken
from repro.crypto.sealing import SealedBlob
from repro.sgx.attestation import AttestationReport

#: Protocol revision; bumped whenever an envelope or field layout changes.
#: v2 (the sharding release) adds optional envelope metadata — e.g. a
#: ``shard`` routing hint — and, from v2 on, decoders tolerate unknown
#: envelope keys so the client and server can upgrade independently.
WIRE_VERSION = 2

#: Envelope versions this decoder still accepts.  v1 envelopes carry the
#: same required keys as v2, so a v2 peer interoperates with a v1 peer
#: in both directions as long as the v2 side *emits* v1 when talking
#: down (``encode_request(..., version=1)``).
SUPPORTED_WIRE_VERSIONS = (1, 2)

#: Envelope keys with fixed meaning; everything else in a v2 envelope is
#: free-form metadata (routing hints, correlation ids) that a peer may
#: ignore entirely — a v1 peer does, and still interoperates.
RESERVED_ENVELOPE_KEYS = frozenset({"v", "kind", "id", "method", "body", "error"})

#: Metadata key carrying a pipelining correlation id.  A client that
#: keeps several requests in flight on one connection tags each request
#: ``{CORRELATION_KEY: n}``; a pipelining-aware server echoes the tag on
#: the matching response, which may arrive out of order.  Peers that
#: ignore metadata (v1, or the threaded server answering in order)
#: degrade to strict-ordered mode: responses match requests by position.
CORRELATION_KEY = "corr"

#: Frame header for stream transports: 4-byte big-endian payload length.
FRAME_HEADER = struct.Struct(">I")

#: Refuse frames above this size (a corrupt length prefix must not make
#: the server allocate gigabytes).
MAX_FRAME_BYTES = 16 * 1024 * 1024


class CodecError(Exception):
    """Raised when a frame or payload cannot be (de)serialized."""


class RemoteCallError(Exception):
    """An error envelope from the far side of the wire."""


#: Message types allowed on the wire, keyed by their envelope tag.
MESSAGE_TYPES = {
    cls.__name__: cls
    for cls in (
        InitRequest,
        InitResponse,
        RenewRequest,
        RenewResponse,
        ShutdownNotice,
        MigratingNotice,
        AttestRequest,
        AttestResponse,
        ExecutionToken,
        SealedBlob,
        AttestationReport,
    )
}


def register_message_type(cls) -> None:
    """Allow an additional ``to_wire``/``from_wire`` message on the wire.

    Used by higher layers (e.g. :mod:`repro.net.replication`) that
    define fleet-internal message types without this module importing
    them — the registry stays explicit either way: only registered
    classes ever decode, and re-registering a different class under a
    taken name is rejected.
    """
    name = cls.__name__
    if not (hasattr(cls, "to_wire") and hasattr(cls, "from_wire")):
        raise CodecError(f"{name} lacks to_wire/from_wire")
    existing = MESSAGE_TYPES.get(name)
    if existing is not None and existing is not cls:
        raise CodecError(f"message type {name!r} already registered")
    MESSAGE_TYPES[name] = cls

#: Enum types allowed on the wire (encoded by value).
ENUM_TYPES = {cls.__name__: cls for cls in (Status, LeaseKind)}


# ----------------------------------------------------------------------
# Payload encoding: tagged, recursive, JSON-ready
# ----------------------------------------------------------------------
def encode_payload(obj: Any) -> Any:
    """Turn a protocol value into a JSON-serializable structure."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, bytes):
        return {"__kind__": "bytes", "hex": obj.hex()}
    if isinstance(obj, tuple):
        return {"__kind__": "tuple", "items": [encode_payload(x) for x in obj]}
    if isinstance(obj, list):
        return {"__kind__": "list", "items": [encode_payload(x) for x in obj]}
    if isinstance(obj, dict):
        return {
            "__kind__": "map",
            "items": [[encode_payload(k), encode_payload(v)] for k, v in obj.items()],
        }
    if isinstance(obj, enum.Enum):
        name = type(obj).__name__
        if name not in ENUM_TYPES:
            raise CodecError(f"enum {name} is not wire-encodable")
        return {"__kind__": "enum", "type": name, "value": obj.value}
    name = type(obj).__name__
    if name in MESSAGE_TYPES and hasattr(obj, "to_wire"):
        return {"__kind__": "msg", "type": name, "fields": obj.to_wire()}
    raise CodecError(f"object of type {name} is not wire-encodable")


def decode_payload(data: Any) -> Any:
    """Inverse of :func:`encode_payload`."""
    if data is None or isinstance(data, (bool, int, float, str)):
        return data
    if not isinstance(data, dict) or "__kind__" not in data:
        raise CodecError(f"malformed payload: {data!r}")
    kind = data["__kind__"]
    if kind == "bytes":
        return bytes.fromhex(data["hex"])
    if kind == "tuple":
        return tuple(decode_payload(x) for x in data["items"])
    if kind == "list":
        return [decode_payload(x) for x in data["items"]]
    if kind == "map":
        return {decode_payload(k): decode_payload(v) for k, v in data["items"]}
    if kind == "enum":
        cls = ENUM_TYPES.get(data["type"])
        if cls is None:
            raise CodecError(f"unknown enum type {data['type']!r}")
        return cls(data["value"])
    if kind == "msg":
        cls = MESSAGE_TYPES.get(data["type"])
        if cls is None:
            raise CodecError(f"unknown message type {data['type']!r}")
        return cls.from_wire(data["fields"])
    raise CodecError(f"unknown payload kind {kind!r}")


# ----------------------------------------------------------------------
# Envelopes
# ----------------------------------------------------------------------
def _check_version(version: int) -> int:
    if version not in SUPPORTED_WIRE_VERSIONS:
        raise CodecError(
            f"cannot emit wire version {version!r}; "
            f"supported: {SUPPORTED_WIRE_VERSIONS}"
        )
    return version


def _merge_meta(envelope: Dict[str, Any], meta: Optional[Dict[str, Any]],
                version: int) -> None:
    """Fold free-form metadata into a v2+ envelope (v1 cannot carry it)."""
    if not meta or version < 2:
        return
    clobbered = RESERVED_ENVELOPE_KEYS.intersection(meta)
    if clobbered:
        raise CodecError(
            f"metadata may not override reserved envelope keys: "
            f"{sorted(clobbered)}"
        )
    envelope.update(meta)


def envelope_meta(envelope: Dict[str, Any]) -> Dict[str, Any]:
    """The free-form metadata of a decoded envelope (empty for v1)."""
    return {key: value for key, value in envelope.items()
            if key not in RESERVED_ENVELOPE_KEYS}


def encode_request(method: str, payload: Any, request_id: int = 0,
                   version: int = WIRE_VERSION,
                   meta: Optional[Dict[str, Any]] = None) -> bytes:
    """A versioned request envelope carrying one protocol message.

    ``version`` selects the emitted envelope revision (a v2 peer talks
    down to a v1 server by emitting 1); ``meta`` attaches v2 routing
    metadata (e.g. ``{"shard": "shard-2"}`` or a pipelining
    ``{CORRELATION_KEY: n}``) that decoders ignore unless they route
    on it.
    """
    envelope: Dict[str, Any] = {
        "v": _check_version(version),
        "kind": "request",
        "id": request_id,
        "method": method,
        "body": encode_payload(payload),
    }
    _merge_meta(envelope, meta, version)
    return json.dumps(envelope, separators=(",", ":")).encode("utf-8")


def decode_request(data: bytes) -> Tuple[str, Any, int]:
    """Returns ``(method, payload, request_id)``."""
    method, payload, request_id, _meta = decode_request_envelope(data)
    return method, payload, request_id


def decode_request_envelope(data: bytes) -> Tuple[str, Any, int, Dict[str, Any]]:
    """Returns ``(method, payload, request_id, meta)``.

    ``meta`` is the envelope's free-form metadata — empty for v1 peers,
    which is exactly how a pipelining server knows to answer a client in
    strict request order.
    """
    envelope = _load_envelope(data, expected_kind="request")
    method = envelope.get("method")
    if not isinstance(method, str):
        raise CodecError("request envelope missing method")
    return (method, decode_payload(envelope.get("body")),
            int(envelope.get("id", 0)), envelope_meta(envelope))


def encode_response(payload: Any, request_id: int = 0,
                    version: int = WIRE_VERSION,
                    meta: Optional[Dict[str, Any]] = None) -> bytes:
    envelope: Dict[str, Any] = {
        "v": _check_version(version),
        "kind": "response",
        "id": request_id,
        "body": encode_payload(payload),
    }
    _merge_meta(envelope, meta, version)
    return json.dumps(envelope, separators=(",", ":")).encode("utf-8")


def encode_error(message: str, request_id: int = 0,
                 version: int = WIRE_VERSION,
                 meta: Optional[Dict[str, Any]] = None) -> bytes:
    envelope: Dict[str, Any] = {
        "v": _check_version(version),
        "kind": "error",
        "id": request_id,
        "error": message,
    }
    _merge_meta(envelope, meta, version)
    return json.dumps(envelope, separators=(",", ":")).encode("utf-8")


class WireReply(NamedTuple):
    """A decoded response/error envelope, metadata included.

    Pipelining clients need the *routing* fields (``request_id``,
    ``meta``'s correlation id) before they know which caller an error
    belongs to, so this form defers raising; :meth:`deliver` converts to
    the classic payload-or-raise contract in the right caller.
    """

    kind: str  # "response" | "error"
    payload: Any  # decoded body (None for errors)
    error: Optional[str]  # server-side error text (None for responses)
    request_id: int
    meta: Dict[str, Any]

    def deliver(self) -> Any:
        if self.kind == "error":
            raise RemoteCallError(self.error or "unspecified remote error")
        return self.payload


def decode_reply(data: bytes) -> WireReply:
    """Decode a response **or** error envelope without raising on errors."""
    envelope = _load_envelope(data)
    kind = envelope["kind"]
    if kind == "error":
        return WireReply(
            kind="error", payload=None,
            error=envelope.get("error", "unspecified remote error"),
            request_id=int(envelope.get("id", 0)),
            meta=envelope_meta(envelope),
        )
    if kind != "response":
        raise CodecError(f"expected a response, got {kind!r}")
    return WireReply(
        kind="response", payload=decode_payload(envelope.get("body")),
        error=None, request_id=int(envelope.get("id", 0)),
        meta=envelope_meta(envelope),
    )


def decode_response(data: bytes) -> Any:
    """Returns the response payload; raises :class:`RemoteCallError` for
    error envelopes (the server-side exception, stringified)."""
    return decode_reply(data).deliver()


def _load_envelope(data: bytes, expected_kind: str = "") -> Dict[str, Any]:
    try:
        envelope = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"undecodable envelope: {exc}") from exc
    if not isinstance(envelope, dict):
        raise CodecError("envelope must be a JSON object")
    version = envelope.get("v")
    if version not in SUPPORTED_WIRE_VERSIONS:
        # Bump-tolerant decoding: every still-supported revision is
        # accepted (v1 envelopes are a strict subset of v2), so peers
        # upgrade independently; anything else is rejected up front.
        raise CodecError(
            f"wire version mismatch: got {version!r}, "
            f"speak {SUPPORTED_WIRE_VERSIONS}"
        )
    kind = envelope.get("kind")
    if kind not in ("request", "response", "error"):
        raise CodecError(f"unknown envelope kind {kind!r}")
    if expected_kind and kind != expected_kind:
        raise CodecError(f"expected a {expected_kind}, got {kind!r}")
    return envelope


# ----------------------------------------------------------------------
# Framing for stream transports
# ----------------------------------------------------------------------
def frame(data: bytes) -> bytes:
    """Length-prefix a serialized envelope for a byte stream."""
    if len(data) > MAX_FRAME_BYTES:
        raise CodecError(f"frame of {len(data)} bytes exceeds {MAX_FRAME_BYTES}")
    return FRAME_HEADER.pack(len(data)) + data


def frame_length(header: bytes) -> int:
    """Parse a frame header; validates the advertised length."""
    (length,) = FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise CodecError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    return length
