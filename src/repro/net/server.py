"""A real socket server exposing SL-Remote to the network.

:class:`LeaseServer` binds a TCP port and serves the lease protocol —
length-prefixed JSON frames (:mod:`repro.net.codec`) — so an SL-Remote
process can field init/renew/shutdown traffic from SL-Local instances
on other machines.  This is the deployment shape the paper assumes (a
vendor server in front of a fleet); the in-process transports remain
the deterministic harness for experiments.

Concurrency model: one thread per connection, with handlers dispatched
*concurrently* — :class:`~repro.core.sl_remote.SlRemote` serializes per
license internally (its :class:`~repro.core.sl_remote.LicenseShardState`
locks), so renewals for different licenses proceed in parallel while
same-license renewals queue on that license's lock only.  The historical
whole-server serialization survives behind ``serialize_dispatch=True``
for baseline measurements (``benchmarks/test_server_load_tcp.py``).

Attestation and renewal costs are charged to a server-owned virtual
clock (a :class:`~repro.sim.clock.ThreadSafeClock`, since many
connection threads charge it) — over a real wire the *caller's* cost is
its actual socket wait, which the client-side
:class:`~repro.net.transport.TcpTransport` folds into its own clock as
RTTs.  The shared :class:`~repro.sgx.driver.SgxStats` counters default
to a :class:`~repro.sgx.driver.ThreadSafeSgxStats`: they stay
observability-only (a lost increment never affects protocol state), but
the benchmark reports read them, so concurrent dispatch must not
silently undercount.
"""

from __future__ import annotations

import select
import socket
import threading
from typing import List, Optional, Tuple

from repro.net import codec
from repro.net import stats as stats_module
from repro.net.stats import ServerStats
from repro.net.transport import HandlerTable, read_frame
from repro.sgx.driver import SgxStats, ThreadSafeSgxStats
from repro.sim.clock import Clock, ThreadSafeClock

#: Error-envelope text prefix for capacity shedding.  A server over its
#: ``max_connections`` cap answers a fresh connection with exactly one
#: error envelope built from this prefix and closes; clients see it as a
#: typed :class:`~repro.net.codec.RemoteCallError` (never retried — the
#: far side *answered*) and the envelope metadata carries
#: ``{"overloaded": true}`` for programmatic handling.
OVERLOAD_ERROR = "ServerOverloaded"


def overload_frame() -> bytes:
    """The one-frame brush-off sent to a connection over the cap."""
    return codec.frame(codec.encode_error(
        f"{OVERLOAD_ERROR}: connection shed, server at max_connections",
        0, meta={"overloaded": True},
    ))


class WireStats:
    """Codec/transport counters shared by both server IO backends.

    Everything the wire-format benchmark needs to report honestly:
    actual bytes and frames through the codec, how renewals coalesce
    into batches, and the wire version every connection negotiated (or
    was observed speaking).  All updates take one lock — these counters
    feed published numbers, so concurrent connections must not
    undercount them.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.bytes_decoded = 0
        self.bytes_encoded = 0
        self.frames_decoded = 0
        self.frames_encoded = 0
        self.batch_frames = 0
        self.batched_renewals = 0
        self.largest_batch = 0
        #: Frames that failed to decode (bad length prefix, checksum
        #: mismatch, garbage envelope).  Tampered traffic must be
        #: *observable*: every rejection is counted here in addition to
        #: the typed error envelope (or connection close) it earns.
        self.frames_rejected = 0
        #: wire version -> connections that settled on it.
        self.connections_by_wire: dict = {}

    def note_decoded(self, nbytes: int) -> None:
        with self._lock:
            self.bytes_decoded += nbytes
            self.frames_decoded += 1

    def note_encoded(self, nbytes: int) -> None:
        with self._lock:
            self.bytes_encoded += nbytes
            self.frames_encoded += 1

    def note_connection(self, version: int) -> None:
        with self._lock:
            self.connections_by_wire[version] = (
                self.connections_by_wire.get(version, 0) + 1
            )

    def note_batch(self, size: int) -> None:
        with self._lock:
            self.batch_frames += 1
            self.batched_renewals += size
            self.largest_batch = max(self.largest_batch, size)

    def note_rejected(self) -> None:
        with self._lock:
            self.frames_rejected += 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "bytes_decoded": self.bytes_decoded,
                "bytes_encoded": self.bytes_encoded,
                "frames_decoded": self.frames_decoded,
                "frames_encoded": self.frames_encoded,
                "batch_frames": self.batch_frames,
                "batched_renewals": self.batched_renewals,
                "largest_batch": self.largest_batch,
                "frames_rejected": self.frames_rejected,
                "connections_by_wire": {
                    str(version): count
                    for version, count in sorted(
                        self.connections_by_wire.items())
                },
            }


class ConnectionWire:
    """Per-connection negotiated wire state (one per serving loop)."""

    __slots__ = ("version", "recorded")

    def __init__(self) -> None:
        self.version: Optional[int] = None
        self.recorded = False

    def record(self, stats: WireStats, version: int) -> None:
        self.version = version
        if not self.recorded:
            self.recorded = True
            stats.note_connection(version)


def negotiate_hello(payload, ceiling: int, conn: ConnectionWire,
                    stats: WireStats) -> dict:
    """Answer a :data:`~repro.net.codec.HELLO_METHOD` request.

    Picks the highest mutually supported version (capped at the
    server's ``ceiling``), records it on the connection, and returns
    the response payload.  Shared by both server IO backends so the
    negotiation matrix cannot drift between them.
    """
    offered = payload.get("supported") if isinstance(payload, dict) else None
    if not isinstance(offered, (list, tuple)):
        raise codec.CodecError(f"malformed hello payload {payload!r}")
    chosen = codec.choose_wire_version(offered, ceiling=ceiling)
    conn.record(stats, chosen)
    return {"wire": chosen}


def attach_server_stats(handlers: HandlerTable, server, io_name: str) -> None:
    """Register the ``_server_stats`` introspection method on a server.

    Benchmarks and operators probe it over the wire to compare IO
    backends — most importantly ``resident_threads``, the number every
    idle connection inflates on the threaded server and the event-loop
    server keeps flat — and, since wire v3, the codec counters that
    price each renewal in actual bytes.  When the served remote
    replicates, the report carries the quorum control plane's health:
    per-peer ack lag, the current promotion epoch, the configured
    quorum, and the EXHAUSTED-response counter the adaptive-renewal
    loop watches for backpressure.
    """
    def _server_stats(_request, clock: Optional[Clock] = None,
                      stats: Optional[SgxStats] = None):
        return build_server_stats(server, io_name).to_wire()

    handlers.register("_server_stats", _server_stats)


def build_server_stats(server, io_name: str) -> ServerStats:
    """Assemble the typed :class:`~repro.net.stats.ServerStats` report.

    The sections come back from the served remote as the historical
    dict shapes (a plain remote's report, or ``{shard: report}`` for an
    in-process sharded fleet); they are lifted into the typed sections
    here, and ``to_wire`` reproduces the exact dicts old consumers
    expect.
    """
    wire_stats = getattr(server, "wire_stats", None)
    remote = getattr(server, "remote", None)
    exhausted = getattr(remote, "exhausted_served", None)
    renewal = None
    renewal_health = getattr(remote, "renewal_health", None)
    if callable(renewal_health):
        try:
            renewal = stats_module.sniff_renewal(renewal_health())
        except Exception:  # noqa: BLE001 - stats must never fail a probe
            pass
    replication = None
    health = getattr(server, "replication_health", None)
    if health is None:
        health = getattr(remote, "replication_health", None)
    if callable(health):
        try:
            replication = stats_module.sniff_replication(health())
        except Exception:  # noqa: BLE001 - stats must never fail a probe
            pass
    return ServerStats(
        io=io_name,
        requests_served=server.requests_served,
        errors_returned=server.errors_returned,
        connections_accepted=server.connections_accepted,
        connections_shed=server.connections_shed,
        resident_threads=threading.active_count(),
        wire=wire_stats.snapshot() if wire_stats is not None else None,
        exhausted_served=exhausted,
        renewal=renewal,
        replication=replication,
    )


class LeaseServer:
    """Serve one SL-Remote (or a sharded fleet of them) over TCP."""

    def __init__(self, remote, host: str = "127.0.0.1", port: int = 0,
                 clock: Optional[Clock] = None,
                 stats: Optional[SgxStats] = None,
                 accept_backlog: int = 128,
                 serialize_dispatch: bool = False,
                 max_connections: Optional[int] = None,
                 extra_handlers=None,
                 wire: int = codec.WIRE_V3) -> None:
        if max_connections is not None and max_connections < 1:
            raise ValueError("max_connections must be at least 1")
        if wire not in codec.SUPPORTED_WIRE_VERSIONS:
            raise ValueError(
                f"unknown wire version {wire!r}; "
                f"choose one of {codec.SUPPORTED_WIRE_VERSIONS}"
            )
        self.remote = remote
        self.handlers = HandlerTable(remote.protocol_handlers())
        #: Fleet-internal surfaces (replication, membership probes)
        #: mount alongside the lease protocol on the same port.
        for method, handler in (extra_handlers or {}).items():
            self.handlers.register(method, handler, override=True)
        self.host = host
        self.port = port
        self.clock = clock if clock is not None else ThreadSafeClock()
        self.stats = stats if stats is not None else ThreadSafeSgxStats()
        self.accept_backlog = accept_backlog
        #: Thread-per-connection stops scaling long before the license
        #: locks do; the cap sheds accepts beyond it with a typed error
        #: envelope instead of growing one OS thread per socket forever.
        self.max_connections = max_connections
        self.requests_served = 0
        self.errors_returned = 0
        self.connections_accepted = 0
        self.connections_shed = 0
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._workers: List[threading.Thread] = []
        self._workers_lock = threading.Lock()
        #: Legacy whole-server serialization (pre-sharding behavior);
        #: kept as an opt-in so benchmarks can measure the difference.
        self._dispatch_lock = threading.Lock() if serialize_dispatch else None
        self._counters_lock = threading.Lock()
        self._stopping = threading.Event()
        #: Highest wire version this server will negotiate up to
        #: (``wire=2`` keeps a staged rollout on JSON envelopes).
        self.wire = wire
        self.wire_stats = WireStats()
        attach_server_stats(self.handlers, self, io_name="threads")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> Tuple[str, int]:
        """Bind, listen, and serve in the background; returns (host, port)."""
        if self._listener is not None:
            raise RuntimeError("server already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(self.accept_backlog)
        self._listener = listener
        self.host, self.port = listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="lease-server-accept", daemon=True
        )
        self._accept_thread.start()
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    @property
    def live_workers(self) -> int:
        """Connection threads still running (reaped threads excluded)."""
        with self._workers_lock:
            return sum(1 for worker in self._workers if worker.is_alive())

    def stop(self) -> None:
        """Stop accepting, close the listener, and join worker threads."""
        self._stopping.set()
        if self._listener is not None:
            try:
                # shutdown() wakes the thread blocked in accept();
                # close() alone leaves it holding the listening socket
                # (and the port) until a connection happens to arrive.
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None
        with self._workers_lock:
            workers = list(self._workers)
        for worker in workers:
            worker.join(timeout=2.0)
        with self._workers_lock:
            self._workers.clear()

    def wait(self) -> None:
        """Block the calling thread until :meth:`stop` (CLI foreground)."""
        self._stopping.wait()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            listener = self._listener
            if listener is None:
                return
            try:
                connection, _peer = listener.accept()
            except OSError:
                return  # listener closed by stop()
            try:
                # Accepted sockets linger in FIN_WAIT after a stop();
                # without SO_REUSEADDR on them a restart on the same
                # port fails EADDRINUSE until the kernel times them out.
                connection.setsockopt(
                    socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
                )
            except OSError:
                pass
            if (self.max_connections is not None
                    and self.live_workers >= self.max_connections):
                # Accept storm beyond the cap: one typed error envelope,
                # then close — never an unbounded thread per socket.
                self.connections_shed += 1
                try:
                    connection.sendall(overload_frame())
                except OSError:
                    pass
                finally:
                    connection.close()
                continue
            self.connections_accepted += 1
            worker = threading.Thread(
                target=self._serve_connection,
                args=(connection,),
                name=f"lease-server-conn-{self.connections_accepted}",
                daemon=True,
            )
            with self._workers_lock:
                # Reap finished connection threads before tracking a new
                # one: the list stays proportional to *live* connections
                # instead of growing one entry per connection ever made.
                self._workers = [w for w in self._workers if w.is_alive()]
                self._workers.append(worker)
            worker.start()

    def _serve_connection(self, connection: socket.socket) -> None:
        # poll(), not select(): select is capped at fd numbers < 1024,
        # and a server holding a thousand idle connections hands out
        # descriptors well past that.
        poller = select.poll()
        poller.register(connection, select.POLLIN)
        conn_wire = ConnectionWire()
        with connection:
            while not self._stopping.is_set():
                # Poll before the blocking frame read so an idle
                # connection re-checks the shutdown flag twice a second
                # without ever timing out mid-frame (which would lose
                # stream sync).
                if not poller.poll(500):
                    continue
                try:
                    data = read_frame(connection)
                except (ConnectionError, OSError):
                    return  # peer gone
                except codec.CodecError:
                    # A length prefix past MAX_FRAME_BYTES: stream sync
                    # is unrecoverable so the connection must die, but
                    # the tampered frame is counted first — silent
                    # closes would make wire tampering unobservable.
                    self.wire_stats.note_rejected()
                    return
                self.wire_stats.note_decoded(
                    len(data) + codec.FRAME_HEADER.size
                )
                reply = self._handle_frame(data, conn_wire)
                framed = codec.frame(reply)
                self.wire_stats.note_encoded(len(framed))
                try:
                    connection.sendall(framed)
                except OSError:
                    return

    def _handle_frame(self, data: bytes,
                      conn_wire: Optional[ConnectionWire] = None) -> bytes:
        if conn_wire is None:
            conn_wire = ConnectionWire()
        # Replies speak whatever format the request arrived in: binary
        # requests get binary replies, JSON requests get JSON replies —
        # the negotiated per-connection version tells the *client* what
        # it may send, the frame itself tells us what to answer with.
        reply_version = (codec.WIRE_V3 if codec.is_binary_frame(data)
                         else codec.WIRE_VERSION)
        request_id = 0
        try:
            method, payload, request_id, _meta = \
                codec.decode_request_envelope(data)
            if method == codec.HELLO_METHOD:
                response = negotiate_hello(payload, self.wire, conn_wire,
                                           self.wire_stats)
            else:
                if not conn_wire.recorded:
                    # First lease frame from a peer that skipped
                    # negotiation: record the version it is observed
                    # speaking.
                    conn_wire.record(self.wire_stats,
                                     codec.wire_version_of(data))
                if method == "renew_batch" \
                        and hasattr(payload, "requests"):
                    self.wire_stats.note_batch(len(payload.requests))
                if self._dispatch_lock is not None:
                    with self._dispatch_lock:
                        response = self.handlers.dispatch(
                            method, payload, clock=self.clock, stats=self.stats
                        )
                else:
                    response = self.handlers.dispatch(
                        method, payload, clock=self.clock, stats=self.stats
                    )
        except codec.CodecError as exc:
            # The frame arrived intact (framing held) but its payload
            # would not decode: checksum mismatch, garbage envelope —
            # tampering evidence, answered with a typed error and
            # counted so red-team audits can match every tampered
            # frame to a rejection.
            self.wire_stats.note_rejected()
            with self._counters_lock:
                self.errors_returned += 1
            return codec.encode_error(f"{type(exc).__name__}: {exc}",
                                      request_id, version=reply_version)
        except Exception as exc:  # noqa: BLE001 - every fault becomes a wire error
            with self._counters_lock:
                self.errors_returned += 1
            return codec.encode_error(f"{type(exc).__name__}: {exc}",
                                      request_id, version=reply_version)
        with self._counters_lock:
            self.requests_served += 1
        return codec.encode_response(response, request_id,
                                     version=reply_version)
