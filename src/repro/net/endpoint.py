"""One way to reach an SL-Remote: URL endpoints and ``connect()``.

Four generations of connect functions grew four copies of the same
retry/reconnect/backoff knobs (``connect_remote``, ``connect_tcp``,
``connect_async_tcp``, ``connect_sharded_tcp``).  This module replaces
the zoo with a single factory taking URL-style endpoints::

    connect("sl://127.0.0.1:4870")                      # threaded TCP
    connect("sl+async://127.0.0.1:4870")                # pipelining TCP
    connect("sl+sharded://h1:4870,h2:4871?io=async")    # routed fleet
    connect("sl+sharded://h1:4870,h2:4871?replicas=1")  # + failover
    connect("sl+inproc://", remote=remote, link=link)   # loopback
    connect("sl+serialized://", remote=remote, link=link)

and one :class:`EndpointConfig` dataclass carrying every transport knob
exactly once — the validation that used to live in three places
(``rpc.py``, ``transport.py``, ``aio.py``) now lives in its
``__post_init__`` and nowhere else.

Precedence: keyword overrides are applied over the base config, then
URL query parameters over both — what is written in the endpoint string
is the most explicit statement of intent.  The legacy ``connect_*``
functions survive as thin deprecated wrappers over this factory and
produce byte-identical protocol outcomes (the equivalence suite in
``tests/net/test_endpoint.py`` holds them to that).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

#: Endpoint schemes understood by :func:`connect`, mapped to the
#: transport family they select.
ENDPOINT_SCHEMES = {
    "sl": "tcp",
    "sl+async": "async-tcp",
    "sl+sharded": "shard-router",
    "sl+inproc": "in-process",
    "sl+serialized": "serialized",
}

#: Schemes that dispatch in-process (no network authority in the URL).
_LOOPBACK_SCHEMES = ("sl+inproc", "sl+serialized")


@dataclass(frozen=True)
class EndpointConfig:
    """Every client-side transport knob, validated in one place.

    ``timeout_seconds``/``max_attempts``/``backoff_seconds`` govern the
    per-call retry budget; ``reconnect_attempts``/
    ``reconnect_backoff_seconds`` the separate dial budget;
    ``io``/``ring_replicas`` the sharded fleet shape;
    ``migrate_retries`` bounds how many :class:`~repro.core.protocol.
    MigratingNotice` retry-after waits a router absorbs before raising
    :class:`~repro.net.errors.Migrating`; ``replicas > 0`` declares the
    fleet replicated, which arms the router's dial-failure failover.
    ``quorum`` is the fleet's write-quorum expectation, carried so
    clients and tooling can reason about it; servers enforce it.
    ``data_dir`` makes a *loopback* endpoint's remote durable (recover
    on connect, journal from then on); socket schemes reject it — the
    server process owns its own ``--data-dir``.

    ``wire`` is the *preferred* wire version: socket transports propose
    it during the first exchange on each connection and speak whatever
    the server picks (``wire=2`` pins a client to JSON envelopes).
    ``batch_window > 0`` turns on renewal coalescing: concurrent
    ``renew`` calls that land on one transport within the window travel
    as a single ``BatchRequest`` frame.
    """

    timeout_seconds: float = 5.0
    max_attempts: int = 5
    backoff_seconds: float = 0.05
    reconnect_attempts: int = 4
    reconnect_backoff_seconds: float = 0.05
    io: str = "threads"
    ring_replicas: int = 64
    migrate_retries: int = 40
    replicas: int = 0
    quorum: int = 0
    data_dir: Optional[str] = None
    wire: int = 3
    batch_window: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.reconnect_attempts < 1:
            raise ValueError("reconnect_attempts must be at least 1")
        if self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive")
        if self.backoff_seconds < 0 or self.reconnect_backoff_seconds < 0:
            raise ValueError("backoff seconds must be non-negative")
        if self.io not in ("threads", "async"):
            raise ValueError(
                f"unknown io backend {self.io!r}; choose 'threads' or 'async'"
            )
        if self.ring_replicas < 1:
            raise ValueError("ring_replicas must be >= 1")
        if self.migrate_retries < 0:
            raise ValueError("migrate_retries must be >= 0")
        if self.replicas < 0:
            raise ValueError("replicas must be >= 0")
        if self.quorum < 0:
            raise ValueError("quorum must be >= 0")
        if self.wire not in (1, 2, 3):
            raise ValueError(
                f"unknown wire version {self.wire!r}; choose 1, 2, or 3"
            )
        if self.batch_window < 0:
            raise ValueError("batch_window must be >= 0")

    def replace(self, **overrides) -> "EndpointConfig":
        """A copy with ``overrides`` applied (re-validated)."""
        return dataclasses.replace(self, **overrides)


#: Query-parameter name -> (config field, parser).  Everything a URL
#: can say about a connection is a config field; nothing else is.
_QUERY_FIELDS = {
    "timeout": ("timeout_seconds", float),
    "max_attempts": ("max_attempts", int),
    "backoff": ("backoff_seconds", float),
    "reconnect_attempts": ("reconnect_attempts", int),
    "reconnect_backoff": ("reconnect_backoff_seconds", float),
    "io": ("io", str),
    "ring_replicas": ("ring_replicas", int),
    "migrate_retries": ("migrate_retries", int),
    "replicas": ("replicas", int),
    "quorum": ("quorum", int),
    "data_dir": ("data_dir", str),
    "wire": ("wire", int),
    "batch_window": ("batch_window", float),
}


@dataclass(frozen=True)
class ParsedEndpoint:
    """The structured form of an endpoint URL."""

    scheme: str
    addresses: Tuple[Tuple[str, int], ...]
    shard_names: Optional[Tuple[str, ...]] = None
    params: Tuple[Tuple[str, str], ...] = ()

    def apply(self, config: EndpointConfig) -> EndpointConfig:
        """``config`` with this URL's query parameters folded in."""
        overrides = {}
        for key, value in self.params:
            field, parse = _QUERY_FIELDS[key]
            try:
                overrides[field] = parse(value)
            except ValueError:
                raise ValueError(
                    f"endpoint parameter {key}={value!r} is not a valid "
                    f"{parse.__name__}"
                ) from None
        return config.replace(**overrides) if overrides else config


def parse_endpoint(endpoint: str) -> ParsedEndpoint:
    """Parse ``scheme://host:port[,host:port...][?k=v&...]``.

    Raises ``ValueError`` for unknown schemes, malformed or out-of-range
    ports, empty hosts, and unknown query parameters — an endpoint
    string either parses completely or not at all.
    """
    if "://" not in endpoint:
        raise ValueError(f"endpoint {endpoint!r} has no scheme:// prefix")
    scheme, rest = endpoint.split("://", 1)
    if scheme not in ENDPOINT_SCHEMES:
        raise ValueError(
            f"unknown endpoint scheme {scheme!r}; "
            f"known: {', '.join(sorted(ENDPOINT_SCHEMES))}"
        )
    query = ""
    if "?" in rest:
        rest, query = rest.split("?", 1)

    params: List[Tuple[str, str]] = []
    shard_names: Optional[Tuple[str, ...]] = None
    if query:
        for pair in query.split("&"):
            if not pair:
                continue
            if "=" not in pair:
                raise ValueError(f"endpoint parameter {pair!r} is not k=v")
            key, value = pair.split("=", 1)
            if key == "names":
                shard_names = tuple(n for n in value.split(",") if n)
                continue
            if key not in _QUERY_FIELDS:
                raise ValueError(
                    f"unknown endpoint parameter {key!r}; "
                    f"known: names, {', '.join(sorted(_QUERY_FIELDS))}"
                )
            params.append((key, value))

    addresses: List[Tuple[str, int]] = []
    if scheme in _LOOPBACK_SCHEMES:
        if rest not in ("", "local"):
            raise ValueError(
                f"{scheme}:// endpoints are in-process; "
                f"{rest!r} names no network authority"
            )
    else:
        if not rest:
            raise ValueError(f"endpoint {endpoint!r} names no host:port")
        for part in rest.split(","):
            if ":" not in part:
                raise ValueError(f"address {part!r} is not host:port")
            host, port_text = part.rsplit(":", 1)
            if not host:
                raise ValueError(f"address {part!r} has an empty host")
            try:
                port = int(port_text)
            except ValueError:
                raise ValueError(
                    f"address {part!r} has a non-numeric port"
                ) from None
            if not 1 <= port <= 65535:
                raise ValueError(f"port {port} out of range in {part!r}")
            addresses.append((host, port))
        if scheme != "sl+sharded" and len(addresses) != 1:
            raise ValueError(
                f"{scheme}:// takes exactly one host:port; use sl+sharded:// "
                f"for a fleet"
            )
    if shard_names is not None and len(shard_names) != len(addresses):
        raise ValueError("need exactly one shard name per address")
    return ParsedEndpoint(scheme=scheme, addresses=tuple(addresses),
                          shard_names=shard_names, params=tuple(params))


def format_endpoint(scheme: str,
                    addresses: Sequence[Tuple[str, int]] = (),
                    shard_names: Optional[Sequence[str]] = None,
                    params: Sequence[Tuple[str, str]] = ()) -> str:
    """The inverse of :func:`parse_endpoint` (round-trips exactly)."""
    if scheme not in ENDPOINT_SCHEMES:
        raise ValueError(f"unknown endpoint scheme {scheme!r}")
    authority = ",".join(f"{host}:{port}" for host, port in addresses)
    query_parts = []
    if shard_names is not None:
        query_parts.append(("names", ",".join(shard_names)))
    query_parts.extend(params)
    query = "&".join(f"{key}={value}" for key, value in query_parts)
    return f"{scheme}://{authority}" + (f"?{query}" if query else "")


def connect(endpoint: str,
            remote=None,
            link=None,
            conditions=None,
            config: Optional[EndpointConfig] = None,
            **overrides):
    """The one endpoint factory: URL in, :class:`RemoteEndpoint` out.

    ``remote``/``link`` are required by (and only by) the loopback
    schemes.  ``conditions`` attaches :class:`~repro.net.network.
    NetworkConditions` to socket transports for virtual-RTT accounting.
    ``config`` seeds the knobs; ``overrides`` are applied over it, and
    URL query parameters over both.
    """
    parsed = parse_endpoint(endpoint)
    base = config if config is not None else EndpointConfig()
    if overrides:
        base = base.replace(**overrides)
    cfg = parsed.apply(base)

    from repro.net.rpc import RemoteEndpoint, lease_handler_table
    from repro.net.transport import loopback_transport

    if parsed.scheme in _LOOPBACK_SCHEMES:
        if remote is None or link is None:
            raise ValueError(
                f"{parsed.scheme}:// endpoints dispatch in-process; pass "
                f"remote= and link="
            )
        persistences = []
        if cfg.data_dir:
            # Recover before the first dispatch: the handler table binds
            # the same remote, so replayed state is what clients see.
            from repro.storage.wal import attach_persistence

            persistences = attach_persistence(remote, cfg.data_dir)
        kind = ENDPOINT_SCHEMES[parsed.scheme]
        endpoint = RemoteEndpoint(
            loopback_transport(kind, lease_handler_table(remote), link)
        )
        endpoint.persistences = persistences
        return endpoint

    if remote is not None or link is not None:
        raise ValueError(
            f"{parsed.scheme}:// endpoints reach a server over sockets; "
            f"remote=/link= apply only to sl+inproc:// and sl+serialized://"
        )
    if cfg.data_dir:
        raise ValueError(
            f"data_dir applies only to loopback endpoints; start the "
            f"{parsed.scheme}:// server with --data-dir instead"
        )

    if cfg.io == "async":
        from repro.net.aio import AsyncTcpTransport as transport_cls
    else:
        from repro.net.transport import TcpTransport as transport_cls

    def dial(host: str, port: int):
        return transport_cls(host, port, conditions=conditions, config=cfg)

    if parsed.scheme == "sl":
        if cfg.io == "async":
            raise ValueError("sl:// is the threaded client; use sl+async://")
        return RemoteEndpoint(dial(*parsed.addresses[0]))
    if parsed.scheme == "sl+async":
        from repro.net.aio import AsyncTcpTransport

        return RemoteEndpoint(
            AsyncTcpTransport(*parsed.addresses[0], conditions=conditions,
                              config=cfg)
        )

    # sl+sharded://
    from repro.net.sharding import (
        HashRing,
        ShardRouterTransport,
        default_shard_names,
    )

    names = (list(parsed.shard_names) if parsed.shard_names is not None
             else default_shard_names(len(parsed.addresses)))
    transports = {
        name: dial(host, port)
        for name, (host, port) in zip(names, parsed.addresses)
    }
    ring = HashRing(names, replicas=cfg.ring_replicas)
    return RemoteEndpoint(ShardRouterTransport(
        transports, ring=ring, config=cfg, dial=dial,
        failover=cfg.replicas > 0,
    ))


def endpoint_for(addresses: Sequence[Tuple[str, int]],
                 io: str = "threads",
                 shard_names: Optional[Sequence[str]] = None,
                 params: Sequence[Tuple[str, str]] = ()) -> str:
    """The canonical URL for a set of server addresses.

    One address yields ``sl://`` (or ``sl+async://``); several yield a
    ``sl+sharded://`` fleet endpoint with ``io`` folded into the query.
    """
    addresses = list(addresses)
    if len(addresses) == 1 and shard_names is None:
        scheme = "sl+async" if io == "async" else "sl"
        return format_endpoint(scheme, addresses, params=params)
    extra = list(params)
    if io != "threads":
        extra.insert(0, ("io", io))
    return format_endpoint("sl+sharded", addresses, shard_names=shard_names,
                           params=extra)


def deprecated_connect_warning(old: str, example: str) -> None:
    """The shared DeprecationWarning for the legacy ``connect_*`` zoo.

    With ``REPRO_STRICT_ENDPOINTS=1`` in the environment the wrappers
    raise instead of warning, so CI can prove nothing in-repo still
    depends on them.
    """
    import os
    import warnings

    message = (
        f"{old} is deprecated; use repro.net.connect({example!r}-style "
        f"endpoints) instead"
    )
    if os.environ.get("REPRO_STRICT_ENDPOINTS") == "1":
        raise RuntimeError(message)
    warnings.warn(message, DeprecationWarning, stacklevel=3)
