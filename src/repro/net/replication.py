"""Shard replication: delta streams, anti-entropy snapshots, failover.

The sharded SL-Remote (PR 2/3) still loses a license's whole ledger
when its home shard dies — the exact availability gap the paper waves
at and T-Lease closes with replicated lease state.  This module makes
every shard stream its :class:`~repro.core.sl_remote.LicenseShardState`
changes to a **follower** shard so a dead primary costs clients a
bounded, *accounted* loss instead of a dead license:

* :class:`ReplicationSource` — taps the primary's observer hooks
  (:meth:`~repro.core.sl_remote.SlRemote.add_observer`), buffers
  per-license deltas in commit order, and a flusher thread ships them
  as :class:`ReplicaBatch` messages to each license's follower (the
  next *distinct* shard clockwise on the hash ring — exactly the shard
  the ring maps the license to once the primary is removed, so routing
  after failover needs no extra lookup table).  A periodic
  :class:`ShardSnapshot` pass (full export of every owned license +
  identity) is the anti-entropy backstop: a follower that missed
  deltas — downtime, dropped batch, a license issued mid-run — is
  reconciled wholesale.
* **Bounded replication lag** — the source tracks, per license, how
  many granted units the follower has *not* acknowledged, and
  SL-Remote's ``grant_headroom`` hook clamps new grants so that number
  never exceeds the license's lag budget.  That clamp is the whole
  no-double-mint argument: whatever the follower missed is at most the
  budget, so reserving that many units as lost at promotion covers
  every unseen grant (the paper's pessimistic rule, Algorithms 2–3,
  applied only to the lag window instead of to everything).

  The budget is **adaptive and denominated in grants**: Algorithm 1
  happily sizes one grant at half the pool, so a fixed unit budget is
  eaten by a single grant and every renewal until the next 20 ms flush
  ack sees spurious ``EXHAUSTED`` backpressure.  Instead each license's
  budget grows to ``lag_budget_grants × peak-observed-grant`` (capped
  at ``lag_budget_pool_fraction`` of the pool so a promotion can never
  pessimistically burn more than that fraction).  Soundness under
  growth: the clamp only ever uses the **shipped** budget — the last
  value the follower acknowledged receiving (rides on every batch and
  snapshot) — so a grant can never exceed what the follower will
  reserve if it is promoted a moment later.
* :class:`FollowerStore` — the follower-side replica: wire-form license
  records per source shard, mutated by deltas, replaced by snapshots.
* :class:`ReplicationManager` — one per shard process; wires source +
  store together and exposes the fleet-internal wire surface
  (``replicate`` / ``sync_snapshot`` / ``promote`` /
  ``replication_probe``) that :class:`~repro.net.server.LeaseServer`
  and :class:`~repro.net.aio.AsyncLeaseServer` mount via
  ``extra_handlers``.

Promotion is **idempotent and router-driven**: every client's
:class:`~repro.net.sharding.ShardRouter` that observes a dead shard
(:class:`~repro.net.errors.DialError`) broadcasts ``promote(source)``
to the surviving shards; each folds the replicas it holds for that
source into its own serving state exactly once and answers with what
it installed (and the pessimistic reserve applied), no matter how many
routers ask.

Identity (escrowed root keys, graceful flags, the SLID watermark) is
small and fleet-critical, so it is replicated to *every* peer — escrow
deltas broadcast, snapshots attached — which makes any promotion order
safe for the home role.  SLID admits need no replication at all: the
router already broadcasts ``admit`` fleet-wide at init time.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.net import codec
from repro.sim.clock import ThreadSafeClock

#: Default per-license replication-lag budget *floor*: the most granted
#: units that may ever be un-acknowledged by the follower before the
#: budget has adapted to the observed grant size, hence the least a
#: promotion may have to forfeit per license.
DEFAULT_LAG_BUDGET_UNITS = 64

#: How many peak-sized grants may be in flight un-acked before the
#: clamp bites (the grant-denominated budget).
DEFAULT_LAG_BUDGET_GRANTS = 4

#: Hard cap on the adaptive budget as a fraction of the license pool:
#: a promotion's pessimistic reserve can never burn more than this.
DEFAULT_LAG_BUDGET_POOL_FRACTION = 0.25


# ----------------------------------------------------------------------
# Wire messages (registered with the codec; WIRE_VERSION 2 payloads)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReplicaDelta:
    """One state change, in the emitting shard's commit order."""

    seq: int
    event: str  # grant | return | writeoff | issue | revoke | escrow | escrow_clear
    fields: Dict[str, Any]

    def to_wire(self) -> Dict[str, Any]:
        return {"seq": self.seq, "event": self.event, "fields": self.fields}

    @classmethod
    def from_wire(cls, fields: Dict[str, Any]) -> "ReplicaDelta":
        return cls(seq=fields["seq"], event=fields["event"],
                   fields=fields["fields"])


@dataclass(frozen=True)
class ReplicaBatch:
    """A run of deltas from ``source``, for one follower.

    ``budgets`` carries the source's *current* adaptive lag budget per
    license touched by the batch; the follower records the largest
    value it has seen — that (not the legacy flat ``budget``) is what
    its promotion reserve uses, and the source never clamps against a
    budget it has not successfully shipped.
    """

    source: str
    budget: int
    deltas: Tuple[ReplicaDelta, ...]
    budgets: Dict[str, int] = field(default_factory=dict)

    def to_wire(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "budget": self.budget,
            "deltas": [delta.to_wire() for delta in self.deltas],
            "budgets": dict(self.budgets),
        }

    @classmethod
    def from_wire(cls, fields: Dict[str, Any]) -> "ReplicaBatch":
        return cls(
            source=fields["source"],
            budget=fields["budget"],
            deltas=tuple(ReplicaDelta.from_wire(d)
                         for d in fields["deltas"]),
            budgets={str(lid): int(units)
                     for lid, units in fields.get("budgets", {}).items()},
        )


@dataclass(frozen=True)
class ShardSnapshot:
    """Full anti-entropy state of ``source``'s licenses for one follower.

    ``licenses`` maps license_id to the wire form produced by
    :meth:`~repro.core.sl_remote.SlRemote.export_license_state`;
    ``identity`` is :meth:`~repro.core.sl_remote.SlRemote.
    export_identity`'s payload.  Applying a snapshot *replaces* the
    follower's replica for those licenses — it supersedes any deltas in
    flight, which is what lets a source drop undeliverable deltas and
    heal with the next snapshot instead of buffering without bound.
    """

    source: str
    seq: int
    budget: int
    licenses: Dict[str, Any]
    identity: Dict[str, Any]
    budgets: Dict[str, int] = field(default_factory=dict)

    def to_wire(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "seq": self.seq,
            "budget": self.budget,
            "licenses": self.licenses,
            "identity": self.identity,
            "budgets": dict(self.budgets),
        }

    @classmethod
    def from_wire(cls, fields: Dict[str, Any]) -> "ShardSnapshot":
        return cls(
            source=fields["source"], seq=fields["seq"],
            budget=fields["budget"], licenses=fields["licenses"],
            identity=fields["identity"],
            budgets={str(lid): int(units)
                     for lid, units in fields.get("budgets", {}).items()},
        )


for _message in (ReplicaDelta, ReplicaBatch, ShardSnapshot):
    codec.register_message_type(_message)


def _wire_available(ledger: Dict[str, Any]) -> int:
    """``available`` computed from a wire-form ledger."""
    return (ledger["total_gcl"] - sum(ledger["outstanding"].values())
            - ledger["lost_units"])


def _slid_of(node_key: str) -> str:
    """``"slid:7"`` -> ``"7"`` (holdings are keyed by SLID strings)."""
    return node_key.split(":", 1)[1]


# ----------------------------------------------------------------------
# Peer links: how a source reaches its followers
# ----------------------------------------------------------------------
class PeerLink:
    """One replication hop to a peer shard (transport-agnostic)."""

    def call(self, method: str, payload: Any) -> Any:
        raise NotImplementedError

    def close(self) -> None:
        pass


class LocalPeerLink(PeerLink):
    """Direct call into another in-process shard's manager."""

    def __init__(self, manager: "ReplicationManager") -> None:
        self.manager = manager

    def call(self, method: str, payload: Any) -> Any:
        return self.manager.extra_handlers()[method](payload)


class TcpPeerLink(PeerLink):
    """Replication over the standard lease wire (fleet-internal).

    Uses small budgets: replication is retried forever by the flusher
    anyway, so a slow peer should fail fast and let the anti-entropy
    snapshot heal the gap, not stall the stream.
    """

    def __init__(self, host: str, port: int) -> None:
        from repro.net.endpoint import EndpointConfig
        from repro.net.transport import TcpTransport

        self.transport = TcpTransport(host, port, config=EndpointConfig(
            timeout_seconds=2.0,
            max_attempts=2,
            backoff_seconds=0.01,
            reconnect_attempts=2,
            reconnect_backoff_seconds=0.01,
        ))
        self._clock = ThreadSafeClock()

    def call(self, method: str, payload: Any) -> Any:
        return self.transport.request(method, payload, clock=self._clock)

    def close(self) -> None:
        self.transport.close()


# ----------------------------------------------------------------------
# Source side
# ----------------------------------------------------------------------
class ReplicationSource:
    """Streams one shard's state changes to its followers.

    ``follower_for(license_id)`` names the peer that replicates a given
    license (ring successor); identity events go to every peer.  The
    flusher thread drains the delta buffer every ``flush_interval``
    seconds and takes a full snapshot pass every ``snapshot_interval``
    seconds; both can also be driven explicitly (``flush_now`` /
    ``snapshot_now``) which is what deterministic tests do.
    """

    def __init__(
        self,
        remote,
        name: str,
        peers: Dict[str, PeerLink],
        follower_for: Callable[[str], Optional[str]],
        lag_budget_units: int = DEFAULT_LAG_BUDGET_UNITS,
        lag_budget_grants: int = DEFAULT_LAG_BUDGET_GRANTS,
        lag_budget_pool_fraction: float = DEFAULT_LAG_BUDGET_POOL_FRACTION,
        flush_interval: float = 0.02,
        snapshot_interval: float = 0.5,
    ) -> None:
        if lag_budget_units < 1:
            raise ValueError("lag_budget_units must be >= 1")
        if lag_budget_grants < 1:
            raise ValueError("lag_budget_grants must be >= 1")
        if not 0.0 < lag_budget_pool_fraction <= 1.0:
            raise ValueError("lag_budget_pool_fraction must be in (0, 1]")
        self.remote = remote
        self.name = name
        self.peers = dict(peers)
        self.follower_for = follower_for
        self.budget = lag_budget_units
        self.grants_budget = lag_budget_grants
        self.pool_fraction = lag_budget_pool_fraction
        self.flush_interval = flush_interval
        self.snapshot_interval = snapshot_interval
        self._lock = threading.Lock()
        self._pending: Deque[ReplicaDelta] = deque()
        self._seq = 0
        #: license_id -> granted units the follower has not acked; the
        #: grant_headroom clamp keeps each entry <= the shipped budget.
        self._unacked: Dict[str, int] = {}
        #: license_id -> largest grant Algorithm 1 ever *proposed*
        #: (pre-clamp) — the scale the adaptive budget tracks.
        self._peak: Dict[str, int] = {}
        #: license_id -> largest budget the follower has confirmed
        #: receiving.  The clamp uses only this: a grant sized against
        #: an unshipped budget could exceed the promotion reserve.
        self._shipped: Dict[str, int] = {}
        #: Peers whose delta stream broke: deltas for them are dropped
        #: and the next snapshot pass reconciles them wholesale.
        self._needs_snapshot = set(self.peers)
        self.batches_sent = 0
        self.snapshots_sent = 0
        self.deltas_dropped = 0
        self.deltas_coalesced = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        remote.add_observer(self._observe)
        remote.grant_headroom = self.grant_headroom

    # -- primary-side hooks (called under the mutated state's lock) ----
    def _observe(self, event: str, fields: Dict[str, Any]) -> None:
        with self._lock:
            self._seq += 1
            self._pending.append(ReplicaDelta(self._seq, event, dict(fields)))
            if event == "grant":
                license_id = fields["license_id"]
                # Only grants a live follower should see count toward
                # the lag window: a license whose ring successor is not
                # a peer (e.g. it is *this* shard, post-promotion) has
                # no replica anywhere, so there is nothing to lag.
                if self.follower_for(license_id) in self.peers:
                    self._unacked[license_id] = (
                        self._unacked.get(license_id, 0) + fields["units"]
                    )

    def grant_headroom(self, license_id: str,
                       proposed_units: int = 0) -> Optional[int]:
        """How many more units may be granted before exceeding the lag
        budget (wired into ``SlRemote.grant_headroom``); ``None`` means
        unlimited — the license has no live follower to lag behind.

        ``proposed_units`` (Algorithm 1's pre-clamp decision) feeds the
        peak tracker so the *next* shipped budget adapts to the grant
        scale; the clamp itself only trusts ``_shipped``.
        """
        with self._lock:
            if self.follower_for(license_id) not in self.peers:
                return None
            if proposed_units > self._peak.get(license_id, 0):
                self._peak[license_id] = proposed_units
            shipped = self._shipped.get(license_id, self.budget)
            return max(0, shipped - self._unacked.get(license_id, 0))

    def desired_budget(self, license_id: str) -> int:
        """The adaptive lag budget this license *should* have:
        ``max(floor, grants × peak)``, capped at ``pool_fraction`` of
        the license pool.  Shipped to the follower on every batch and
        snapshot; the clamp starts honouring it once shipping succeeds.

        (The ledger lookup happens outside ``_lock``: observers run
        under the registry lock and take ``_lock``, so taking them in
        the opposite order here would be a lock-order inversion.)
        """
        with self._lock:
            peak = self._peak.get(license_id, 0)
        want = max(self.budget, self.grants_budget * peak)
        try:
            total = self.remote.ledger(license_id).total_gcl
        except Exception:  # noqa: BLE001 - unknown/migrated-away license
            return want
        return min(want, max(self.budget, int(total * self.pool_fraction)))

    def shipped_budget(self, license_id: str) -> int:
        """The budget the follower has confirmed (= the forfeit bound)."""
        with self._lock:
            return self._shipped.get(license_id, self.budget)

    def _ship_budgets(self, budgets: Dict[str, int]) -> None:
        """Record budgets a peer just acknowledged (monotone per license)."""
        with self._lock:
            for license_id, units in budgets.items():
                if units > self._shipped.get(license_id, self.budget):
                    self._shipped[license_id] = units

    def drop_peer(self, name: str) -> None:
        """Forget a dead peer (promotion observed its death).

        Its link closes and licenses that followed it stop counting
        toward the lag window — they are no longer replicated anywhere,
        so backpressuring their grants would wedge them at the budget
        with no follower left to ever ack.
        """
        with self._lock:
            peer = self.peers.pop(name, None)
            self._needs_snapshot.discard(name)
        if peer is not None:
            try:
                peer.close()
            except Exception:  # noqa: BLE001 - closing a dead link
                pass

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name=f"replication-{self.name}", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        for peer in self.peers.values():
            peer.close()

    def _run(self) -> None:
        elapsed = 0.0
        # Bootstrap: a fresh follower starts from a full snapshot.
        self.snapshot_now()
        while not self._stop.wait(self.flush_interval):
            self.flush_now()
            elapsed += self.flush_interval
            if elapsed >= self.snapshot_interval:
                elapsed = 0.0
                self.snapshot_now()

    # -- shipping -------------------------------------------------------
    def _route(self, delta: ReplicaDelta) -> List[str]:
        """Peer names a delta must reach (identity events go to all)."""
        license_id = delta.fields.get("license_id")
        if license_id is None:
            return list(self.peers)
        follower = self.follower_for(license_id)
        return [follower] if follower in self.peers else []

    @staticmethod
    def _coalesce(deltas: List[ReplicaDelta]) -> List[ReplicaDelta]:
        """Collapse adjacent same-cursor unit deltas before shipping.

        A coalesced renewal batch journals runs of grants for the same
        ``(license_id, node_key)`` back to back; the follower applies
        unit deltas additively and advances by the batch's last seq, so
        an adjacent run ships as **one** delta carrying the summed
        units under the run's final seq.  Only ``grant``/``return``
        runs with identical routing keys merge — same-cursor order is
        what the follower's clamp depends on, and any other event
        (issue, revoke, writeoff, escrow, ...) is a barrier.
        """
        merged: List[ReplicaDelta] = []
        for delta in deltas:
            if merged and delta.event in ("grant", "return"):
                prev = merged[-1]
                if (prev.event == delta.event
                        and prev.fields.get("license_id")
                        == delta.fields.get("license_id")
                        and prev.fields.get("node_key")
                        == delta.fields.get("node_key")):
                    fields = dict(prev.fields)
                    fields["units"] = (fields.get("units", 0)
                                       + delta.fields.get("units", 0))
                    merged[-1] = ReplicaDelta(delta.seq, delta.event, fields)
                    continue
            merged.append(delta)
        return merged

    def flush_now(self) -> None:
        """Drain pending deltas and ship one batch per follower."""
        with self._lock:
            drained = list(self._pending)
            self._pending.clear()
        if not drained:
            return
        coalesced = self._coalesce(drained)
        self.deltas_coalesced += len(drained) - len(coalesced)
        drained = coalesced
        per_peer: Dict[str, List[ReplicaDelta]] = {}
        for delta in drained:
            for peer_name in self._route(delta):
                per_peer.setdefault(peer_name, []).append(delta)
        for peer_name, deltas in per_peer.items():
            if peer_name in self._needs_snapshot:
                # The stream to this peer is already broken; deltas
                # would apply out of order.  Snapshot supersedes them.
                self.deltas_dropped += len(deltas)
                continue
            touched = {delta.fields.get("license_id") for delta in deltas}
            budgets = {license_id: self.desired_budget(license_id)
                       for license_id in touched if license_id is not None}
            batch = ReplicaBatch(source=self.name, budget=self.budget,
                                 deltas=tuple(deltas), budgets=budgets)
            acked_grants = self._grant_units(deltas)
            try:
                self.peers[peer_name].call("replicate", batch)
            except Exception:  # noqa: BLE001 - any peer fault = resync later
                self._needs_snapshot.add(peer_name)
                self.deltas_dropped += len(deltas)
                continue
            self.batches_sent += 1
            self._ack(acked_grants)
            self._ship_budgets(budgets)

    def snapshot_now(self) -> None:
        """Ship a full snapshot to every peer (anti-entropy pass)."""
        for peer_name, peer in self.peers.items():
            licenses: Dict[str, Any] = {}
            for license_id in self.remote.license_ids():
                if self.follower_for(license_id) != peer_name:
                    continue
                licenses[license_id] = \
                    self.remote.export_license_state(license_id)
            # Grants already exported are replicated the moment the
            # snapshot lands; grants that raced in since are still in
            # the pending queue and stay unacked until their own flush.
            with self._lock:
                covered = {
                    license_id: self._unacked.get(license_id, 0)
                    - self._pending_grants(license_id)
                    for license_id in licenses
                }
                seq = self._seq
            budgets = {license_id: self.desired_budget(license_id)
                       for license_id in licenses}
            snapshot = ShardSnapshot(
                source=self.name, seq=seq, budget=self.budget,
                licenses=licenses,
                identity=self.remote.export_identity(),
                budgets=budgets,
            )
            try:
                peer.call("sync_snapshot", snapshot)
            except Exception:  # noqa: BLE001 - retried on the next pass
                self._needs_snapshot.add(peer_name)
                continue
            self.snapshots_sent += 1
            self._needs_snapshot.discard(peer_name)
            self._ack(covered)
            self._ship_budgets(budgets)

    def _pending_grants(self, license_id: str) -> int:
        """Grant units still queued for ``license_id`` (lock held)."""
        return sum(
            delta.fields["units"] for delta in self._pending
            if delta.event == "grant"
            and delta.fields.get("license_id") == license_id
        )

    @staticmethod
    def _grant_units(deltas: List[ReplicaDelta]) -> Dict[str, int]:
        grants: Dict[str, int] = {}
        for delta in deltas:
            if delta.event == "grant":
                license_id = delta.fields["license_id"]
                grants[license_id] = (grants.get(license_id, 0)
                                      + delta.fields["units"])
        return grants

    def _ack(self, grants: Dict[str, int]) -> None:
        with self._lock:
            for license_id, units in grants.items():
                remaining = self._unacked.get(license_id, 0) - units
                if remaining > 0:
                    self._unacked[license_id] = remaining
                else:
                    self._unacked.pop(license_id, None)


# ----------------------------------------------------------------------
# Follower side
# ----------------------------------------------------------------------
@dataclass
class SourceReplica:
    """Everything this shard replicates *from* one source shard."""

    source: str
    budget: int = DEFAULT_LAG_BUDGET_UNITS
    last_seq: int = 0
    #: license_id -> mutable wire-form record (export_license_state).
    licenses: Dict[str, Any] = None  # type: ignore[assignment]
    identity: Dict[str, Any] = None  # type: ignore[assignment]
    #: license_id -> the largest adaptive lag budget the source has
    #: shipped us (falls back to the flat ``budget`` when absent).
    budgets: Dict[str, int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.licenses is None:
            self.licenses = {}
        if self.identity is None:
            self.identity = {"next_slid": 1, "clients": {}}
        if self.budgets is None:
            self.budgets = {}

    def budget_for(self, license_id: str) -> int:
        return self.budgets.get(license_id, self.budget)


class FollowerStore:
    """Replicated state held on behalf of other shards."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sources: Dict[str, SourceReplica] = {}
        self.deltas_applied = 0
        self.deltas_skipped = 0
        self.snapshots_applied = 0

    def apply_batch(self, batch: ReplicaBatch) -> Dict[str, Any]:
        with self._lock:
            replica = self._sources.setdefault(
                batch.source, SourceReplica(source=batch.source)
            )
            replica.budget = batch.budget
            self._merge_budgets(replica, batch.budgets)
            for delta in batch.deltas:
                if delta.seq <= replica.last_seq:
                    continue  # replayed batch; deltas are idempotent by seq
                replica.last_seq = delta.seq
                if self._apply_delta(replica, delta):
                    self.deltas_applied += 1
                else:
                    self.deltas_skipped += 1
            return {"status": "ok", "seq": replica.last_seq}

    def apply_snapshot(self, snapshot: ShardSnapshot) -> Dict[str, Any]:
        with self._lock:
            replica = self._sources.setdefault(
                snapshot.source, SourceReplica(source=snapshot.source)
            )
            replica.budget = snapshot.budget
            self._merge_budgets(replica, snapshot.budgets)
            replica.last_seq = max(replica.last_seq, snapshot.seq)
            replica.licenses = dict(snapshot.licenses)
            replica.identity = snapshot.identity
            self.snapshots_applied += 1
            return {"status": "ok", "seq": replica.last_seq}

    @staticmethod
    def _merge_budgets(replica: SourceReplica,
                       budgets: Dict[str, int]) -> None:
        """Budgets only ever grow: the source may clamp against any
        budget it successfully shipped, so the reserve honours the
        largest one ever seen even if a later message carries less."""
        for license_id, units in budgets.items():
            if units > replica.budgets.get(license_id, 0):
                replica.budgets[license_id] = units

    def _apply_delta(self, replica: SourceReplica,
                     delta: ReplicaDelta) -> bool:
        """Mutate the replica; False when the delta had nothing to hit
        (unknown license — the next snapshot reconciles it)."""
        fields = delta.fields
        event = delta.event
        if event in ("escrow", "escrow_clear"):
            clients = replica.identity.setdefault("clients", {})
            slid = str(fields["slid"])
            if event == "escrow":
                clients[slid] = {
                    "escrowed_root_key": fields["root_key"],
                    "graceful_shutdown": True,
                }
            else:
                clients[slid] = {
                    "escrowed_root_key": None,
                    "graceful_shutdown": False,
                }
            replica.identity["next_slid"] = max(
                replica.identity.get("next_slid", 1), int(slid) + 1
            )
            return True
        if event == "admit":
            clients = replica.identity.setdefault("clients", {})
            slid = str(fields["slid"])
            clients.setdefault(slid, {"escrowed_root_key": None,
                                      "graceful_shutdown": False})
            replica.identity["next_slid"] = max(
                replica.identity.get("next_slid", 1), int(slid) + 1
            )
            return True
        if event == "install_identity":
            payload = fields["identity"]
            clients = replica.identity.setdefault("clients", {})
            for slid, entry in payload.get("clients", {}).items():
                clients[slid] = dict(entry)
            replica.identity["next_slid"] = max(
                replica.identity.get("next_slid", 1),
                int(payload.get("next_slid", 1)),
            )
            return True
        if event == "install_license":
            # A migration/promotion moved a whole record onto the
            # source: replicate it wholesale (it arrives with holdings
            # and ledger intact, unlike an "issue").
            replica.licenses[fields["license_id"]] = fields["record"]
            return True
        if event == "release":
            # Migrated away from the source: the new owner replicates
            # it now; holding a stale copy here risks double-serving.
            return replica.licenses.pop(fields["license_id"], None) is not None
        record = replica.licenses.get(fields.get("license_id"))
        if record is None:
            return False
        ledger = record["ledger"]
        holdings = record.setdefault("holdings", {})
        if event == "grant":
            key, units = fields["node_key"], fields["units"]
            ledger["outstanding"][key] = (
                ledger["outstanding"].get(key, 0) + units
            )
            slid = _slid_of(key)
            holdings[slid] = holdings.get(slid, 0) + units
            return True
        if event == "return":
            key, units = fields["node_key"], fields["units"]
            ledger["outstanding"][key] = max(
                0, ledger["outstanding"].get(key, 0) - units
            )
            slid = _slid_of(key)
            holdings[slid] = max(0, holdings.get(slid, 0) - units)
            return True
        if event == "writeoff":
            key, units = fields["node_key"], fields["units"]
            ledger["outstanding"][key] = max(
                0, ledger["outstanding"].get(key, 0) - units
            )
            ledger["lost_units"] += units
            holdings.pop(_slid_of(key), None)
            return True
        if event == "revoke":
            record["definition"]["revoked"] = True
            return True
        # "issue" deltas carry no secret, so the record cannot be built
        # from the delta alone — the next snapshot pass delivers it.
        return False

    # -- promotion ------------------------------------------------------
    def take_source(self, source: str) -> Optional[SourceReplica]:
        """Remove and return everything replicated from ``source``."""
        with self._lock:
            return self._sources.pop(source, None)

    def probe(self) -> Dict[str, Any]:
        with self._lock:
            return {
                source: {
                    "last_seq": replica.last_seq,
                    "budget": replica.budget,
                    "budgets": dict(replica.budgets),
                    "licenses": sorted(replica.licenses),
                }
                for source, replica in self._sources.items()
            }


# ----------------------------------------------------------------------
# Both sides, wired for one shard process
# ----------------------------------------------------------------------
class ReplicationManager:
    """One shard's replication role: source to followers, store for peers.

    ``peers`` maps peer shard name -> :class:`PeerLink`; an empty map
    (single-shard fleet, or replication off) degrades to a follower
    store only — the wire surface stays mounted so a probe or promote
    is still answerable (with nothing in it).
    """

    def __init__(
        self,
        remote,
        name: str,
        peers: Optional[Dict[str, PeerLink]] = None,
        follower_for: Optional[Callable[[str], Optional[str]]] = None,
        lag_budget_units: int = DEFAULT_LAG_BUDGET_UNITS,
        lag_budget_grants: int = DEFAULT_LAG_BUDGET_GRANTS,
        flush_interval: float = 0.02,
        snapshot_interval: float = 0.5,
    ) -> None:
        self.remote = remote
        self.name = name
        self.store = FollowerStore()
        self.source: Optional[ReplicationSource] = None
        self._promote_lock = threading.Lock()
        #: source name -> {license_id: reserved units} for promotions
        #: already performed (the idempotency memo every extra router
        #: asking again is answered from).
        self._promoted: Dict[str, Dict[str, int]] = {}
        if peers:
            if follower_for is None:
                raise ValueError("peers need a follower_for placement rule")
            self.source = ReplicationSource(
                remote, name, peers, follower_for,
                lag_budget_units=lag_budget_units,
                lag_budget_grants=lag_budget_grants,
                flush_interval=flush_interval,
                snapshot_interval=snapshot_interval,
            )

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        if self.source is not None:
            self.source.start()

    def stop(self) -> None:
        if self.source is not None:
            self.source.stop()

    # -- wire surface ---------------------------------------------------
    def extra_handlers(self) -> Dict[str, Callable]:
        return {
            "replicate": self.handle_replicate,
            "sync_snapshot": self.handle_snapshot,
            "promote": self.handle_promote,
            "replication_probe": self.handle_probe,
        }

    def handle_replicate(self, batch: ReplicaBatch) -> Dict[str, Any]:
        return self.store.apply_batch(batch)

    def handle_snapshot(self, snapshot: ShardSnapshot) -> Dict[str, Any]:
        return self.store.apply_snapshot(snapshot)

    def handle_probe(self, _payload: Any = None) -> Dict[str, Any]:
        result = {
            "name": self.name,
            "follows": self.store.probe(),
            "promoted": {source: dict(reserves)
                         for source, reserves in self._promoted.items()},
        }
        if self.source is not None:
            with self.source._lock:
                unacked = dict(self.source._unacked)
                peaks = dict(self.source._peak)
                shipped = dict(self.source._shipped)
            result["replicates"] = {
                "budget": self.source.budget,
                "grants_budget": self.source.grants_budget,
                "unacked": unacked,
                "peaks": peaks,
                "shipped": shipped,
                "batches_sent": self.source.batches_sent,
                "snapshots_sent": self.source.snapshots_sent,
            }
        return result

    def handle_promote(self, source: str) -> Dict[str, Any]:
        """Fold replicas held for a dead ``source`` into serving state.

        The pessimistic-loss rule, scoped to the lag window: for each
        replicated license, ``min(available, shipped budget)`` units
        are moved to ``lost`` before installing — every grant the dead
        primary made that this replica never saw is covered by that
        reserve, because the source only ever clamped grants against a
        budget this follower had already acknowledged.  Idempotent: the
        first caller does the work, every later caller gets the memo.
        """
        if self.source is not None:
            # The fleet shrank: stop streaming to (and backpressuring
            # for) the dead shard.
            self.source.drop_peer(source)
        with self._promote_lock:
            if source in self._promoted:
                return {"status": "ok", "already": True,
                        "installed": dict(self._promoted[source])}
            replica = self.store.take_source(source)
            installed: Dict[str, int] = {}
            if replica is not None:
                served = set(self.remote.license_ids())
                for license_id, record in replica.licenses.items():
                    if license_id in served:
                        continue  # already migrated here while live
                    ledger = record["ledger"]
                    reserve = min(max(_wire_available(ledger), 0),
                                  replica.budget_for(license_id))
                    ledger["lost_units"] += reserve
                    record["frozen"] = False
                    self.remote.install_license_state(record)
                    installed[license_id] = reserve
                self.remote.install_identity(replica.identity)
            self._promoted[source] = installed
            return {"status": "ok", "already": False,
                    "installed": dict(installed)}
