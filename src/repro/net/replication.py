"""Quorum control plane: depth-K delta streams, epoch fencing, bootstrap.

The sharded SL-Remote loses a license's whole ledger when its home
shard dies — the availability gap the paper waves at and T-Lease
closes with replicated, epoch-disciplined lease state.  This module
makes every shard stream its
:class:`~repro.core.sl_remote.LicenseShardState` changes to **K ring
successors** so that even two simultaneous shard deaths cost clients a
bounded, *accounted* loss instead of a dead license:

* :class:`ReplicationSource` — taps the primary's observer hooks
  (:meth:`~repro.core.sl_remote.SlRemote.add_observer`), buffers
  per-license deltas in commit order, and a flusher thread ships them
  as :class:`ReplicaBatch` messages to each license's followers
  (``followers_for(license_id)`` — the next K *distinct* shards
  clockwise on the hash ring, exactly the shards the ring maps the
  license to as primaries die, so routing after failover needs no
  extra lookup table).
* **Bounded replication lag** — the source tracks, per peer and per
  license, how many granted units that follower has *not*
  acknowledged, and SL-Remote's ``grant_headroom`` hook clamps new
  grants so no live follower's lag ever exceeds the license's shipped
  budget.  That clamp is the whole no-double-mint argument: whatever
  *any* surviving follower missed is at most the budget, so reserving
  that many units as lost at promotion covers every unseen grant (the
  paper's pessimistic rule, Algorithms 2–3, applied only to the lag
  window instead of to everything).  The budget is adaptive and
  denominated in grants (``lag_budget_grants × peak grant``, capped at
  a pool fraction); the clamp only ever trusts the **shipped** budget
  — the last value that follower acknowledged receiving.
* **Identity quorum** — identity/escrow deltas (no ``license_id``)
  broadcast to every peer, and the dispatch path can block a client's
  ``init``/``shutdown`` ack until a majority of live peers has acked
  the identity watermark (:meth:`ReplicationSource.
  wait_identity_quorum`), so a home-shard death immediately after an
  escrow cannot silently forfeit it.
* **Epoch fencing** — every promotion carries an epoch; followers
  fence the deposed source at that epoch and answer its late traffic
  with ``{"status": "fenced"}`` instead of applying it.  A fenced
  source stops granting entirely (headroom 0): a partitioned stale
  primary can neither mint units nor corrupt its successors.
* **WAL-shipped bootstrap** — a cold or restarting follower no longer
  syncs from an in-memory :class:`ShardSnapshot` build: when the
  source has durable storage (:class:`~repro.storage.wal.
  ShardPersistence`), it ships a :class:`BootstrapChunk` — the
  on-disk snapshot plus the WAL tail in v3 frames — and the follower
  replays it through :class:`FollowerStore`, then switches to live
  deltas at the captured seq watermark.  Healthy followers keep the
  classic in-memory anti-entropy snapshot as a periodic backstop.
* :class:`FollowerStore` — the follower-side replica: wire-form
  license records per source shard, mutated by deltas, replaced by
  snapshots, rebuilt by bootstrap chunks; fences stale sources.
* :class:`ReplicationManager` — one per shard process; wires source +
  store together and exposes the fleet-internal wire surface
  (``replicate`` / ``sync_snapshot`` / ``bootstrap`` / ``promote`` /
  ``replication_probe`` and, when a quorum is configured, gated
  ``init``/``shutdown``) that the servers mount via
  ``extra_handlers``.

Promotion is **idempotent, epoch-fenced and router-driven**: every
client's :class:`~repro.net.sharding.ShardRouter` that observes a dead
shard probes the survivors, picks the max-(epoch, seq) ranking, and
broadcasts ``promote({source, epoch})``; each survivor fences the dead
source, folds the replicas *it* adopts (first live owner in ring
order) into its own serving state exactly once, and answers with what
it installed, no matter how many routers ask.  Every promote call
rescans all dead sources, so a second simultaneous death is healed by
whichever survivor is next in ring order for each license.
"""

from __future__ import annotations

import inspect
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any, Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple,
)

from repro.net import codec
from repro.sim.clock import ThreadSafeClock

#: Default per-license replication-lag budget *floor*: the most granted
#: units that may ever be un-acknowledged by a follower before the
#: budget has adapted to the observed grant size, hence the least a
#: promotion may have to forfeit per license.
DEFAULT_LAG_BUDGET_UNITS = 64

#: How many peak-sized grants may be in flight un-acked before the
#: clamp bites (the grant-denominated budget).
DEFAULT_LAG_BUDGET_GRANTS = 4

#: Hard cap on the adaptive budget as a fraction of the license pool:
#: a promotion's pessimistic reserve can never burn more than this.
DEFAULT_LAG_BUDGET_POOL_FRACTION = 0.25

#: How long a gated ``init``/``shutdown`` waits for the identity
#: quorum before giving up (the ack still goes out — the timeout is a
#: tail-latency bound, counted in ``quorum_timeouts``, not a refusal).
DEFAULT_QUORUM_TIMEOUT = 1.0


# ----------------------------------------------------------------------
# Wire messages (registered with the codec)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReplicaDelta:
    """One state change, in the emitting shard's commit order."""

    seq: int
    event: str  # grant | return | writeoff | issue | revoke | escrow | escrow_clear
    fields: Dict[str, Any]

    def to_wire(self) -> Dict[str, Any]:
        return {"seq": self.seq, "event": self.event, "fields": self.fields}

    @classmethod
    def from_wire(cls, fields: Dict[str, Any]) -> "ReplicaDelta":
        return cls(seq=fields["seq"], event=fields["event"],
                   fields=fields["fields"])


@dataclass(frozen=True)
class ReplicaBatch:
    """A run of deltas from ``source``, for one follower.

    ``budgets`` carries the source's *current* adaptive lag budget per
    license touched by the batch; the follower records the largest
    value it has seen — that (not the legacy flat ``budget``) is what
    its promotion reserve uses, and the source never clamps against a
    budget it has not successfully shipped.  ``epoch`` is the source's
    promotion epoch: a follower that fenced the source at a higher
    epoch rejects the batch instead of applying it.
    """

    source: str
    budget: int
    deltas: Tuple[ReplicaDelta, ...]
    budgets: Dict[str, int] = field(default_factory=dict)
    epoch: int = 0

    def to_wire(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "budget": self.budget,
            "deltas": [delta.to_wire() for delta in self.deltas],
            "budgets": dict(self.budgets),
            "epoch": self.epoch,
        }

    @classmethod
    def from_wire(cls, fields: Dict[str, Any]) -> "ReplicaBatch":
        return cls(
            source=fields["source"],
            budget=fields["budget"],
            deltas=tuple(ReplicaDelta.from_wire(d)
                         for d in fields["deltas"]),
            budgets={str(lid): int(units)
                     for lid, units in fields.get("budgets", {}).items()},
            epoch=int(fields.get("epoch", 0)),
        )


@dataclass(frozen=True)
class ShardSnapshot:
    """Full anti-entropy state of ``source``'s licenses for one follower.

    ``licenses`` maps license_id to the wire form produced by
    :meth:`~repro.core.sl_remote.SlRemote.export_license_state`;
    ``identity`` is :meth:`~repro.core.sl_remote.SlRemote.
    export_identity`'s payload.  Applying a snapshot *replaces* the
    follower's replica for those licenses — it supersedes any deltas in
    flight, which is what lets a source drop undeliverable deltas and
    heal with the next snapshot instead of buffering without bound.
    """

    source: str
    seq: int
    budget: int
    licenses: Dict[str, Any]
    identity: Dict[str, Any]
    budgets: Dict[str, int] = field(default_factory=dict)
    epoch: int = 0

    def to_wire(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "seq": self.seq,
            "budget": self.budget,
            "licenses": self.licenses,
            "identity": self.identity,
            "budgets": dict(self.budgets),
            "epoch": self.epoch,
        }

    @classmethod
    def from_wire(cls, fields: Dict[str, Any]) -> "ShardSnapshot":
        return cls(
            source=fields["source"], seq=fields["seq"],
            budget=fields["budget"], licenses=fields["licenses"],
            identity=fields["identity"],
            budgets={str(lid): int(units)
                     for lid, units in fields.get("budgets", {}).items()},
            epoch=int(fields.get("epoch", 0)),
        )


@dataclass(frozen=True)
class BootstrapChunk:
    """The source's durable state, shipped to a cold follower.

    ``snapshot`` is the on-disk compaction snapshot payload
    (``{"seq": wal_seq, "licenses": {...}, "identity": {...}}``, or
    ``{}`` when the source has never compacted); ``records`` is the
    WAL tail — v3-framed ``{"seq", "event", "fields"}`` values
    produced by :meth:`~repro.storage.wal.WriteAheadLog.export_frames`
    — which the follower replays past the snapshot's WAL watermark.
    ``seq`` is the *replication* seq captured while the WAL was
    quiesced: the follower resumes live deltas exactly there.
    """

    source: str
    seq: int
    budget: int
    snapshot: Dict[str, Any]
    records: bytes
    budgets: Dict[str, int] = field(default_factory=dict)
    epoch: int = 0

    def to_wire(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "seq": self.seq,
            "budget": self.budget,
            "snapshot": self.snapshot,
            "records": self.records.hex(),
            "budgets": dict(self.budgets),
            "epoch": self.epoch,
        }

    @classmethod
    def from_wire(cls, fields: Dict[str, Any]) -> "BootstrapChunk":
        records = fields["records"]
        if isinstance(records, str):
            records = bytes.fromhex(records)
        return cls(
            source=fields["source"], seq=fields["seq"],
            budget=fields["budget"], snapshot=fields["snapshot"],
            records=bytes(records),
            budgets={str(lid): int(units)
                     for lid, units in fields.get("budgets", {}).items()},
            epoch=int(fields.get("epoch", 0)),
        )


for _message in (ReplicaDelta, ReplicaBatch, ShardSnapshot, BootstrapChunk):
    codec.register_message_type(_message)


def _wire_available(ledger: Dict[str, Any]) -> int:
    """``available`` computed from a wire-form ledger."""
    return (ledger["total_gcl"] - sum(ledger["outstanding"].values())
            - ledger["lost_units"])


def _slid_of(node_key: str) -> str:
    """``"slid:7"`` -> ``"7"`` (holdings are keyed by SLID strings)."""
    return node_key.split(":", 1)[1]


# ----------------------------------------------------------------------
# Peer links: how a source reaches its followers
# ----------------------------------------------------------------------
class PeerLink:
    """One replication hop to a peer shard (transport-agnostic)."""

    def call(self, method: str, payload: Any) -> Any:
        raise NotImplementedError

    def close(self) -> None:
        pass


class LocalPeerLink(PeerLink):
    """Direct call into another in-process shard's manager."""

    def __init__(self, manager: "ReplicationManager") -> None:
        self.manager = manager

    def call(self, method: str, payload: Any) -> Any:
        return self.manager.extra_handlers()[method](payload)


class TcpPeerLink(PeerLink):
    """Replication over the standard lease wire (fleet-internal).

    Uses small budgets: replication is retried forever by the flusher
    anyway, so a slow peer should fail fast and let the anti-entropy
    snapshot heal the gap, not stall the stream.
    """

    def __init__(self, host: str, port: int) -> None:
        from repro.net.endpoint import EndpointConfig
        from repro.net.transport import TcpTransport

        self.transport = TcpTransport(host, port, config=EndpointConfig(
            timeout_seconds=2.0,
            max_attempts=2,
            backoff_seconds=0.01,
            reconnect_attempts=2,
            reconnect_backoff_seconds=0.01,
        ))
        self._clock = ThreadSafeClock()

    def call(self, method: str, payload: Any) -> Any:
        return self.transport.request(method, payload, clock=self._clock)

    def close(self) -> None:
        self.transport.close()


# ----------------------------------------------------------------------
# Source side
# ----------------------------------------------------------------------
class ReplicationSource:
    """Streams one shard's state changes to its K followers.

    ``followers_for(license_id)`` names the peers that replicate a
    given license (the K distinct ring successors); identity events go
    to every peer.  The flusher thread drains the delta buffer every
    ``flush_interval`` seconds and takes a snapshot/bootstrap pass
    every ``snapshot_interval`` seconds; both can also be driven
    explicitly (``flush_now`` / ``snapshot_now``) which is what
    deterministic tests do.

    When ``exporter`` is set (a :meth:`~repro.storage.wal.
    ShardPersistence.export_bootstrap` bound method), peers whose
    delta stream broke — including every peer at startup — are healed
    with a WAL-shipped :class:`BootstrapChunk` instead of an in-memory
    snapshot build.
    """

    def __init__(
        self,
        remote,
        name: str,
        peers: Dict[str, PeerLink],
        followers_for: Callable[[str], Sequence[str]],
        lag_budget_units: int = DEFAULT_LAG_BUDGET_UNITS,
        lag_budget_grants: int = DEFAULT_LAG_BUDGET_GRANTS,
        lag_budget_pool_fraction: float = DEFAULT_LAG_BUDGET_POOL_FRACTION,
        flush_interval: float = 0.02,
        snapshot_interval: float = 0.5,
    ) -> None:
        if lag_budget_units < 1:
            raise ValueError("lag_budget_units must be >= 1")
        if lag_budget_grants < 1:
            raise ValueError("lag_budget_grants must be >= 1")
        if not 0.0 < lag_budget_pool_fraction <= 1.0:
            raise ValueError("lag_budget_pool_fraction must be in (0, 1]")
        self.remote = remote
        self.name = name
        self.peers = dict(peers)
        self.followers_for = followers_for
        self.budget = lag_budget_units
        self.grants_budget = lag_budget_grants
        self.pool_fraction = lag_budget_pool_fraction
        self.flush_interval = flush_interval
        self.snapshot_interval = snapshot_interval
        #: Promotion epoch stamped on every outbound message; bumped by
        #: the manager when this shard participates in a promotion.
        self.epoch = 0
        #: Optional durable exporter (``ShardPersistence.
        #: export_bootstrap``): enables WAL-shipped bootstrap.
        self.exporter: Optional[
            Callable[[Callable[[], None]], Tuple[Dict[str, Any], bytes]]
        ] = None
        self._lock = threading.Lock()
        self._ack_cond = threading.Condition(self._lock)
        #: Serializes flush_now/snapshot_now across the flusher thread
        #: and any request thread driving shipping inline (identity
        #: quorum waits): interleaved drains would ship deltas out of
        #: seq order and the follower would skip the stragglers.
        self._flush_serial = threading.Lock()
        self._pending: Deque[ReplicaDelta] = deque()
        self._seq = 0
        #: Seq of the most recent identity delta (no license_id): the
        #: watermark wait_identity_quorum compares peer acks against.
        self._identity_seq = 0
        #: peer -> license_id -> granted units that follower has not
        #: acked; the grant_headroom clamp keeps every entry <= the
        #: budget shipped *to that peer*.
        self._unacked: Dict[str, Dict[str, int]] = {}
        #: license_id -> largest grant Algorithm 1 ever *proposed*
        #: (pre-clamp) — the scale the adaptive budget tracks.
        self._peak: Dict[str, int] = {}
        #: peer -> license_id -> largest budget that follower has
        #: confirmed receiving.  The clamp uses only this: a grant
        #: sized against an unshipped budget could exceed the
        #: promotion reserve.
        self._shipped: Dict[str, Dict[str, int]] = {}
        #: peer -> highest seq that follower has acknowledged (batch,
        #: snapshot or bootstrap — whichever covered it).
        self._acked_seq: Dict[str, int] = {}
        #: peer -> epoch at which that peer fenced *us* (we were
        #: promoted away from).  A fenced source stops granting.
        self._fenced: Dict[str, int] = {}
        #: Peers whose delta stream broke: deltas for them are dropped
        #: and the next snapshot/bootstrap pass reconciles them.
        self._needs_snapshot: Set[str] = set(self.peers)
        self.batches_sent = 0
        self.snapshots_sent = 0
        self.bootstraps_sent = 0
        self.deltas_dropped = 0
        self.deltas_coalesced = 0
        self.fenced_rejections = 0
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._thread: Optional[threading.Thread] = None
        remote.add_observer(self._observe)
        remote.grant_headroom = self.grant_headroom
        # The auto-tuner's actuator: lets the served remote scale this
        # source's per-license lag budget (grants) online.
        if hasattr(remote, "lag_budget_control"):
            remote.lag_budget_control = self.scale_grants_budget

    # -- primary-side hooks (called under the mutated state's lock) ----
    def _live_followers(self, license_id: str) -> List[str]:
        """Followers that can still ack (``_lock`` held)."""
        return [peer for peer in self.followers_for(license_id)
                if peer in self.peers and peer not in self._fenced]

    def _observe(self, event: str, fields: Dict[str, Any]) -> None:
        with self._lock:
            self._seq += 1
            self._pending.append(ReplicaDelta(self._seq, event, dict(fields)))
            license_id = fields.get("license_id")
            if license_id is None:
                self._identity_seq = self._seq
            elif event == "grant":
                # Only grants a live follower should see count toward
                # the lag window: a license none of whose ring
                # successors is a peer (e.g. they all died) has no
                # replica anywhere, so there is nothing to lag.
                for peer in self._live_followers(license_id):
                    bucket = self._unacked.setdefault(peer, {})
                    bucket[license_id] = (
                        bucket.get(license_id, 0) + fields["units"]
                    )

    def grant_headroom(self, license_id: str,
                       proposed_units: int = 0) -> Optional[int]:
        """How many more units may be granted before exceeding the lag
        budget (wired into ``SlRemote.grant_headroom``); ``None`` means
        unlimited — the license has no live follower to lag behind —
        and ``0`` with a fenced follower means *deposed*: a stale
        primary that learned of its own replacement never grants again.

        ``proposed_units`` (Algorithm 1's pre-clamp decision) feeds the
        peak tracker so the *next* shipped budget adapts to the grant
        scale; the clamp itself only trusts ``_shipped``, and takes the
        minimum headroom across the K live followers — the promotion
        reserve must cover whichever survivor knows the least.
        """
        with self._lock:
            followers = list(self.followers_for(license_id))
            if any(peer in self._fenced for peer in followers):
                return 0
            live = [peer for peer in followers if peer in self.peers]
            if not live:
                return None
            if proposed_units > self._peak.get(license_id, 0):
                self._peak[license_id] = proposed_units
            headroom: Optional[int] = None
            for peer in live:
                shipped = self._shipped.get(peer, {}).get(
                    license_id, self.budget)
                lag = self._unacked.get(peer, {}).get(license_id, 0)
                room = max(0, shipped - lag)
                headroom = room if headroom is None else min(headroom, room)
            return headroom

    def scale_grants_budget(self, factor: float) -> int:
        """Multiply the per-license lag budget (in grants) by ``factor``.

        The auto-tuner's actuator (``SlRemote.lag_budget_control``):
        widening lets more un-replicated grants ride between acks
        (fewer backpressure refusals, larger promotion forfeit bound);
        narrowing tightens the forfeit bound.  Clamped to [1, 64]; the
        ``pool_fraction`` cap in :meth:`desired_budget` still applies,
        so no tuner move can put more than that fraction of a license
        at risk.  Returns the applied value.
        """
        grants = int(round(self.grants_budget * factor))
        self.grants_budget = max(1, min(grants, 64))
        return self.grants_budget

    def desired_budget(self, license_id: str) -> int:
        """The adaptive lag budget this license *should* have:
        ``max(floor, grants × peak)``, capped at ``pool_fraction`` of
        the license pool.  Shipped to followers on every batch and
        snapshot; the clamp starts honouring it once shipping succeeds.

        (The ledger lookup happens outside ``_lock``: observers run
        under the registry lock and take ``_lock``, so taking them in
        the opposite order here would be a lock-order inversion.)
        """
        with self._lock:
            peak = self._peak.get(license_id, 0)
        want = max(self.budget, self.grants_budget * peak)
        try:
            total = self.remote.ledger(license_id).total_gcl
        except Exception:  # noqa: BLE001 - unknown/migrated-away license
            return want
        return min(want, max(self.budget, int(total * self.pool_fraction)))

    def shipped_budget(self, license_id: str) -> int:
        """The smallest budget any live follower has confirmed (= the
        forfeit bound whichever of them is promoted)."""
        with self._lock:
            live = [peer for peer in self.followers_for(license_id)
                    if peer in self.peers]
            if not live:
                return self.budget
            return min(self._shipped.get(peer, {}).get(license_id,
                                                       self.budget)
                       for peer in live)

    def _ship_budgets(self, peer_name: str,
                      budgets: Dict[str, int]) -> None:
        """Record budgets a peer just acknowledged (monotone)."""
        with self._lock:
            bucket = self._shipped.setdefault(peer_name, {})
            for license_id, units in budgets.items():
                if units > bucket.get(license_id, self.budget):
                    bucket[license_id] = units

    def drop_peer(self, name: str) -> None:
        """Forget a dead peer (promotion observed its death).

        Its link closes and its lag stops counting toward the clamp —
        nothing it missed can be promoted any more, so backpressuring
        grants for it would wedge licenses at the budget with no
        follower left to ever ack.
        """
        with self._lock:
            peer = self.peers.pop(name, None)
            self._needs_snapshot.discard(name)
            self._unacked.pop(name, None)
            self._shipped.pop(name, None)
            self._acked_seq.pop(name, None)
            self._fenced.pop(name, None)
            self._ack_cond.notify_all()
        if peer is not None:
            try:
                peer.close()
            except Exception:  # noqa: BLE001 - closing a dead link
                pass

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name=f"replication-{self.name}", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the flusher, detach from the remote, close the links.

        Detaching the observer/headroom hooks makes stop() safe to
        call before the server sockets close: no request thread can
        re-enter a half-torn-down source.
        """
        self._stop.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        try:
            self.remote._observers.remove(self._observe)
        except ValueError:
            pass
        if self.remote.grant_headroom == self.grant_headroom:
            self.remote.grant_headroom = None
        if getattr(self.remote, "lag_budget_control",
                   None) == self.scale_grants_budget:
            self.remote.lag_budget_control = None
        for peer in self.peers.values():
            peer.close()

    def _run(self) -> None:
        elapsed = 0.0
        # Bootstrap: fresh followers start from a full snapshot (or a
        # WAL-shipped bootstrap when durable storage is attached).
        self.snapshot_now()
        while True:
            self._wake.wait(self.flush_interval)
            self._wake.clear()
            if self._stop.is_set():
                break
            self.flush_now()
            elapsed += self.flush_interval
            if elapsed >= self.snapshot_interval:
                elapsed = 0.0
                self.snapshot_now()

    # -- identity quorum ------------------------------------------------
    def wait_identity_quorum(self, required: int,
                             timeout: float = DEFAULT_QUORUM_TIMEOUT) -> bool:
        """Block until ``required`` live peers have acked the current
        identity watermark (or every live peer, when fewer than
        ``required`` remain).  Returns False on timeout.

        Called on the dispatch path after an identity-mutating handler
        (init/shutdown) ran: the client's ack is held until a majority
        of followers could survive this shard's death with the escrow
        intact.  With no flusher thread (deterministic tests) the wait
        drives shipping inline.
        """
        if required <= 0:
            return True
        deadline = time.monotonic() + timeout
        while True:
            with self._lock:
                target = self._identity_seq
                live = [peer for peer in self.peers
                        if peer not in self._fenced]
                need = min(required, len(live))
                if target == 0 or need <= 0:
                    return True
                acked = sum(1 for peer in live
                            if self._acked_seq.get(peer, 0) >= target)
                if acked >= need:
                    return True
            if time.monotonic() >= deadline:
                return False
            if self._thread is None:
                # Deterministic mode: ship inline.  flush alone cannot
                # reach a peer whose stream broke (deltas for it are
                # dropped), so escalate to the snapshot pass.
                self.flush_now()
                self.snapshot_now()
                time.sleep(0.001)
            else:
                self._wake.set()
                with self._ack_cond:
                    self._ack_cond.wait(timeout=0.01)

    # -- shipping -------------------------------------------------------
    def _route(self, delta: ReplicaDelta) -> List[str]:
        """Peer names a delta must reach (``_lock`` held; identity
        events go to every non-fenced peer)."""
        license_id = delta.fields.get("license_id")
        if license_id is None:
            return [peer for peer in self.peers
                    if peer not in self._fenced]
        return self._live_followers(license_id)

    @staticmethod
    def _coalesce(deltas: List[ReplicaDelta]) -> List[ReplicaDelta]:
        """Collapse adjacent same-cursor unit deltas before shipping.

        A coalesced renewal batch journals runs of grants for the same
        ``(license_id, node_key)`` back to back; the follower applies
        unit deltas additively and advances by the batch's last seq, so
        an adjacent run ships as **one** delta carrying the summed
        units under the run's final seq.  Only ``grant``/``return``
        runs with identical routing keys merge — same-cursor order is
        what the follower's clamp depends on, and any other event
        (issue, revoke, writeoff, escrow, ...) is a barrier.
        """
        merged: List[ReplicaDelta] = []
        for delta in deltas:
            if merged and delta.event in ("grant", "return"):
                prev = merged[-1]
                if (prev.event == delta.event
                        and prev.fields.get("license_id")
                        == delta.fields.get("license_id")
                        and prev.fields.get("node_key")
                        == delta.fields.get("node_key")):
                    fields = dict(prev.fields)
                    fields["units"] = (fields.get("units", 0)
                                       + delta.fields.get("units", 0))
                    merged[-1] = ReplicaDelta(delta.seq, delta.event, fields)
                    continue
            merged.append(delta)
        return merged

    def _fenced_reply(self, peer_name: str, reply: Any) -> bool:
        """Record a ``{"status": "fenced"}`` answer; True if it was one."""
        if not (isinstance(reply, dict)
                and reply.get("status") == "fenced"):
            return False
        with self._lock:
            epoch = int(reply.get("epoch", 0))
            if epoch > self._fenced.get(peer_name, -1):
                self._fenced[peer_name] = epoch
            self._needs_snapshot.discard(peer_name)
            self._ack_cond.notify_all()
        self.fenced_rejections += 1
        return True

    def flush_now(self) -> None:
        """Drain pending deltas and ship one batch per follower."""
        with self._flush_serial:
            with self._lock:
                drained = list(self._pending)
                self._pending.clear()
                if not drained:
                    self._ack_cond.notify_all()
                    return
            coalesced = self._coalesce(drained)
            self.deltas_coalesced += len(drained) - len(coalesced)
            per_peer: Dict[str, List[ReplicaDelta]] = {}
            with self._lock:
                epoch = self.epoch
                for delta in coalesced:
                    for peer_name in self._route(delta):
                        per_peer.setdefault(peer_name, []).append(delta)
            for peer_name, deltas in per_peer.items():
                if peer_name in self._needs_snapshot:
                    # The stream to this peer is already broken; deltas
                    # would apply out of order.  The snapshot/bootstrap
                    # pass supersedes them.
                    self.deltas_dropped += len(deltas)
                    continue
                touched = {delta.fields.get("license_id")
                           for delta in deltas}
                budgets = {license_id: self.desired_budget(license_id)
                           for license_id in touched
                           if license_id is not None}
                batch = ReplicaBatch(source=self.name, budget=self.budget,
                                     deltas=tuple(deltas), budgets=budgets,
                                     epoch=epoch)
                acked_grants = self._grant_units(deltas)
                link = self.peers.get(peer_name)
                if link is None:
                    continue  # dropped concurrently by a promotion
                try:
                    reply = link.call("replicate", batch)
                except Exception:  # noqa: BLE001 - peer fault = resync later
                    self._needs_snapshot.add(peer_name)
                    self.deltas_dropped += len(deltas)
                    continue
                if self._fenced_reply(peer_name, reply):
                    continue
                self.batches_sent += 1
                self._ack(peer_name, acked_grants, deltas[-1].seq)
                self._ship_budgets(peer_name, budgets)

    def snapshot_now(self) -> None:
        """Reconcile every peer: WAL-shipped bootstrap for peers whose
        stream broke (when durable storage is attached), the classic
        in-memory snapshot as the anti-entropy backstop otherwise."""
        with self._flush_serial:
            with self._lock:
                fenced = set(self._fenced)
                epoch = self.epoch
            targets = [peer for peer in list(self.peers)
                       if peer not in fenced]
            if self.exporter is not None:
                needy = [peer for peer in targets
                         if peer in self._needs_snapshot]
                if needy:
                    try:
                        done = self._bootstrap_now(needy, epoch)
                    except Exception:  # noqa: BLE001 - exporter fault
                        done = set()  # fall back to classic snapshots
                    targets = [peer for peer in targets
                               if peer not in done]
            for peer_name in targets:
                self._snapshot_peer(peer_name, epoch)

    def _bootstrap_now(self, targets: List[str], epoch: int) -> Set[str]:
        """Ship one durable export to every cold peer; returns the
        peers that no longer need a classic snapshot this pass."""
        capture: Dict[str, Any] = {}

        def cut() -> None:
            # Runs inside the exporter's quiesce (every license lock
            # held, WAL synced): the replication seq here names exactly
            # the state the export contains.
            with self._lock:
                capture["seq"] = self._seq
                capture["covered"] = {
                    name: dict(self._unacked.get(name, {}))
                    for name in targets
                }

        snapshot, records = self.exporter(cut)
        budgets = {license_id: self.desired_budget(license_id)
                   for license_id in self.remote.license_ids()}
        done: Set[str] = set()
        for name in targets:
            link = self.peers.get(name)
            if link is None:
                done.add(name)
                continue
            chunk = BootstrapChunk(
                source=self.name, seq=capture["seq"], budget=self.budget,
                snapshot=snapshot, records=records, budgets=budgets,
                epoch=epoch,
            )
            try:
                reply = link.call("bootstrap", chunk)
            except Exception:  # noqa: BLE001 - retried on the next pass
                self._needs_snapshot.add(name)
                done.add(name)
                continue
            if self._fenced_reply(name, reply):
                done.add(name)
                continue
            self.bootstraps_sent += 1
            self._needs_snapshot.discard(name)
            self._ack(name, capture["covered"].get(name, {}),
                      capture["seq"])
            self._ship_budgets(name, budgets)
            done.add(name)
        return done

    def _snapshot_peer(self, peer_name: str, epoch: int) -> None:
        """Ship the classic in-memory snapshot to one peer."""
        link = self.peers.get(peer_name)
        if link is None:
            return
        licenses: Dict[str, Any] = {}
        for license_id in self.remote.license_ids():
            if peer_name not in self.followers_for(license_id):
                continue
            licenses[license_id] = \
                self.remote.export_license_state(license_id)
        # Grants already exported are replicated the moment the
        # snapshot lands; grants that raced in since are still in
        # the pending queue and stay unacked until their own flush.
        with self._lock:
            covered = {
                license_id:
                    self._unacked.get(peer_name, {}).get(license_id, 0)
                    - self._pending_grants(license_id)
                for license_id in licenses
            }
            seq = self._seq
        budgets = {license_id: self.desired_budget(license_id)
                   for license_id in licenses}
        snapshot = ShardSnapshot(
            source=self.name, seq=seq, budget=self.budget,
            licenses=licenses,
            identity=self.remote.export_identity(),
            budgets=budgets, epoch=epoch,
        )
        try:
            reply = link.call("sync_snapshot", snapshot)
        except Exception:  # noqa: BLE001 - retried on the next pass
            self._needs_snapshot.add(peer_name)
            return
        if self._fenced_reply(peer_name, reply):
            return
        self.snapshots_sent += 1
        self._needs_snapshot.discard(peer_name)
        self._ack(peer_name, covered, seq)
        self._ship_budgets(peer_name, budgets)

    def _pending_grants(self, license_id: str) -> int:
        """Grant units still queued for ``license_id`` (lock held)."""
        return sum(
            delta.fields["units"] for delta in self._pending
            if delta.event == "grant"
            and delta.fields.get("license_id") == license_id
        )

    @staticmethod
    def _grant_units(deltas: List[ReplicaDelta]) -> Dict[str, int]:
        grants: Dict[str, int] = {}
        for delta in deltas:
            if delta.event == "grant":
                license_id = delta.fields["license_id"]
                grants[license_id] = (grants.get(license_id, 0)
                                      + delta.fields["units"])
        return grants

    def _ack(self, peer_name: str, grants: Dict[str, int],
             seq: int) -> None:
        with self._lock:
            bucket = self._unacked.get(peer_name)
            if bucket is not None:
                for license_id, units in grants.items():
                    remaining = bucket.get(license_id, 0) - units
                    if remaining > 0:
                        bucket[license_id] = remaining
                    else:
                        bucket.pop(license_id, None)
                if not bucket:
                    self._unacked.pop(peer_name, None)
            if seq > self._acked_seq.get(peer_name, 0):
                self._acked_seq[peer_name] = seq
            self._ack_cond.notify_all()


# ----------------------------------------------------------------------
# Follower side
# ----------------------------------------------------------------------
@dataclass
class SourceReplica:
    """Everything this shard replicates *from* one source shard."""

    source: str
    budget: int = DEFAULT_LAG_BUDGET_UNITS
    last_seq: int = 0
    #: license_id -> mutable wire-form record (export_license_state).
    licenses: Dict[str, Any] = None  # type: ignore[assignment]
    identity: Dict[str, Any] = None  # type: ignore[assignment]
    #: license_id -> the largest adaptive lag budget the source has
    #: shipped us (falls back to the flat ``budget`` when absent).
    budgets: Dict[str, int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.licenses is None:
            self.licenses = {}
        if self.identity is None:
            self.identity = {"next_slid": 1, "clients": {}}
        if self.budgets is None:
            self.budgets = {}

    def budget_for(self, license_id: str) -> int:
        return self.budgets.get(license_id, self.budget)


class FollowerStore:
    """Replicated state held on behalf of other shards.

    Fencing: once :meth:`fence` records an epoch for a source, any
    message from that source carrying a *lower* epoch is answered with
    ``{"status": "fenced", "epoch": E}`` instead of being applied —
    the partitioned-stale-primary rejection the promotion protocol
    relies on.  (A fence at epoch 0 — legacy string promotes — rejects
    nothing: epoch-0 messages are not ``< 0``.)
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sources: Dict[str, SourceReplica] = {}
        #: source name -> epoch it was promoted away at.
        self._fenced: Dict[str, int] = {}
        self.deltas_applied = 0
        self.deltas_skipped = 0
        self.snapshots_applied = 0
        self.bootstraps_applied = 0

    # -- fencing --------------------------------------------------------
    def fence(self, source: str, epoch: int) -> None:
        with self._lock:
            if epoch > self._fenced.get(source, -1):
                self._fenced[source] = epoch

    def fences(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._fenced)

    def _fence_check(self, source: str,
                     epoch: int) -> Optional[Dict[str, Any]]:
        """Rejection envelope for a stale source, or None (lock held)."""
        fenced = self._fenced.get(source)
        if fenced is not None and epoch < fenced:
            return {"status": "fenced", "epoch": fenced}
        return None

    def _claim(self, source: str, license_ids: List[str]) -> None:
        """``source`` just proved ownership of these licenses: purge
        stale copies replicated from anyone else (lock held).  This is
        what keeps a *sequence* of promotions safe — the adopted
        license's fresh stream supersedes the dead primary's old
        replica everywhere it landed."""
        if not license_ids:
            return
        for other_name, other in self._sources.items():
            if other_name == source:
                continue
            for license_id in license_ids:
                other.licenses.pop(license_id, None)

    # -- application ----------------------------------------------------
    def apply_batch(self, batch: ReplicaBatch,
                    issue_record: Optional[Callable[[Dict[str, Any]],
                                                    Dict[str, Any]]] = None,
                    ) -> Dict[str, Any]:
        with self._lock:
            rejected = self._fence_check(batch.source, batch.epoch)
            if rejected is not None:
                return rejected
            replica = self._sources.setdefault(
                batch.source, SourceReplica(source=batch.source)
            )
            replica.budget = batch.budget
            self._merge_budgets(replica, batch.budgets)
            claimed: List[str] = []
            for delta in batch.deltas:
                if delta.seq <= replica.last_seq:
                    continue  # replayed batch; deltas are idempotent by seq
                replica.last_seq = delta.seq
                # Any delta naming a license asserts the sender's
                # ownership of it — stale copies under other (dead)
                # sources are purged even when this delta itself
                # cannot be applied yet.
                license_id = delta.fields.get("license_id")
                if license_id is not None:
                    claimed.append(license_id)
                if self._apply_delta(replica, delta, issue_record):
                    self.deltas_applied += 1
                else:
                    self.deltas_skipped += 1
            self._claim(batch.source, claimed)
            return {"status": "ok", "seq": replica.last_seq}

    def apply_snapshot(self, snapshot: ShardSnapshot) -> Dict[str, Any]:
        with self._lock:
            rejected = self._fence_check(snapshot.source, snapshot.epoch)
            if rejected is not None:
                return rejected
            replica = self._sources.setdefault(
                snapshot.source, SourceReplica(source=snapshot.source)
            )
            replica.budget = snapshot.budget
            self._merge_budgets(replica, snapshot.budgets)
            replica.last_seq = max(replica.last_seq, snapshot.seq)
            replica.licenses = dict(snapshot.licenses)
            replica.identity = snapshot.identity
            self._claim(snapshot.source, list(replica.licenses))
            self.snapshots_applied += 1
            return {"status": "ok", "seq": replica.last_seq}

    def apply_bootstrap(self, chunk: BootstrapChunk,
                        issue_record: Optional[
                            Callable[[Dict[str, Any]],
                                     Dict[str, Any]]] = None,
                        ) -> Dict[str, Any]:
        """Rebuild the replica from the source's durable state: the
        on-disk snapshot payload, then the WAL tail replayed past the
        snapshot's WAL watermark, then live deltas from ``chunk.seq``.
        """
        from repro.storage.wal import WriteAheadLog

        with self._lock:
            rejected = self._fence_check(chunk.source, chunk.epoch)
            if rejected is not None:
                return rejected
            replica = self._sources.setdefault(
                chunk.source, SourceReplica(source=chunk.source)
            )
            replica.budget = chunk.budget
            self._merge_budgets(replica, chunk.budgets)
            snapshot = chunk.snapshot or {}
            replica.licenses = {
                str(license_id): record
                for license_id, record in
                (snapshot.get("licenses") or {}).items()
            }
            identity = snapshot.get("identity")
            replica.identity = (dict(identity) if identity
                                else {"next_slid": 1, "clients": {}})
            wal_seq = int(snapshot.get("seq", 0) or 0)
            replayed = skipped = 0
            for record in WriteAheadLog.iter_frames(chunk.records):
                if record.seq <= wal_seq:
                    continue  # already folded into the snapshot
                delta = ReplicaDelta(record.seq, record.event,
                                     dict(record.fields))
                if self._apply_delta(replica, delta, issue_record):
                    replayed += 1
                else:
                    skipped += 1
            self.deltas_applied += replayed
            self.deltas_skipped += skipped
            replica.last_seq = max(replica.last_seq, chunk.seq)
            self._claim(chunk.source, list(replica.licenses))
            self.bootstraps_applied += 1
            return {"status": "ok", "seq": replica.last_seq,
                    "replayed": replayed, "skipped": skipped}

    @staticmethod
    def _merge_budgets(replica: SourceReplica,
                       budgets: Dict[str, int]) -> None:
        """Budgets only ever grow: the source may clamp against any
        budget it successfully shipped, so the reserve honours the
        largest one ever seen even if a later message carries less."""
        for license_id, units in budgets.items():
            if units > replica.budgets.get(license_id, 0):
                replica.budgets[license_id] = units

    def _apply_delta(self, replica: SourceReplica, delta: ReplicaDelta,
                     issue_record: Optional[
                         Callable[[Dict[str, Any]],
                                  Dict[str, Any]]] = None) -> bool:
        """Mutate the replica; False when the delta had nothing to hit
        (unknown license — the next snapshot reconciles it)."""
        fields = delta.fields
        event = delta.event
        if event in ("escrow", "escrow_clear"):
            clients = replica.identity.setdefault("clients", {})
            slid = str(fields["slid"])
            if event == "escrow":
                clients[slid] = {
                    "escrowed_root_key": fields["root_key"],
                    "graceful_shutdown": True,
                }
            else:
                clients[slid] = {
                    "escrowed_root_key": None,
                    "graceful_shutdown": False,
                }
            replica.identity["next_slid"] = max(
                replica.identity.get("next_slid", 1), int(slid) + 1
            )
            return True
        if event == "admit":
            clients = replica.identity.setdefault("clients", {})
            slid = str(fields["slid"])
            clients.setdefault(slid, {"escrowed_root_key": None,
                                      "graceful_shutdown": False})
            replica.identity["next_slid"] = max(
                replica.identity.get("next_slid", 1), int(slid) + 1
            )
            return True
        if event == "install_identity":
            payload = fields["identity"]
            clients = replica.identity.setdefault("clients", {})
            for slid, entry in payload.get("clients", {}).items():
                clients[slid] = dict(entry)
            replica.identity["next_slid"] = max(
                replica.identity.get("next_slid", 1),
                int(payload.get("next_slid", 1)),
            )
            return True
        if event == "install_license":
            # A migration/promotion moved a whole record onto the
            # source: replicate it wholesale (it arrives with holdings
            # and ledger intact, unlike an "issue").
            replica.licenses[fields["license_id"]] = fields["record"]
            return True
        if event == "release":
            # Migrated away from the source: the new owner replicates
            # it now; holding a stale copy here risks double-serving.
            return replica.licenses.pop(fields["license_id"], None) is not None
        if event == "issue":
            # An "issue" delta carries no secret, so the record cannot
            # be built from the delta alone — unless the manager lends
            # us its fleet-shared secret via ``issue_record``; absent
            # that, the next snapshot pass delivers it.
            if issue_record is not None:
                replica.licenses[fields["license_id"]] = \
                    issue_record(fields)
                return True
            return False
        record = replica.licenses.get(fields.get("license_id"))
        if record is None:
            return False
        ledger = record["ledger"]
        holdings = record.setdefault("holdings", {})
        if event == "grant":
            key, units = fields["node_key"], fields["units"]
            ledger["outstanding"][key] = (
                ledger["outstanding"].get(key, 0) + units
            )
            slid = _slid_of(key)
            holdings[slid] = holdings.get(slid, 0) + units
            return True
        if event == "return":
            key, units = fields["node_key"], fields["units"]
            ledger["outstanding"][key] = max(
                0, ledger["outstanding"].get(key, 0) - units
            )
            slid = _slid_of(key)
            holdings[slid] = max(0, holdings.get(slid, 0) - units)
            return True
        if event == "writeoff":
            key, units = fields["node_key"], fields["units"]
            ledger["outstanding"][key] = max(
                0, ledger["outstanding"].get(key, 0) - units
            )
            ledger["lost_units"] += units
            holdings.pop(_slid_of(key), None)
            return True
        if event == "revoke":
            record["definition"]["revoked"] = True
            return True
        return False

    # -- promotion ------------------------------------------------------
    def take_source(self, source: str) -> Optional[SourceReplica]:
        """Remove and return everything replicated from ``source``."""
        with self._lock:
            return self._sources.pop(source, None)

    def licenses_of(self, source: str) -> List[str]:
        with self._lock:
            replica = self._sources.get(source)
            return sorted(replica.licenses) if replica is not None else []

    def take_license(self, source: str,
                     license_id: str) -> Optional[Tuple[Any, int]]:
        """Pop one replicated record; returns ``(record, budget)``."""
        with self._lock:
            replica = self._sources.get(source)
            if replica is None:
                return None
            record = replica.licenses.pop(license_id, None)
            if record is None:
                return None
            return record, replica.budget_for(license_id)

    def discard_license(self, source: str, license_id: str) -> None:
        with self._lock:
            replica = self._sources.get(source)
            if replica is not None:
                replica.licenses.pop(license_id, None)

    def identity_of(self, source: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            replica = self._sources.get(source)
            if replica is None:
                return None
            return {
                "next_slid": replica.identity.get("next_slid", 1),
                "clients": {slid: dict(entry) for slid, entry in
                            replica.identity.get("clients", {}).items()},
            }

    def probe(self) -> Dict[str, Any]:
        with self._lock:
            return {
                source: {
                    "last_seq": replica.last_seq,
                    "budget": replica.budget,
                    "budgets": dict(replica.budgets),
                    "licenses": sorted(replica.licenses),
                }
                for source, replica in self._sources.items()
            }


# ----------------------------------------------------------------------
# Both sides, wired for one shard process
# ----------------------------------------------------------------------
class ReplicationManager:
    """One shard's replication role: source to followers, store for peers.

    ``peers`` maps peer shard name -> :class:`PeerLink`; an empty map
    (single-shard fleet, or replication off) degrades to a follower
    store only — the wire surface stays mounted so a probe or promote
    is still answerable (with nothing in it).

    ``followers_for(license_id)`` names the K peers replicating a
    license; ``owners_for(license_id)`` (optional) names the *full*
    ring order for it, which promotion uses to decide the adopter —
    the first owner not known dead.  ``quorum`` > 0 gates the
    ``init``/``shutdown`` handlers on that many follower acks of the
    identity watermark.  ``persistence`` (a
    :class:`~repro.storage.wal.ShardPersistence`) switches cold-peer
    reconciliation to WAL-shipped bootstrap.
    """

    def __init__(
        self,
        remote,
        name: str,
        peers: Optional[Dict[str, PeerLink]] = None,
        followers_for: Optional[Callable[[str], Sequence[str]]] = None,
        *,
        owners_for: Optional[Callable[[str], Sequence[str]]] = None,
        quorum: int = 0,
        quorum_timeout: float = DEFAULT_QUORUM_TIMEOUT,
        lag_budget_units: int = DEFAULT_LAG_BUDGET_UNITS,
        lag_budget_grants: int = DEFAULT_LAG_BUDGET_GRANTS,
        flush_interval: float = 0.02,
        snapshot_interval: float = 0.5,
        persistence=None,
        follower_for: Optional[Callable[[str], Optional[str]]] = None,
    ) -> None:
        self.remote = remote
        self.name = name
        self.store = FollowerStore()
        self.source: Optional[ReplicationSource] = None
        #: Highest promotion epoch this shard has participated in;
        #: stamped on outbound replication traffic via the source.
        self.epoch = 0
        self.quorum = max(0, int(quorum))
        self.quorum_timeout = quorum_timeout
        self.quorum_timeouts = 0
        self.owners_for = owners_for
        self._promote_lock = threading.Lock()
        #: source name -> {license_id: reserved units} for promotions
        #: already performed (the idempotency memo every extra router
        #: asking again is answered from).
        self._promoted: Dict[str, Dict[str, int]] = {}
        if followers_for is None and follower_for is not None:
            # Back-compat shim: a single-follower placement rule.
            def followers_for(license_id: str,
                              _single=follower_for) -> Sequence[str]:
                peer = _single(license_id)
                return [peer] if peer is not None else []
        if peers:
            if followers_for is None:
                raise ValueError("peers need a followers_for placement rule")
            self.source = ReplicationSource(
                remote, name, peers, followers_for,
                lag_budget_units=lag_budget_units,
                lag_budget_grants=lag_budget_grants,
                flush_interval=flush_interval,
                snapshot_interval=snapshot_interval,
            )
            if persistence is not None:
                self.source.exporter = persistence.export_bootstrap

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        if self.source is not None:
            self.source.start()

    def stop(self) -> None:
        if self.source is not None:
            self.source.stop()

    # -- wire surface ---------------------------------------------------
    def extra_handlers(self) -> Dict[str, Callable]:
        handlers: Dict[str, Callable] = {
            "replicate": self.handle_replicate,
            "sync_snapshot": self.handle_snapshot,
            "bootstrap": self.handle_bootstrap,
            "promote": self.handle_promote,
            "replication_probe": self.handle_probe,
        }
        if self.source is not None and self.quorum > 0:
            # Identity quorum: hold the client's ack until a majority
            # of live followers could survive this shard's death with
            # the admit/escrow intact.  Mounted as extra handlers so
            # they override the remote's own protocol bindings.
            protocol = self.remote.protocol_handlers()
            for method in ("init", "shutdown"):
                inner = protocol.get(method)
                if inner is not None:
                    handlers[method] = self._gated(inner)
        return handlers

    def _gated(self, inner: Callable) -> Callable:
        # The wrapper must advertise clock/stats so HandlerTable's
        # signature introspection keeps threading them through to the
        # wrapped protocol handler.
        parameters = inspect.signature(inner).parameters
        wants = {name for name in ("clock", "stats") if name in parameters}

        def gated(request: Any, clock: Any = None, stats: Any = None) -> Any:
            kwargs = {}
            if "clock" in wants and clock is not None:
                kwargs["clock"] = clock
            if "stats" in wants and stats is not None:
                kwargs["stats"] = stats
            response = inner(request, **kwargs)
            if not self.source.wait_identity_quorum(
                    self.quorum, timeout=self.quorum_timeout):
                self.quorum_timeouts += 1
            return response
        return gated

    def handle_replicate(self, batch: ReplicaBatch) -> Dict[str, Any]:
        return self.store.apply_batch(batch,
                                      issue_record=self._issue_record)

    def handle_snapshot(self, snapshot: ShardSnapshot) -> Dict[str, Any]:
        return self.store.apply_snapshot(snapshot)

    def handle_bootstrap(self, chunk: BootstrapChunk) -> Dict[str, Any]:
        return self.store.apply_bootstrap(chunk,
                                          issue_record=self._issue_record)

    def _issue_record(self, fields: Dict[str, Any]) -> Dict[str, Any]:
        """Synthesize the wire record for an ``issue`` delta.

        WAL/delta "issue" events deliberately omit the license secret;
        fleet shards share the server secret, so the follower can
        rebuild the full record locally instead of waiting for a
        snapshot to deliver it.
        """
        license_id = fields["license_id"]
        return {
            "definition": {
                "license_id": license_id,
                "kind": fields["kind"],
                "total_units": fields["total_units"],
                "tick_seconds": fields.get("tick_seconds", 0.0),
                "secret": self.remote._server_secret.hex(),
                "revoked": False,
            },
            "ledger": {
                "license_id": license_id,
                "total_gcl": fields["total_units"],
                "beta": self.remote.policy.default_beta,
                "outstanding": {},
                "lost_units": 0,
                "node_conditions": {},
            },
            "frozen": False,
            "holdings": {},
        }

    def handle_probe(self, _payload: Any = None) -> Dict[str, Any]:
        result = {
            "name": self.name,
            "epoch": self.epoch,
            "quorum": self.quorum,
            "follows": self.store.probe(),
            "fences": self.store.fences(),
            "promoted": {source: dict(reserves)
                         for source, reserves in self._promoted.items()},
        }
        if self.source is not None:
            with self.source._lock:
                unacked = {peer: dict(bucket) for peer, bucket
                           in self.source._unacked.items()}
                peaks = dict(self.source._peak)
                shipped = {peer: dict(bucket) for peer, bucket
                           in self.source._shipped.items()}
                acked_seq = dict(self.source._acked_seq)
                seq = self.source._seq
                identity_seq = self.source._identity_seq
                fenced = dict(self.source._fenced)
            result["replicates"] = {
                "budget": self.source.budget,
                "grants_budget": self.source.grants_budget,
                "seq": seq,
                "identity_seq": identity_seq,
                "unacked": unacked,
                "peaks": peaks,
                "shipped": shipped,
                "acked_seq": acked_seq,
                "fenced": fenced,
                "batches_sent": self.source.batches_sent,
                "snapshots_sent": self.source.snapshots_sent,
                "bootstraps_sent": self.source.bootstraps_sent,
                "fenced_rejections": self.source.fenced_rejections,
            }
        return result

    def health(self) -> Dict[str, Any]:
        """Replication health for ``_server_stats``: per-peer ack lag,
        epoch, quorum size and shipping counters."""
        result: Dict[str, Any] = {
            "epoch": self.epoch,
            "quorum": self.quorum,
            "quorum_timeouts": self.quorum_timeouts,
            "promoted": sorted(self._promoted),
            "follows": {
                "deltas_applied": self.store.deltas_applied,
                "deltas_skipped": self.store.deltas_skipped,
                "snapshots_applied": self.store.snapshots_applied,
                "bootstraps_applied": self.store.bootstraps_applied,
            },
        }
        source = self.source
        if source is not None:
            with source._lock:
                seq = source._seq
                identity_seq = source._identity_seq
                peers = {
                    peer: {
                        "acked_seq": source._acked_seq.get(peer, 0),
                        "ack_lag": max(
                            0, seq - source._acked_seq.get(peer, 0)),
                        "needs_snapshot": peer in source._needs_snapshot,
                        "fenced": peer in source._fenced,
                    }
                    for peer in source.peers
                }
            result["replicates"] = {
                "seq": seq,
                "identity_seq": identity_seq,
                "peers": peers,
                "grants_budget": source.grants_budget,
                "batches_sent": source.batches_sent,
                "snapshots_sent": source.snapshots_sent,
                "bootstraps_sent": source.bootstraps_sent,
                "fenced_rejections": source.fenced_rejections,
            }
        return result

    def _adopter_of(self, license_id: str, dead: Set[str]) -> str:
        """The shard that should install a dead primary's license: the
        first owner in full ring order that is not known dead.  With
        no ring knowledge (legacy single-follower wiring) the answer
        is always *us* — we were the only replica."""
        if self.owners_for is None:
            return self.name
        for owner in self.owners_for(license_id):
            if owner not in dead:
                return owner
        return self.name

    def handle_promote(self, request: Any) -> Dict[str, Any]:
        """Fold replicas held for a dead ``source`` into serving state.

        Accepts a legacy bare source name or ``{"source", "epoch"}``.
        The epoch fences the dead source in the follower store (its
        late traffic is rejected, not applied) and ratchets this
        shard's own epoch so its outbound stream outranks the deposed
        primary's.

        The pessimistic-loss rule, scoped to the lag window: for each
        *adopted* license, ``min(available, shipped budget)`` units
        are moved to ``lost`` before installing — every grant the dead
        primary made that this replica never saw is covered by that
        reserve, because the source only ever clamped grants against
        budgets its followers had already acknowledged.  Every call
        rescans *all* dead sources, so a simultaneous second death is
        healed by whichever survivor is next in ring order per
        license.  Idempotent: the first caller does the work, every
        later caller gets the memo.
        """
        if isinstance(request, dict):
            source = request["source"]
            epoch = int(request.get("epoch", 0))
        else:
            source, epoch = str(request), 0
        self.store.fence(source, epoch)
        if self.source is not None:
            # The fleet shrank: stop streaming to (and backpressuring
            # for) the dead shard.
            self.source.drop_peer(source)
        with self._promote_lock:
            if epoch > self.epoch:
                self.epoch = epoch
                if self.source is not None:
                    self.source.epoch = epoch
            already = source in self._promoted
            self._promoted.setdefault(source, {})
            dead = set(self._promoted)
            served = set(self.remote.license_ids())
            for dead_source in sorted(dead):
                memo = self._promoted.setdefault(dead_source, {})
                for license_id in self.store.licenses_of(dead_source):
                    if license_id in served:
                        # Already serving it (migrated here while the
                        # source was live, or adopted in an earlier
                        # pass): the stale replica copy must go.
                        self.store.discard_license(dead_source,
                                                   license_id)
                        continue
                    if self._adopter_of(license_id, dead) != self.name:
                        # Another survivor outranks us in ring order;
                        # keep the replica in case it dies too.
                        continue
                    taken = self.store.take_license(dead_source,
                                                    license_id)
                    if taken is None:
                        continue
                    record, budget = taken
                    ledger = record["ledger"]
                    reserve = min(max(_wire_available(ledger), 0), budget)
                    ledger["lost_units"] += reserve
                    record["frozen"] = False
                    self.remote.install_license_state(record)
                    served.add(license_id)
                    memo[license_id] = reserve
            if not already:
                identity = self.store.identity_of(source)
                if identity is not None:
                    self.remote.install_identity(identity)
            return {"status": "ok", "already": already,
                    "installed": dict(self._promoted[source]),
                    "epoch": self.epoch}
