"""Event-loop lease serving and a pipelining socket client.

The paper's deployment shape is one vendor SL-Remote in front of a
large fleet of mostly-idle SL-Locals that wake up only to renew their
sub-GCLs.  That is the many-idle-connections regime where the
thread-per-connection :class:`~repro.net.server.LeaseServer` stops
scaling long before the per-license locks do: every idle socket costs a
resident OS thread.  This module holds connections on a single
``asyncio`` event loop instead, so an idle SL-Local costs one reader
callback and nothing else:

* :class:`AsyncLeaseServer` — one event loop accepts and frames
  thousands of connections; decoded requests are dispatched into a
  **bounded** worker pool (``run_in_executor``), so the license-lock-
  holding :class:`~repro.core.sl_remote.SlRemote` handlers stay
  synchronous and the sharding release's concurrency semantics are
  untouched.  Responses are written as handlers finish — out of order
  when the client opted into pipelining, strictly in order otherwise.
* :class:`AsyncTcpTransport` — a drop-in
  :class:`~repro.net.transport.Transport` that keeps **multiple
  requests in flight on one socket**.  Each request envelope is tagged
  with a correlation id in the codec-v2 envelope metadata
  (:data:`~repro.net.codec.CORRELATION_KEY`); a background reader
  matches responses back to callers whatever order they return in.
  Transports share one module-level event-loop thread, so a hundred
  client handles cost one thread, not a hundred.

Ordering contract (how v1 peers stay compatible)
------------------------------------------------
A request **without** a correlation tag — a v1 peer, or the strict-
ordered :class:`~repro.net.transport.TcpTransport` — is dispatched and
answered before the next frame of that connection is read, exactly like
the threaded server, so position-matching clients never see a reorder.
A request **with** a tag runs concurrently and its response carries the
tag back.  One connection can be as pipelined as its client asked for,
and no more.

Connection resilience mirrors :class:`~repro.net.transport.TcpTransport`:
dialing has its own reconnect budget with exponential backoff, separate
from the per-call retry budget, and a mid-session server restart is
survived by re-dialing and simply continuing — every request carries the
SLID, and all server-side session state (identity, ledgers, escrowed
root keys) is keyed by it, not by the socket.
"""

from __future__ import annotations

import asyncio
import socket as _socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Tuple

from repro.net import codec
from repro.net.endpoint import EndpointConfig
from repro.net.errors import (
    DialError,
    Overloaded,
    RetriesExhausted,
    TamperedFrame,
    TransportError,
)
from repro.core.protocol import BatchRequest, BatchResponse
from repro.net.server import (
    ConnectionWire,
    WireStats,
    attach_server_stats,
    negotiate_hello,
    overload_frame,
)
from repro.net.transport import (
    HandlerTable,
    RenewCoalescer,
    RTT_EWMA_ALPHA,
    Transport,
)
from repro.net.network import NetworkConditions
from repro.sgx.driver import SgxStats, ThreadSafeSgxStats
from repro.sim.clock import Clock, ThreadSafeClock, seconds_to_cycles


class AsyncLeaseServer:
    """Serve one SL-Remote (or a sharded fleet) on a single event loop.

    API-compatible with :class:`~repro.net.server.LeaseServer` —
    ``start()/stop()/wait()``, the same counters, the same handler
    dispatch with the server-owned clock/stats — so every wiring point
    (CLI, cluster, benchmarks) can switch IO backends with one knob.

    ``max_workers`` bounds the dispatch pool: that many handler calls
    run concurrently (contending only on per-license locks), while any
    number of idle connections wait on the loop for free.
    ``max_connections`` sheds accepts beyond the cap with the same typed
    error envelope as the threaded server.
    """

    def __init__(self, remote, host: str = "127.0.0.1", port: int = 0,
                 clock: Optional[Clock] = None,
                 stats: Optional[SgxStats] = None,
                 accept_backlog: int = 128,
                 max_workers: int = 8,
                 max_connections: Optional[int] = None,
                 extra_handlers=None,
                 wire: int = codec.WIRE_V3) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if max_connections is not None and max_connections < 1:
            raise ValueError("max_connections must be at least 1")
        if wire not in codec.SUPPORTED_WIRE_VERSIONS:
            raise ValueError(
                f"unknown wire version {wire!r}; supported: "
                f"{codec.SUPPORTED_WIRE_VERSIONS}"
            )
        self.remote = remote
        self.handlers = HandlerTable(remote.protocol_handlers())
        for method, handler in (extra_handlers or {}).items():
            self.handlers.register(method, handler, override=True)
        self.host = host
        self.port = port
        self.clock = clock if clock is not None else ThreadSafeClock()
        self.stats = stats if stats is not None else ThreadSafeSgxStats()
        self.accept_backlog = accept_backlog
        self.max_workers = max_workers
        self.max_connections = max_connections
        #: Negotiation ceiling: the highest wire version this server
        #: will agree to in a hello exchange.
        self.wire = wire
        self.wire_stats = WireStats()
        self.requests_served = 0
        self.errors_returned = 0
        self.connections_accepted = 0
        self.connections_shed = 0
        self.open_connections = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._stopping = threading.Event()
        self._conn_tasks: set = set()
        attach_server_stats(self.handlers, self, io_name="async")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> Tuple[str, int]:
        """Spin up the event-loop thread, bind, listen; returns (host, port)."""
        if self._loop_thread is not None:
            raise RuntimeError("server already started")
        self._loop_thread = threading.Thread(
            target=self._run_loop, name="lease-aio-loop", daemon=True
        )
        self._loop_thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("async lease server failed to start in time")
        if self._startup_error is not None:
            self._loop_thread.join(timeout=2.0)
            self._loop_thread = None
            raise self._startup_error
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    @property
    def live_workers(self) -> int:
        """Dispatch-pool upper bound (there is no thread per connection)."""
        return self.max_workers

    def stop(self) -> None:
        """Close the listener, drain, and stop the event loop."""
        self._stopping.set()
        loop, stop_event = self._loop, self._stop_event
        if loop is not None and stop_event is not None and loop.is_running():
            loop.call_soon_threadsafe(stop_event.set)
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=5.0)
            self._loop_thread = None

    def wait(self) -> None:
        """Block the calling thread until :meth:`stop` (CLI foreground)."""
        self._stopping.wait()

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        finally:
            asyncio.set_event_loop(None)
            loop.close()

    async def _main(self) -> None:
        self._stop_event = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="lease-aio-worker"
        )
        try:
            server = await asyncio.start_server(
                self._serve_connection, self.host, self.port,
                backlog=self.accept_backlog,
            )
        except OSError as exc:
            self._startup_error = exc
            self._started.set()
            self._executor.shutdown(wait=False)
            return
        self._server = server
        self.host, self.port = server.sockets[0].getsockname()[:2]
        self._started.set()
        try:
            await self._stop_event.wait()
        finally:
            server.close()
            await server.wait_closed()
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(*self._conn_tasks,
                                     return_exceptions=True)
            self._executor.shutdown(wait=False)
            self._stopping.set()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        sock = writer.get_extra_info("socket")
        if sock is not None:
            try:
                # Keep the port rebindable across restarts even while
                # accepted sockets linger in FIN_WAIT (mirrors the
                # threaded server).
                sock.setsockopt(_socket.SOL_SOCKET, _socket.SO_REUSEADDR, 1)
            except OSError:
                pass
        if (self.max_connections is not None
                and self.open_connections >= self.max_connections):
            # Same typed brush-off as the threaded server's accept cap.
            self.connections_shed += 1
            try:
                writer.write(overload_frame())
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            finally:
                writer.close()
            return
        self.connections_accepted += 1
        self.open_connections += 1
        this_task = asyncio.current_task()
        if this_task is not None:
            self._conn_tasks.add(this_task)
        write_lock = asyncio.Lock()
        in_flight: set = set()
        conn_wire = ConnectionWire()
        try:
            while True:
                try:
                    header = await reader.readexactly(codec.FRAME_HEADER.size)
                    data = await reader.readexactly(codec.frame_length(header))
                except (asyncio.IncompleteReadError, ConnectionError,
                        OSError):
                    return  # peer gone
                except codec.CodecError:
                    # A length prefix past MAX_FRAME_BYTES: stream sync
                    # is unrecoverable so the connection must die, but
                    # the tampered frame is counted first (mirrors the
                    # threaded server).
                    self.wire_stats.note_rejected()
                    return
                self.wire_stats.note_decoded(
                    len(data) + codec.FRAME_HEADER.size
                )
                # Replies speak whatever format the request arrived in
                # (same contract as the threaded server).
                reply_version = (codec.WIRE_V3 if codec.is_binary_frame(data)
                                 else codec.WIRE_VERSION)
                try:
                    method, payload, request_id, meta = \
                        codec.decode_request_envelope(data)
                except codec.CodecError as exc:
                    # Framing held but the payload would not decode:
                    # tampering evidence — typed error envelope back,
                    # and the rejection is counted for audits.
                    self.wire_stats.note_rejected()
                    self.errors_returned += 1
                    await self._write(writer, write_lock, codec.encode_error(
                        f"{type(exc).__name__}: {exc}", 0,
                        version=reply_version,
                    ))
                    continue
                corr = meta.get(codec.CORRELATION_KEY)
                if method == codec.HELLO_METHOD:
                    # Negotiation is pure loop-side state — answer inline
                    # without burning an executor slot.
                    hello_meta = ({codec.CORRELATION_KEY: corr}
                                  if corr is not None else None)
                    try:
                        response = negotiate_hello(
                            payload, self.wire, conn_wire, self.wire_stats
                        )
                    except Exception as exc:  # noqa: BLE001
                        self.errors_returned += 1
                        reply = codec.encode_error(
                            f"{type(exc).__name__}: {exc}", request_id,
                            meta=hello_meta, version=reply_version,
                        )
                    else:
                        self.requests_served += 1
                        reply = codec.encode_response(
                            response, request_id,
                            meta=hello_meta, version=reply_version,
                        )
                    await self._write(writer, write_lock, reply)
                    continue
                if not conn_wire.recorded:
                    # First lease frame from a peer that skipped
                    # negotiation: record the version it is observed
                    # speaking.
                    conn_wire.record(self.wire_stats,
                                     codec.wire_version_of(data))
                if method == "renew_batch" and hasattr(payload, "requests"):
                    self.wire_stats.note_batch(len(payload.requests))
                handling = self._respond(
                    method, payload, request_id, corr, writer, write_lock,
                    reply_version,
                )
                if corr is None:
                    # Strict-ordered mode: a peer that did not tag the
                    # request matches responses by position, so answer
                    # before reading its next frame (threaded-server
                    # semantics).
                    await handling
                else:
                    task = asyncio.get_running_loop().create_task(handling)
                    in_flight.add(task)
                    task.add_done_callback(in_flight.discard)
        finally:
            for task in in_flight:
                task.cancel()
            if this_task is not None:
                self._conn_tasks.discard(this_task)
            self.open_connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, method: str, payload: Any, request_id: int,
                       corr: Optional[Any], writer: asyncio.StreamWriter,
                       write_lock: asyncio.Lock,
                       reply_version: int = codec.WIRE_VERSION) -> None:
        meta = {codec.CORRELATION_KEY: corr} if corr is not None else None
        try:
            response = await asyncio.get_running_loop().run_in_executor(
                self._executor, self._dispatch, method, payload
            )
        except Exception as exc:  # noqa: BLE001 - every fault becomes a wire error
            self.errors_returned += 1
            reply = codec.encode_error(
                f"{type(exc).__name__}: {exc}", request_id, meta=meta,
                version=reply_version,
            )
        else:
            self.requests_served += 1
            reply = codec.encode_response(response, request_id, meta=meta,
                                          version=reply_version)
        await self._write(writer, write_lock, reply)

    def _dispatch(self, method: str, payload: Any):
        """Runs on a pool thread: sync handlers, per-license locks inside."""
        return self.handlers.dispatch(
            method, payload, clock=self.clock, stats=self.stats
        )

    async def _write(self, writer: asyncio.StreamWriter,
                     write_lock: asyncio.Lock, reply: bytes) -> None:
        framed = codec.frame(reply)
        self.wire_stats.note_encoded(len(framed))
        async with write_lock:
            try:
                writer.write(framed)
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # peer vanished between dispatch and reply


# ----------------------------------------------------------------------
# The pipelining client
# ----------------------------------------------------------------------
#: One event-loop thread shared by every AsyncTcpTransport in the
#: process — client handles are cheap, the loop is the resource.
_client_loop: Optional[asyncio.AbstractEventLoop] = None
_client_loop_lock = threading.Lock()


def _shared_client_loop() -> asyncio.AbstractEventLoop:
    global _client_loop
    with _client_loop_lock:
        if _client_loop is None or _client_loop.is_closed():
            loop = asyncio.new_event_loop()
            ready = threading.Event()

            def run() -> None:
                asyncio.set_event_loop(loop)
                loop.call_soon(ready.set)
                loop.run_forever()

            thread = threading.Thread(
                target=run, name="lease-aio-client", daemon=True
            )
            thread.start()
            ready.wait(timeout=10.0)
            _client_loop = loop
        return _client_loop


class AsyncTcpTransport(Transport):
    """Pipelining socket client for a lease server.

    The synchronous :meth:`request` contract is unchanged — SL-Local
    and the shard router call it exactly like
    :class:`~repro.net.transport.TcpTransport` — but many caller
    threads can have requests in flight **on the same socket** at once:
    each request is tagged with a correlation id in the v2 envelope
    metadata, and a reader task on the shared client event loop routes
    each response (in whatever order the server finishes them) back to
    the caller that asked.

    Retry/backoff, virtual-RTT accounting, and the reconnect budget all
    mirror ``TcpTransport``, so ``observed_reliability`` and the link
    charging model read identically across backends.
    """

    name = "async-tcp"

    def __init__(
        self,
        host: str,
        port: int,
        conditions: Optional[NetworkConditions] = None,
        timeout_seconds: float = 5.0,
        max_attempts: int = 5,
        backoff_seconds: float = 0.05,
        reconnect_attempts: int = 4,
        reconnect_backoff_seconds: float = 0.05,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        config: Optional[EndpointConfig] = None,
    ) -> None:
        # Knob validation is EndpointConfig's job (shared with the
        # threaded transport); the legacy keyword form builds one.
        if config is None:
            config = EndpointConfig(
                timeout_seconds=timeout_seconds,
                max_attempts=max_attempts,
                backoff_seconds=backoff_seconds,
                reconnect_attempts=reconnect_attempts,
                reconnect_backoff_seconds=reconnect_backoff_seconds,
            )
        self.config = config
        self.host = host
        self.port = port
        self.conditions = conditions if conditions is not None else NetworkConditions()
        self.timeout_seconds = config.timeout_seconds
        self.max_attempts = config.max_attempts
        self.backoff_seconds = config.backoff_seconds
        self.reconnect_attempts = config.reconnect_attempts
        self.reconnect_backoff_seconds = config.reconnect_backoff_seconds
        self._loop = loop
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._conn_lock: Optional[asyncio.Lock] = None
        #: corr -> future, loop-confined.
        self._pending: Dict[int, asyncio.Future] = {}
        self._next_corr = 1
        self._ever_connected = False
        self._counters_lock = threading.Lock()
        self.messages_sent = 0
        self.messages_dropped = 0
        self.reconnects = 0
        #: Reply frames that failed to decode (tampered/corrupted):
        #: surfaced as typed :class:`TamperedFrame` errors, never
        #: silently retried.
        self.frames_rejected = 0
        #: EWMA of the *real* round-trip time of completed exchanges —
        #: the latency half of the telemetry renewals carry upstream.
        self.rtt_ewma_seconds = 0.0
        self._closed = False
        #: Preferred wire version; the connection's actual version is
        #: negotiated on dial and recorded in ``negotiated_wire``.
        self.wire = getattr(config, "wire", codec.WIRE_VERSION)
        self.negotiated_wire: Optional[int] = None
        #: Per-frame link accounting: every physical frame is charged
        #: once with its actual serialized length, so a batch of N
        #: coalesced renewals bills one frame, not N messages.
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_sent = 0
        self.frames_received = 0
        window = getattr(config, "batch_window", 0.0)
        self.coalescer: Optional[RenewCoalescer] = (
            RenewCoalescer(window) if window > 0 else None
        )

    # -- the round trip (caller thread) --------------------------------
    def request(self, method: str, payload: object,
                clock: Optional[Clock] = None,
                stats: Optional[SgxStats] = None):
        if clock is None:
            raise TransportError(
                "AsyncTcpTransport cannot bypass the network: a real wire "
                "has no local fast path"
            )
        if self._closed:
            raise TransportError("transport is closed")
        if method == "renew" and self.coalescer is not None:
            # The caller's own virtual RTT, then one seat in the shared
            # frame; the leader's send path skips its per-call RTT so the
            # frame itself is never double-billed.
            clock.advance(
                seconds_to_cycles(self.conditions.round_trip_seconds)
            )
            return self.coalescer.submit(
                payload, lambda batch: self._send_batch(batch, clock, stats)
            )
        return self._request_single(method, payload, clock, stats)

    def _send_batch(self, payloads: list, clock: Clock,
                    stats: Optional[SgxStats]):
        response = self._request_single(
            "renew_batch", BatchRequest(requests=tuple(payloads)),
            clock, stats, charge_rtt=False,
        )
        if not isinstance(response, BatchResponse) \
                or len(response.responses) != len(payloads):
            raise TransportError(
                f"malformed batch response for {len(payloads)} renewals: "
                f"{type(response).__name__}"
            )
        return list(response.responses)

    def _request_single(self, method: str, payload: object,
                        clock: Clock, stats: Optional[SgxStats],
                        charge_rtt: bool = True):
        loop = self._ensure_loop()
        last_error: Optional[Exception] = None
        for attempt in range(1, self.max_attempts + 1):
            # Virtual accounting first: a lost/timed-out request is
            # detected a full RTT later, same as SimulatedLink.
            if charge_rtt or attempt > 1:
                clock.advance(
                    seconds_to_cycles(self.conditions.round_trip_seconds)
                )
            with self._counters_lock:
                self.messages_sent += 1
            future = asyncio.run_coroutine_threadsafe(
                self._round_trip(method, payload), loop
            )
            started = time.monotonic()
            try:
                result = future.result()
                self._note_rtt(time.monotonic() - started)
                return result
            except codec.RemoteCallError:
                # The server answered — a complete round trip.
                self._note_rtt(time.monotonic() - started)
                raise  # retrying cannot help
            except Overloaded:
                raise  # the server answered by shedding; same story
            except DialError:
                # A whole reconnect budget just failed; re-dialing
                # max_attempts more times would only multiply budgets.
                with self._counters_lock:
                    self.messages_dropped += 1
                raise
            except codec.CodecError as exc:
                # The reply failed to decode: tampering evidence, not
                # loss.  Retrying would hide the tamper (and race a
                # desynchronized stream); the reader loop already tore
                # the connection down, so surface the typed error.
                with self._counters_lock:
                    self.messages_dropped += 1
                    self.frames_rejected += 1
                raise TamperedFrame(
                    f"async tcp reply for {method!r} from "
                    f"{self.host}:{self.port} failed to decode: {exc}",
                    host=self.host, port=self.port,
                ) from exc
            except (ConnectionError, OSError, EOFError) as exc:
                with self._counters_lock:
                    self.messages_dropped += 1
                last_error = exc
                if attempt < self.max_attempts:
                    time.sleep(self.backoff_seconds * (2 ** (attempt - 1)))
        raise RetriesExhausted(
            f"async tcp request {method!r} to {self.host}:{self.port} failed "
            f"after {self.max_attempts} attempts: {last_error}",
            attempts=self.max_attempts,
        )

    def close(self) -> None:
        self._closed = True
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        asyncio.run_coroutine_threadsafe(
            self._teardown(ConnectionError("transport closed")), loop
        ).result(timeout=5.0)

    def _note_rtt(self, seconds: float) -> None:
        with self._counters_lock:
            if self.rtt_ewma_seconds <= 0.0:
                self.rtt_ewma_seconds = seconds
            else:
                self.rtt_ewma_seconds += RTT_EWMA_ALPHA * (
                    seconds - self.rtt_ewma_seconds
                )

    @property
    def observed_reliability(self) -> float:
        """Empirical delivery rate, mirroring SimulatedLink's probe."""
        if self.messages_sent == 0:
            return self.conditions.reliability
        return (self.messages_sent - self.messages_dropped) / self.messages_sent

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            self._loop = _shared_client_loop()
        return self._loop

    # -- loop-confined internals ---------------------------------------
    async def _round_trip(self, method: str, payload: object):
        reader, writer = await self._ensure_connection()
        corr = self._next_corr
        self._next_corr += 1
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[corr] = future
        version = self.negotiated_wire or codec.WIRE_VERSION
        frame = codec.frame(codec.encode_request(
            method, payload, corr, version=version,
            meta={codec.CORRELATION_KEY: corr},
        ))
        try:
            try:
                writer.write(frame)
                await writer.drain()
                # One physical frame = one charge, whatever it coalesces.
                with self._counters_lock:
                    self.bytes_sent += len(frame)
                    self.frames_sent += 1
            except (ConnectionError, OSError) as exc:
                # The socket died under the write: drop it now so the
                # caller's next attempt re-dials instead of re-failing.
                await self._teardown(exc)
                raise
            # A response timeout does NOT tear the connection down: a
            # late reply is harmless here (its future is gone and the
            # frame is simply dropped), unlike the strict-ordered client
            # where it would desynchronize position matching.
            reply: codec.WireReply = await asyncio.wait_for(
                future, timeout=self.timeout_seconds
            )
        finally:
            self._pending.pop(corr, None)
        if reply.kind == "error" and reply.meta.get("overloaded"):
            # The server answered by shedding this connection (it closes
            # the socket next; the reader loop's teardown handles that).
            raise Overloaded(reply.error or "server overloaded")
        return reply.deliver()

    async def _ensure_connection(
        self
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        if self._conn_lock is None:
            self._conn_lock = asyncio.Lock()
        async with self._conn_lock:
            if self._writer is not None:
                return self._reader, self._writer
            last_error: Optional[OSError] = None
            for attempt in range(1, self.reconnect_attempts + 1):
                try:
                    reader, writer = await asyncio.wait_for(
                        asyncio.open_connection(self.host, self.port),
                        timeout=self.timeout_seconds,
                    )
                except OSError as exc:
                    last_error = exc
                    if attempt < self.reconnect_attempts:
                        await asyncio.sleep(
                            self.reconnect_backoff_seconds
                            * (2 ** (attempt - 1))
                        )
                    continue
                self._reader, self._writer = reader, writer
                if self._ever_connected:
                    with self._counters_lock:
                        self.reconnects += 1
                self._ever_connected = True
                # Negotiate before the reader loop exists: the hello
                # reply is the only frame ever read outside it.
                try:
                    self.negotiated_wire = await self._negotiate(
                        reader, writer
                    )
                except (ConnectionError, OSError, EOFError,
                        codec.CodecError, Overloaded) as exc:
                    await self._teardown(exc)
                    raise
                self._reader_task = asyncio.get_running_loop().create_task(
                    self._reader_loop(reader)
                )
                return reader, writer
            raise DialError(
                f"could not (re)connect to {self.host}:{self.port} after "
                f"{self.reconnect_attempts} dial attempts: {last_error}",
                host=self.host, port=self.port,
                attempts=self.reconnect_attempts,
            )

    async def _negotiate(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> int:
        """First exchange on a fresh connection: agree on a wire version.

        Mirrors :meth:`~repro.net.transport.TcpTransport._negotiate`: a
        preference below v3 skips the hello; a server without a hello
        handler answers with an unknown-method error, which
        down-negotiates to v2 JSON.
        """
        if self.wire < codec.WIRE_V3:
            return self.wire
        frame = codec.frame(codec.encode_request(
            codec.HELLO_METHOD, codec.hello_payload(self.wire)
        ))
        writer.write(frame)
        await writer.drain()
        with self._counters_lock:
            self.bytes_sent += len(frame)
            self.frames_sent += 1
        header = await asyncio.wait_for(
            reader.readexactly(codec.FRAME_HEADER.size),
            timeout=self.timeout_seconds,
        )
        data = await asyncio.wait_for(
            reader.readexactly(codec.frame_length(header)),
            timeout=self.timeout_seconds,
        )
        with self._counters_lock:
            self.bytes_received += len(data) + codec.FRAME_HEADER.size
            self.frames_received += 1
        reply = codec.decode_reply(data)
        if reply.kind == "error":
            if reply.meta.get("overloaded"):
                raise Overloaded(reply.error or "server overloaded")
            return codec.WIRE_VERSION  # pre-negotiation server: speak JSON
        chosen = reply.payload.get("wire") \
            if isinstance(reply.payload, dict) else None
        if chosen not in codec.SUPPORTED_WIRE_VERSIONS:
            raise codec.CodecError(f"server negotiated bogus wire {chosen!r}")
        return chosen

    async def _reader_loop(self, reader: asyncio.StreamReader) -> None:
        """Route incoming frames to whichever caller they correlate to."""
        try:
            while True:
                header = await reader.readexactly(codec.FRAME_HEADER.size)
                data = await reader.readexactly(codec.frame_length(header))
                with self._counters_lock:
                    self.bytes_received += len(data) + codec.FRAME_HEADER.size
                    self.frames_received += 1
                reply = codec.decode_reply(data)
                # A pipelining server echoes our tag; a strict-ordered
                # (v1) peer omits it but echoes the request id, which we
                # set to the same value — either way the reply finds its
                # caller.
                corr = reply.meta.get(codec.CORRELATION_KEY,
                                      reply.request_id)
                future = self._pending.get(corr)
                if future is not None and not future.done():
                    future.set_result(reply)
        except (asyncio.IncompleteReadError, ConnectionError, OSError,
                codec.CodecError) as exc:
            await self._teardown(exc)
        except asyncio.CancelledError:
            raise

    async def _teardown(self, exc: BaseException) -> None:
        """Drop the connection and fail every in-flight caller."""
        writer, self._reader, self._writer = self._writer, None, None
        task, self._reader_task = self._reader_task, None
        if task is not None and task is not asyncio.current_task():
            task.cancel()
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        error = exc if isinstance(exc, Exception) else \
            ConnectionError(str(exc))
        for future in list(self._pending.values()):
            if not future.done():
                if isinstance(error, codec.CodecError):
                    # Keep the tamper evidence typed: the caller's
                    # retry loop must see a CodecError (surfaced as
                    # TamperedFrame), not a retriable ConnectionError.
                    future.set_exception(error)
                else:
                    future.set_exception(
                        ConnectionError(
                            f"connection lost mid-flight: {error}"
                        )
                    )
        self._pending.clear()
