"""Typed fleet introspection: the ``_server_stats`` report as data.

Three ad-hoc dict shapes used to describe a running server — the
``_server_stats`` envelope built in :mod:`repro.net.server`, the
per-license renewal-health report from
:meth:`repro.core.sl_remote.SlRemote.renewal_health`, and the quorum
control plane's :meth:`~repro.net.replication.ReplicationManager.health`
— each consumed by greps into nested dicts.  This module gives them one
typed surface:

* :class:`RenewalHealth` — the admission ladder / auto-tuner view, with
  bounded per-license entries (running-aggregate holder counts and
  expected loss, log2 grant histogram);
* :class:`ReplicationHealth` — epoch, quorum, per-peer ack lag and the
  shipping counters;
* :class:`ServerStats` — the full probe envelope, embedding the two
  above (per shard, when the probed server fronts a sharded fleet).

``to_wire`` reproduces the exact dict shapes the ad-hoc reports always
had, so every existing dict consumer keeps working; ``from_wire``
accepts both the single-remote and the ``{shard: report}`` sharded
shapes.  All three types are registered with the codec so the v3 binary
wire has field tables for them.

Every report is bounded-size by construction: nothing here ever ships a
full ``outstanding``/``node_conditions`` map (see
:func:`repro.core.sl_remote.ledger_summary` for the bounded ledger view
and the ``detail="full"`` probe opt-in for the O(C) dump).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

from repro.net import codec


@dataclass(frozen=True)
class RenewalHealth:
    """One remote's renewal-health report (``renewal_health()`` shape).

    ``licenses`` maps license id to the bounded per-license entry:
    ``grants`` / ``exhausted`` / ``degraded`` counters, the concurrency
    EWMA, the O(1) ``holders`` and ``expected_loss`` aggregates, and the
    log2 ``grant_hist``.
    """

    admission: bool = True
    autotune_lag: bool = False
    tau_fraction: float = 0.0
    exhausted_served: int = 0
    degraded_served: int = 0
    autotune_widened: int = 0
    autotune_narrowed: int = 0
    licenses: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def to_wire(self) -> Dict[str, Any]:
        return {
            "admission": self.admission,
            "autotune_lag": self.autotune_lag,
            "tau_fraction": self.tau_fraction,
            "exhausted_served": self.exhausted_served,
            "degraded_served": self.degraded_served,
            "autotune": {
                "widened": self.autotune_widened,
                "narrowed": self.autotune_narrowed,
            },
            "licenses": {license_id: dict(entry)
                         for license_id, entry in self.licenses.items()},
        }

    @classmethod
    def from_wire(cls, fields: Dict[str, Any]) -> "RenewalHealth":
        autotune = fields.get("autotune") or {}
        return cls(
            admission=bool(fields.get("admission", True)),
            autotune_lag=bool(fields.get("autotune_lag", False)),
            tau_fraction=float(fields.get("tau_fraction", 0.0)),
            exhausted_served=int(fields.get("exhausted_served", 0)),
            degraded_served=int(fields.get("degraded_served", 0)),
            autotune_widened=int(autotune.get("widened", 0)),
            autotune_narrowed=int(autotune.get("narrowed", 0)),
            licenses={license_id: dict(entry)
                      for license_id, entry
                      in (fields.get("licenses") or {}).items()},
        )


@dataclass(frozen=True)
class ReplicationHealth:
    """One shard's quorum control-plane health (``health()`` shape).

    ``replicates`` is absent (``None``) on a pure follower; ``follows``
    carries the delta/snapshot/bootstrap apply counters.  Both stay
    plain (bounded) dicts on the wire: the per-peer map has at most
    ``replicas`` entries.
    """

    epoch: int = 0
    quorum: int = 0
    quorum_timeouts: int = 0
    promoted: tuple = ()
    follows: Dict[str, Any] = field(default_factory=dict)
    replicates: Optional[Dict[str, Any]] = None

    def to_wire(self) -> Dict[str, Any]:
        report: Dict[str, Any] = {
            "epoch": self.epoch,
            "quorum": self.quorum,
            "quorum_timeouts": self.quorum_timeouts,
            "promoted": list(self.promoted),
            "follows": dict(self.follows),
        }
        if self.replicates is not None:
            report["replicates"] = dict(self.replicates)
        return report

    @classmethod
    def from_wire(cls, fields: Dict[str, Any]) -> "ReplicationHealth":
        replicates = fields.get("replicates")
        return cls(
            epoch=int(fields.get("epoch", 0)),
            quorum=int(fields.get("quorum", 0)),
            quorum_timeouts=int(fields.get("quorum_timeouts", 0)),
            promoted=tuple(fields.get("promoted") or ()),
            follows=dict(fields.get("follows") or {}),
            replicates=dict(replicates) if replicates is not None else None,
        )


#: A section that is one report for a plain remote, or ``{shard:
#: report}`` when the probed server fronts a sharded fleet in-process.
RenewalSection = Union[RenewalHealth, Dict[str, RenewalHealth]]
ReplicationSection = Union[ReplicationHealth, Dict[str, ReplicationHealth]]


def sniff_renewal(fields: Dict[str, Any]) -> RenewalSection:
    """Lift a renewal section from either historical dict shape."""
    # The single-remote shape always carries "licenses"; the sharded
    # shape is {shard_name: single-remote shape}.
    if "licenses" in fields:
        return RenewalHealth.from_wire(fields)
    return {shard: RenewalHealth.from_wire(entry)
            for shard, entry in fields.items()}


def sniff_replication(fields: Dict[str, Any]) -> ReplicationSection:
    """Lift a replication section from either historical dict shape."""
    if "follows" in fields or "epoch" in fields:
        return ReplicationHealth.from_wire(fields)
    return {shard: ReplicationHealth.from_wire(entry)
            for shard, entry in fields.items()}


def _section_to_wire(section) -> Dict[str, Any]:
    if isinstance(section, dict):
        return {shard: entry.to_wire() for shard, entry in section.items()}
    return section.to_wire()


@dataclass(frozen=True)
class ServerStats:
    """The full ``_server_stats`` probe envelope, typed.

    ``wire`` is the codec counter snapshot (absent on loopback servers);
    ``renewal``/``replication`` are the typed sections above, or a
    ``{shard: section}`` map when one server process fronts a sharded
    fleet.
    """

    io: str = "threads"
    requests_served: int = 0
    errors_returned: int = 0
    connections_accepted: int = 0
    connections_shed: int = 0
    resident_threads: int = 0
    wire: Optional[Dict[str, Any]] = None
    exhausted_served: Optional[int] = None
    renewal: Optional[RenewalSection] = None
    replication: Optional[ReplicationSection] = None

    def to_wire(self) -> Dict[str, Any]:
        report: Dict[str, Any] = {
            "io": self.io,
            "requests_served": self.requests_served,
            "errors_returned": self.errors_returned,
            "connections_accepted": self.connections_accepted,
            "connections_shed": self.connections_shed,
            "resident_threads": self.resident_threads,
        }
        if self.wire is not None:
            report["wire"] = dict(self.wire)
        if self.exhausted_served is not None:
            report["exhausted_served"] = self.exhausted_served
        if self.renewal is not None:
            report["renewal"] = _section_to_wire(self.renewal)
        if self.replication is not None:
            report["replication"] = _section_to_wire(self.replication)
        return report

    @classmethod
    def from_wire(cls, fields: Dict[str, Any]) -> "ServerStats":
        wire = fields.get("wire")
        renewal = fields.get("renewal")
        replication = fields.get("replication")
        exhausted = fields.get("exhausted_served")
        return cls(
            io=str(fields.get("io", "threads")),
            requests_served=int(fields.get("requests_served", 0)),
            errors_returned=int(fields.get("errors_returned", 0)),
            connections_accepted=int(fields.get("connections_accepted", 0)),
            connections_shed=int(fields.get("connections_shed", 0)),
            resident_threads=int(fields.get("resident_threads", 0)),
            wire=dict(wire) if wire is not None else None,
            exhausted_served=int(exhausted) if exhausted is not None else None,
            renewal=sniff_renewal(renewal) if renewal else None,
            replication=(sniff_replication(replication)
                         if replication else None),
        )

    # -- shape helpers ------------------------------------------------
    def renewal_by_shard(self) -> Dict[str, RenewalHealth]:
        """The renewal section as ``{shard: report}`` regardless of
        whether the probed server was sharded (single remotes appear
        under the shard name ``""``)."""
        if self.renewal is None:
            return {}
        if isinstance(self.renewal, dict):
            return dict(self.renewal)
        return {"": self.renewal}

    def replication_by_shard(self) -> Dict[str, ReplicationHealth]:
        if self.replication is None:
            return {}
        if isinstance(self.replication, dict):
            return dict(self.replication)
        return {"": self.replication}


def format_stats(address: str, stats: ServerStats) -> str:
    """Human-readable rendering for the ``repro stats`` CLI verb."""
    lines = [f"{address}  [{stats.io}]"]
    lines.append(
        f"  requests={stats.requests_served}"
        f" errors={stats.errors_returned}"
        f" accepted={stats.connections_accepted}"
        f" shed={stats.connections_shed}"
        f" threads={stats.resident_threads}"
    )
    if stats.wire:
        wire = stats.wire
        lines.append(
            f"  wire: frames={wire.get('frames_decoded', 0)}/"
            f"{wire.get('frames_encoded', 0)} in/out"
            f" bytes={wire.get('bytes_decoded', 0)}/"
            f"{wire.get('bytes_encoded', 0)}"
            f" batched_renewals={wire.get('batched_renewals', 0)}"
            f" largest_batch={wire.get('largest_batch', 0)}"
        )
    for shard, renewal in sorted(stats.renewal_by_shard().items()):
        label = f" [{shard}]" if shard else ""
        lines.append(
            f"  renewal{label}: admission={'on' if renewal.admission else 'off'}"
            f" tau={renewal.tau_fraction:.3f}"
            f" exhausted={renewal.exhausted_served}"
            f" degraded={renewal.degraded_served}"
            f" autotune=+{renewal.autotune_widened}/-{renewal.autotune_narrowed}"
        )
        for license_id, entry in sorted(renewal.licenses.items()):
            lines.append(
                f"    {license_id}: grants={entry.get('grants', 0)}"
                f" exhausted={entry.get('exhausted', 0)}"
                f" degraded={entry.get('degraded', 0)}"
                f" holders={entry.get('holders', 0)}"
                f" E[loss]={entry.get('expected_loss', 0.0)}"
                f" C~{entry.get('concurrency_ewma', 0.0)}"
            )
    for shard, replication in sorted(stats.replication_by_shard().items()):
        label = f" [{shard}]" if shard else ""
        follows = replication.follows
        lines.append(
            f"  replication{label}: epoch={replication.epoch}"
            f" quorum={replication.quorum}"
            f" timeouts={replication.quorum_timeouts}"
            f" promoted={list(replication.promoted) or '[]'}"
            f" applied={follows.get('deltas_applied', 0)}"
        )
        if replication.replicates:
            replicates = replication.replicates
            peers = replicates.get("peers") or {}
            lag = {peer: entry.get("ack_lag", 0)
                   for peer, entry in sorted(peers.items())}
            lines.append(
                f"    replicates: seq={replicates.get('seq', 0)}"
                f" identity_seq={replicates.get('identity_seq', 0)}"
                f" batches={replicates.get('batches_sent', 0)}"
                f" ack_lag={lag}"
            )
    return "\n".join(lines)


for _message in (RenewalHealth, ReplicationHealth, ServerStats):
    codec.register_message_type(_message)
