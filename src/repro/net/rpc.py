"""RPC endpoint connecting SL-Local to SL-Remote.

The endpoint is a thin client-side handle over a pluggable
:class:`~repro.net.transport.Transport`: a call charges network time to
the caller's clock (how depends on the backend — simulated link or real
socket retries), then delivers the protocol message to SL-Remote's
handlers.  Handlers that need the caller's clock/stats (the
remote-attestation path charges its 3.5 s to the *caller*) declare it
by accepting ``clock``/``stats`` keyword arguments.

Every call must account for the link: pass a ``clock``, or say
``local=True`` to state explicitly that this call deliberately bypasses
network simulation (e.g. provisioning calls in tests).  The historical
silent bypass on ``clock=None`` is gone — no call path dodges the link
unaccounted.
"""

from __future__ import annotations

from typing import Optional

from repro.net.codec import RemoteCallError
from repro.net.network import NetworkConditions, NetworkError, SimulatedLink
from repro.net.transport import HandlerTable, Transport, TransportError
from repro.sgx.driver import SgxStats
from repro.sim.clock import Clock


class RpcError(Exception):
    """Raised when a call fails to reach the server, or is misused."""


class RemoteEndpoint:
    """Client-side handle for calling SL-Remote over some transport."""

    def __init__(self, transport: Transport) -> None:
        self.transport = transport
        self.calls_made = 0
        #: Durable-ledger handles attached by ``connect(..., data_dir=)``
        #: on loopback endpoints; close them when the endpoint retires.
        self.persistences: list = []

    @property
    def link(self) -> Optional[SimulatedLink]:
        """The simulated link, for backends that have one (else None)."""
        return getattr(self.transport, "link", None)

    def call(self, method: str, request: object,
             clock: Optional[Clock] = None,
             stats: Optional[SgxStats] = None,
             local: bool = False):
        """Round-trip a request; returns the handler's response.

        Raises :class:`RpcError` if the network gives up, the server
        reports an error, or no ``clock`` is supplied without an
        explicit ``local=True``.
        """
        if clock is None and not local:
            raise RpcError(
                f"call to {method!r} has no clock to charge network time to; "
                f"pass local=True if bypassing the link is intentional"
            )
        if local:
            clock = None  # deliberate bypass: no link charging at all
        try:
            response = self.transport.request(
                method, request, clock=clock, stats=stats
            )
        except NetworkError as exc:
            raise RpcError(f"call to {method!r} failed: {exc}") from exc
        except RemoteCallError as exc:
            raise RpcError(f"remote error from {method!r}: {exc}") from exc
        except TransportError as exc:
            raise RpcError(f"call to {method!r} failed: {exc}") from exc
        self.calls_made += 1
        return response

    def close(self) -> None:
        self.transport.close()


def lease_handler_table(remote) -> HandlerTable:
    """The canonical method table for an SL-Remote server object."""
    return HandlerTable(remote.protocol_handlers())


#: Loopback backend name -> endpoint scheme, for the deprecated wrapper.
_LOOPBACK_ENDPOINTS = {
    "in-process": "sl+inproc://",
    "serialized": "sl+serialized://",
}


def connect_remote(remote, link: SimulatedLink,
                   transport: str = "in-process") -> RemoteEndpoint:
    """Deprecated: use ``connect("sl+inproc://", remote=..., link=...)``.

    ``transport`` selects the loopback backend: ``"in-process"`` (direct
    dispatch, the default every experiment uses) or ``"serialized"``
    (every message round-trips through the wire codec).
    """
    from repro.net.endpoint import connect, deprecated_connect_warning

    deprecated_connect_warning("connect_remote", "sl+inproc://")
    scheme = _LOOPBACK_ENDPOINTS.get(transport)
    if scheme is None:
        raise ValueError(
            f"unknown loopback transport {transport!r}; choose 'in-process' "
            f"or 'serialized' (use TcpTransport for 'tcp')"
        )
    return connect(scheme, remote=remote, link=link)


def connect_tcp(host: str, port: int,
                conditions: Optional[NetworkConditions] = None,
                timeout_seconds: float = 5.0,
                max_attempts: int = 5,
                backoff_seconds: float = 0.05,
                reconnect_attempts: int = 4,
                reconnect_backoff_seconds: float = 0.05) -> RemoteEndpoint:
    """Deprecated: use ``connect(f"sl://{host}:{port}")``."""
    from repro.net.endpoint import connect, deprecated_connect_warning

    deprecated_connect_warning("connect_tcp", "sl://host:port")
    return connect(
        f"sl://{host}:{port}",
        conditions=conditions,
        timeout_seconds=timeout_seconds,
        max_attempts=max_attempts,
        backoff_seconds=backoff_seconds,
        reconnect_attempts=reconnect_attempts,
        reconnect_backoff_seconds=reconnect_backoff_seconds,
    )


def connect_async_tcp(host: str, port: int,
                      conditions: Optional[NetworkConditions] = None,
                      timeout_seconds: float = 5.0,
                      max_attempts: int = 5,
                      backoff_seconds: float = 0.05,
                      reconnect_attempts: int = 4,
                      reconnect_backoff_seconds: float = 0.05) -> RemoteEndpoint:
    """Deprecated: use ``connect(f"sl+async://{host}:{port}")``.

    Same synchronous calling contract as :func:`connect_tcp`; the
    difference is on the wire — many calls from many threads share one
    socket with correlation-tagged frames instead of queueing on a
    per-connection lock.
    """
    from repro.net.endpoint import connect, deprecated_connect_warning

    deprecated_connect_warning("connect_async_tcp", "sl+async://host:port")
    return connect(
        f"sl+async://{host}:{port}",
        conditions=conditions,
        timeout_seconds=timeout_seconds,
        max_attempts=max_attempts,
        backoff_seconds=backoff_seconds,
        reconnect_attempts=reconnect_attempts,
        reconnect_backoff_seconds=reconnect_backoff_seconds,
        io="async",
    )
