"""RPC endpoint connecting SL-Local to SL-Remote.

The endpoint owns a :class:`SimulatedLink` and a handler table; a call
charges network time to the caller's clock, then dispatches to the
registered handler.  Handlers that need the caller's clock/stats (the
remote-attestation path charges its 3.5 s to the *caller*) declare it by
accepting ``clock``/``stats`` keyword arguments.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, Optional

from repro.net.network import NetworkError, SimulatedLink
from repro.sgx.driver import SgxStats
from repro.sim.clock import Clock


class RpcError(Exception):
    """Raised when a call fails to reach the server."""


class RemoteEndpoint:
    """Client-side handle for calling SL-Remote over a simulated link."""

    def __init__(self, link: SimulatedLink) -> None:
        self.link = link
        self._handlers: Dict[str, Callable] = {}
        self.calls_made = 0

    def register(self, method: str, handler: Callable) -> None:
        if method in self._handlers:
            raise ValueError(f"handler for {method!r} already registered")
        self._handlers[method] = handler

    def call(self, method: str, request: object,
             clock: Optional[Clock] = None,
             stats: Optional[SgxStats] = None):
        """Round-trip a request; returns the handler's response.

        Raises :class:`RpcError` if the network gives up.
        """
        handler = self._handlers.get(method)
        if handler is None:
            raise RpcError(f"no such remote method {method!r}")
        if clock is not None:
            try:
                self.link.round_trip(clock)
            except NetworkError as exc:
                raise RpcError(f"call to {method!r} failed: {exc}") from exc
        self.calls_made += 1
        kwargs = {}
        signature = inspect.signature(handler)
        if "clock" in signature.parameters and clock is not None:
            kwargs["clock"] = clock
        if "stats" in signature.parameters and stats is not None:
            kwargs["stats"] = stats
        return handler(request, **kwargs)


def connect_remote(remote, link: SimulatedLink) -> RemoteEndpoint:
    """Wire a :class:`~repro.core.sl_remote.SlRemote` behind an endpoint."""
    endpoint = RemoteEndpoint(link)
    endpoint.register("init", remote.handle_init)
    endpoint.register("renew", remote.handle_renew)
    endpoint.register("shutdown", lambda notice: remote.handle_shutdown(notice))
    endpoint.register(
        "return_units",
        lambda request: remote.return_units(*request),
    )
    return endpoint
