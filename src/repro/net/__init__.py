"""Simulated and real networking between SL-Local machines and SL-Remote.

Algorithm 1's inputs include network reliability; the Figure 9
breakdown separates local allocation cost from lease-renewal cost
(dominated by the network round trip plus remote attestation).  This
package supplies:

* a latency/reliability-parameterised channel (:mod:`repro.net.network`),
* a versioned wire codec for every protocol message (:mod:`repro.net.codec`),
* pluggable transports — in-process, serialized loopback, and real TCP —
  behind one :class:`~repro.net.transport.Transport` interface
  (:mod:`repro.net.transport`),
* one endpoint factory, :func:`~repro.net.endpoint.connect`, taking
  URL-style endpoints (``sl://``, ``sl+async://``, ``sl+sharded://``,
  ``sl+inproc://``, ``sl+serialized://``) with every client knob in one
  :class:`~repro.net.endpoint.EndpointConfig` (:mod:`repro.net.endpoint`),
* a typed transport error hierarchy (:mod:`repro.net.errors`),
* an RPC endpoint dispatching protocol messages to SL-Remote handlers
  (:mod:`repro.net.rpc`),
* a socket server for running SL-Remote as its own process
  (:mod:`repro.net.server`),
* an event-loop server and a pipelining, correlation-tagged client for
  fleets of mostly-idle connections (:mod:`repro.net.aio`),
* consistent-hash sharding of the license ledgers across N servers with
  a routing layer (:mod:`repro.net.sharding`), and
* a quorum control plane: depth-K follower replication of shard state
  with identity-quorum acks, epoch-fenced promotion on primary death,
  WAL-shipped follower bootstrap, and online shard membership changes
  (:mod:`repro.net.replication`).
"""

from repro.net.aio import AsyncLeaseServer, AsyncTcpTransport
from repro.net.codec import (
    CodecError,
    RemoteCallError,
    SUPPORTED_WIRE_VERSIONS,
    WIRE_VERSION,
)
from repro.net.endpoint import (
    ENDPOINT_SCHEMES,
    EndpointConfig,
    connect,
    endpoint_for,
    format_endpoint,
    parse_endpoint,
)
from repro.net.errors import (
    DialError,
    Migrating,
    Overloaded,
    RetriesExhausted,
)
from repro.net.network import NetworkConditions, NetworkError, SimulatedLink
from repro.net.replication import (
    BootstrapChunk,
    FollowerStore,
    ReplicaBatch,
    ReplicaDelta,
    ReplicationManager,
    ReplicationSource,
    ShardSnapshot,
)
from repro.net.rpc import (
    RemoteEndpoint,
    RpcError,
    connect_async_tcp,
    connect_remote,
    connect_tcp,
)
from repro.net.server import LeaseServer
from repro.net.stats import (
    RenewalHealth,
    ReplicationHealth,
    ServerStats,
    format_stats,
)
from repro.net.sharding import (
    HashRing,
    ShardRouter,
    ShardRouterTransport,
    ShardedRemote,
    connect_sharded_tcp,
    default_shard_names,
)
from repro.net.transport import (
    HandlerTable,
    InProcessTransport,
    SerializedLoopbackTransport,
    TRANSPORT_BACKENDS,
    TcpTransport,
    Transport,
    TransportError,
    UnknownMethodError,
)

__all__ = [
    "AsyncLeaseServer",
    "AsyncTcpTransport",
    "BootstrapChunk",
    "CodecError",
    "DialError",
    "ENDPOINT_SCHEMES",
    "EndpointConfig",
    "FollowerStore",
    "HandlerTable",
    "HashRing",
    "InProcessTransport",
    "LeaseServer",
    "Migrating",
    "NetworkConditions",
    "NetworkError",
    "Overloaded",
    "RemoteCallError",
    "RemoteEndpoint",
    "RenewalHealth",
    "ReplicaBatch",
    "ReplicaDelta",
    "ReplicationHealth",
    "ReplicationManager",
    "ReplicationSource",
    "RetriesExhausted",
    "RpcError",
    "ServerStats",
    "SUPPORTED_WIRE_VERSIONS",
    "SerializedLoopbackTransport",
    "ShardRouter",
    "ShardRouterTransport",
    "ShardSnapshot",
    "ShardedRemote",
    "SimulatedLink",
    "TRANSPORT_BACKENDS",
    "TcpTransport",
    "Transport",
    "TransportError",
    "UnknownMethodError",
    "WIRE_VERSION",
    "connect",
    "connect_async_tcp",
    "connect_remote",
    "connect_sharded_tcp",
    "connect_tcp",
    "default_shard_names",
    "endpoint_for",
    "format_endpoint",
    "format_stats",
    "parse_endpoint",
]
