"""Simulated network between SL-Local machines and SL-Remote.

Algorithm 1's inputs include network reliability; the Figure 9
breakdown separates local allocation cost from lease-renewal cost
(dominated by the network round trip plus remote attestation).  This
package supplies a latency/reliability-parameterised channel and an RPC
endpoint that dispatches protocol messages to SL-Remote handlers.
"""

from repro.net.network import NetworkConditions, NetworkError, SimulatedLink
from repro.net.rpc import RemoteEndpoint, RpcError

__all__ = [
    "NetworkConditions",
    "NetworkError",
    "RemoteEndpoint",
    "RpcError",
    "SimulatedLink",
]
