"""Simulated and real networking between SL-Local machines and SL-Remote.

Algorithm 1's inputs include network reliability; the Figure 9
breakdown separates local allocation cost from lease-renewal cost
(dominated by the network round trip plus remote attestation).  This
package supplies:

* a latency/reliability-parameterised channel (:mod:`repro.net.network`),
* a versioned wire codec for every protocol message (:mod:`repro.net.codec`),
* pluggable transports — in-process, serialized loopback, and real TCP —
  behind one :class:`~repro.net.transport.Transport` interface
  (:mod:`repro.net.transport`),
* an RPC endpoint dispatching protocol messages to SL-Remote handlers
  (:mod:`repro.net.rpc`),
* a socket server for running SL-Remote as its own process
  (:mod:`repro.net.server`),
* an event-loop server and a pipelining, correlation-tagged client for
  fleets of mostly-idle connections (:mod:`repro.net.aio`), and
* consistent-hash sharding of the license ledgers across N servers with
  a routing layer (:mod:`repro.net.sharding`).
"""

from repro.net.aio import AsyncLeaseServer, AsyncTcpTransport
from repro.net.codec import (
    CodecError,
    RemoteCallError,
    SUPPORTED_WIRE_VERSIONS,
    WIRE_VERSION,
)
from repro.net.network import NetworkConditions, NetworkError, SimulatedLink
from repro.net.rpc import (
    RemoteEndpoint,
    RpcError,
    connect_async_tcp,
    connect_remote,
    connect_tcp,
)
from repro.net.server import LeaseServer
from repro.net.sharding import (
    HashRing,
    ShardRouter,
    ShardRouterTransport,
    ShardedRemote,
    connect_sharded_tcp,
    default_shard_names,
)
from repro.net.transport import (
    HandlerTable,
    InProcessTransport,
    SerializedLoopbackTransport,
    TRANSPORT_BACKENDS,
    TcpTransport,
    Transport,
    TransportError,
    UnknownMethodError,
)

__all__ = [
    "AsyncLeaseServer",
    "AsyncTcpTransport",
    "CodecError",
    "HandlerTable",
    "HashRing",
    "InProcessTransport",
    "LeaseServer",
    "NetworkConditions",
    "NetworkError",
    "RemoteCallError",
    "RemoteEndpoint",
    "RpcError",
    "SUPPORTED_WIRE_VERSIONS",
    "SerializedLoopbackTransport",
    "ShardRouter",
    "ShardRouterTransport",
    "ShardedRemote",
    "SimulatedLink",
    "TRANSPORT_BACKENDS",
    "TcpTransport",
    "Transport",
    "TransportError",
    "UnknownMethodError",
    "WIRE_VERSION",
    "connect_async_tcp",
    "connect_remote",
    "connect_sharded_tcp",
    "connect_tcp",
    "default_shard_names",
]
