"""End-to-end deployment wiring.

:class:`SecureLeaseDeployment` assembles a complete client machine —
simulated SGX platform, SL-Local service connected to an SL-Remote over
a simulated network, per-application SL-Manager — and runs partitioned
workloads on it with live lease checking.  This is the configuration
Figure 9 measures; the same class can be wired with the F-LaaS lease
logic (a remote attestation per license check) or the Glamdring
partitioner for the paper's two baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.gcl import LeaseKind
from repro.core.renewal import RenewalPolicy
from repro.core.sl_local import SlLocal
from repro.core.sl_manager import SlManager
from repro.core.sl_remote import SlRemote
from repro.crypto.keys import KeyGenerator
from repro.net.endpoint import connect, endpoint_for
from repro.net.network import NetworkConditions, SimulatedLink
from repro.partition.base import Partition, Partitioner
from repro.partition.securelease import SecureLeasePartitioner
from repro.sgx import RemoteAttestationService, SgxMachine
from repro.sim.clock import Clock
from repro.sim.rng import DeterministicRng
from repro.vcpu.machine import ExecutionDenied, VirtualCpu
from repro.vcpu.tracer import Tracer
from repro.workloads.base import Workload


@dataclass
class AppRun:
    """Outcome of one end-to-end application execution."""

    result: object
    cycles: int
    local_attestations: int
    remote_attestations: int
    lease_checks: int


class FlaasLeaseManager:
    """The F-LaaS lease logic: remote attestation per lease acquisition.

    Used as the Figure 9 baseline — same partition as SecureLease, but
    there is no SL-Local: every batch of ``tokens_per_attestation``
    executions requires a fresh remote-attested fetch from the license
    server (F-LaaS has no trusted local cache to consult), so the RA
    count scales with usage instead of with sub-GCL renewals.
    """

    def __init__(self, app_name: str, machine: SgxMachine,
                 ras: RemoteAttestationService, remote: SlRemote,
                 tokens_per_attestation: int = 10) -> None:
        self.app_name = app_name
        self.machine = machine
        self.ras = ras
        self.remote = remote
        self.tokens_per_attestation = tokens_per_attestation
        self.enclave = machine.create_enclave(f"flaas-manager:{app_name}")
        self._licenses: Dict[str, bytes] = {}
        self._grants: Dict[str, int] = {}
        self._nonce = 0
        self.checks = 0

    def load_license(self, license_id: str, blob: bytes) -> None:
        self._licenses[license_id] = blob

    def check(self, license_id: str) -> bool:
        blob = self._licenses.get(license_id)
        if blob is None:
            return False
        if self._grants.get(license_id, 0) > 0:
            self._grants[license_id] -= 1
            self.checks += 1
            return True
        definition = self.remote.license_definition(license_id)
        if definition.revoked or blob != definition.license_blob():
            return False
        self._nonce += 1
        report = self.machine.local_authority.generate_report(
            self.enclave.measurement, self.enclave.measurement, self._nonce
        )
        # The costly part: a full remote attestation per token batch.
        self.ras.verify_remote(
            self.machine.clock, self.machine.stats, report,
            self.machine.platform_secret,
        )
        ledger = self.remote.ledger(license_id)
        batch = min(self.tokens_per_attestation, ledger.available)
        if batch <= 0:
            return False
        ledger.lost_units += batch  # consumed directly from the pool
        self._grants[license_id] = batch - 1
        self.checks += 1
        return True


class SecureLeaseDeployment:
    """A client machine running SecureLease end to end."""

    def __init__(
        self,
        seed: int = 42,
        tokens_per_attestation: int = 10,
        network: Optional[NetworkConditions] = None,
        policy: Optional[RenewalPolicy] = None,
        machine_name: str = "client",
        costs=None,
        transport: str = "in-process",
        shards: int = 1,
        endpoint: Optional[str] = None,
        data_dir: Optional[str] = None,
    ) -> None:
        self.rng = DeterministicRng(seed)
        self.ras = RemoteAttestationService(costs)
        self.persistences = []
        if shards > 1:
            from repro.net.sharding import ShardedRemote

            self.remote = ShardedRemote(self.ras, shards=shards,
                                        policy=policy, data_dir=data_dir)
            self.persistences = list(self.remote.persistences.values())
        else:
            self.remote = SlRemote(self.ras, policy=policy)
            if data_dir is not None:
                from repro.storage.wal import attach_persistence

                self.persistences = attach_persistence(self.remote, data_dir)
        self.machine = SgxMachine(machine_name, costs=costs)
        self.ras.register_platform(self.machine.platform_secret)
        self.link = SimulatedLink(
            network if network is not None else NetworkConditions(),
            self.rng.fork("net"),
        )
        #: ``"tcp"``/``"async"`` front the same remote with a real wire
        #: server (threaded vs event-loop) and connect the machine over
        #: an actual socket; protocol outcomes must match the loopbacks.
        self._wire_server = None
        if endpoint is not None:
            # An explicit endpoint URL wins over the legacy transport
            # names; loopback schemes still ride the simulated link.
            if endpoint.startswith(("sl+inproc://", "sl+serialized://")):
                self.endpoint = connect(endpoint, remote=self.remote,
                                        link=self.link)
            else:
                self.endpoint = connect(endpoint,
                                        conditions=self.link.conditions)
        elif transport in ("tcp", "async"):
            if transport == "async":
                from repro.net.aio import AsyncLeaseServer

                self._wire_server = AsyncLeaseServer(self.remote)
            else:
                from repro.net.server import LeaseServer

                self._wire_server = LeaseServer(self.remote)
            self._wire_server.start()
            io = "async" if transport == "async" else "threads"
            self.endpoint = connect(
                endpoint_for([self._wire_server.address], io=io),
                conditions=self.link.conditions,
            )
        elif transport in ("in-process", "serialized"):
            scheme = ("sl+inproc://" if transport == "in-process"
                      else "sl+serialized://")
            self.endpoint = connect(scheme, remote=self.remote,
                                    link=self.link)
        else:
            raise ValueError(f"unknown deployment transport {transport!r}")
        self.sl_local = SlLocal(
            self.machine,
            self.endpoint,
            KeyGenerator(self.rng.fork("keys")),
            tokens_per_attestation=tokens_per_attestation,
        )
        self.sl_local.init()
        self.tokens_per_attestation = tokens_per_attestation
        self._managers: Dict[str, SlManager] = {}

    def close(self) -> None:
        """Release wire resources (no-op for loopback transports)."""
        try:
            self.endpoint.close()
        except Exception:
            pass
        if self._wire_server is not None:
            self._wire_server.stop()
            self._wire_server = None
        for persistence in self.persistences:
            persistence.close()
        self.persistences = []

    # ------------------------------------------------------------------
    # Provisioning
    # ------------------------------------------------------------------
    def issue_license(self, license_id: str, total_units: int,
                      kind: LeaseKind = LeaseKind.COUNT,
                      tick_seconds: float = 0.0) -> bytes:
        """Provision a license on the server; returns the user's blob."""
        definition = self.remote.issue_license(
            license_id, total_units, kind=kind, tick_seconds=tick_seconds
        )
        return definition.license_blob()

    def manager_for(self, app_name: str) -> SlManager:
        """The SL-Manager embedded in one application's enclave."""
        if app_name not in self._managers:
            self._managers[app_name] = SlManager(
                app_name,
                self.machine,
                self.sl_local,
                tokens_per_attestation=self.tokens_per_attestation,
            )
        return self._managers[app_name]

    # ------------------------------------------------------------------
    # Running partitioned workloads
    # ------------------------------------------------------------------
    def run_workload(
        self,
        workload: Workload,
        scale: float = 1.0,
        partitioner: Optional[Partitioner] = None,
        license_blob: Optional[bytes] = None,
        lease_manager=None,
    ) -> AppRun:
        """Partition a workload and execute it with live lease checks.

        The key functions inside the enclave call back into the
        application's SL-Manager (``lease_manager`` overrides it, e.g.
        with :class:`FlaasLeaseManager`).
        """
        profiled = workload.run_profiled(scale=scale)
        chooser = partitioner if partitioner is not None else SecureLeasePartitioner()
        partition = chooser.partition(
            profiled.program, profiled.graph, profiled.profile
        )
        return self.run_partitioned(
            workload, partition, scale=scale,
            license_blob=license_blob, lease_manager=lease_manager,
        )

    def run_partitioned(
        self,
        workload: Workload,
        partition: Partition,
        scale: float = 1.0,
        license_blob: Optional[bytes] = None,
        lease_manager=None,
    ) -> AppRun:
        """Execute an already-partitioned workload end to end."""
        program = workload.build_program(scale)
        manager = lease_manager if lease_manager is not None else self.manager_for(
            workload.name
        )
        blob = license_blob if license_blob is not None else workload.valid_license_blob()
        manager.load_license(workload.license_id, blob)

        enclave = self.machine.create_enclave(
            f"app:{workload.name}",
            heap_bytes=max(partition.estimated_memory_bytes, 1 << 20),
        )
        checks = {"count": 0}
        session_grants: Dict[str, bool] = {}

        def lease_checker(license_id: str) -> bool:
            # FaaS add-ons bill per invocation; classic applications
            # obtain one execution grant per run and reuse it.
            if not workload.per_call_billing and license_id in session_grants:
                return session_grants[license_id]
            checks["count"] += 1
            granted = manager.check(license_id)
            if not workload.per_call_billing:
                session_grants[license_id] = granted
            return granted

        cpu = VirtualCpu(
            program,
            self.machine.clock,
            placement=partition.placement(program),
            enclave=enclave,
            lease_checker=lease_checker,
        )
        tracer = Tracer(program)
        cpu.add_observer(tracer)

        start_cycles = self.machine.clock.cycles
        start_local = self.machine.stats.local_attestations
        start_remote = self.machine.stats.remote_attestations
        try:
            result = cpu.run(blob)
        except ExecutionDenied as denial:
            # A key function refused to run (no valid lease): the app
            # dies mid-execution exactly as the paper describes, and
            # callers see a structured denial instead of an exception.
            result = {"status": "DENIED", "reason": str(denial)}
        finally:
            enclave.destroy()
        return AppRun(
            result=result,
            cycles=self.machine.clock.cycles - start_cycles,
            local_attestations=self.machine.stats.local_attestations - start_local,
            remote_attestations=self.machine.stats.remote_attestations - start_remote,
            lease_checks=checks["count"],
        )
