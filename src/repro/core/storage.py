"""Untrusted persistent storage for SL-Local.

Section 5.6: at graceful shutdown, the sealed lease-tree image lives in
*untrusted* storage (disk), while the sealing key is escrowed with
SL-Remote.  This module gives the sealed image a real on-disk format so
an SL-Local instance survives process restarts, with the SLID stored in
plaintext alongside it (it is an identifier, not a secret).

File layout (binary, little-endian lengths)::

    magic   4 bytes  b"SLS1"
    slid    8 bytes  (0xFFFFFFFFFFFFFFFF when unassigned)
    nonce_len 2 bytes, nonce
    ct_len  4 bytes, ciphertext

Everything integrity-relevant is inside the sealed blob itself; the
file adds no security, only persistence — tampering with it is detected
by :func:`repro.crypto.sealing.validate` at restore time, exactly like
any other untrusted-memory tampering.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Optional, Tuple

from repro.crypto.sealing import SealedBlob

_MAGIC = b"SLS1"
_UNASSIGNED_SLID = 0xFFFF_FFFF_FFFF_FFFF


class StorageError(Exception):
    """Raised on malformed state files."""


def save_state(path: "Path | str", slid: Optional[int],
               image: Optional[SealedBlob]) -> None:
    """Write the SLID and (optionally) the sealed shutdown image."""
    path = Path(path)
    slid_value = _UNASSIGNED_SLID if slid is None else slid
    nonce = image.nonce if image is not None else b""
    ciphertext = image.ciphertext if image is not None else b""
    payload = (
        _MAGIC
        + struct.pack("<Q", slid_value)
        + struct.pack("<H", len(nonce)) + nonce
        + struct.pack("<I", len(ciphertext)) + ciphertext
    )
    path.write_bytes(payload)


def load_state(path: "Path | str") -> Tuple[Optional[int], Optional[SealedBlob]]:
    """Read back (slid, image); either may be None.

    Raises :class:`StorageError` on files that are not SL-Local state
    (truncation of the *framing*; corruption of the sealed payload is
    the restore path's job to detect).
    """
    path = Path(path)
    data = path.read_bytes()
    if len(data) < 4 + 8 + 2 or data[:4] != _MAGIC:
        raise StorageError(f"{path} is not an SL-Local state file")
    offset = 4
    (slid_value,) = struct.unpack_from("<Q", data, offset)
    offset += 8
    (nonce_len,) = struct.unpack_from("<H", data, offset)
    offset += 2
    nonce = data[offset : offset + nonce_len]
    offset += nonce_len
    if len(data) < offset + 4:
        raise StorageError(f"{path} is truncated")
    (ct_len,) = struct.unpack_from("<I", data, offset)
    offset += 4
    ciphertext = data[offset : offset + ct_len]
    if len(ciphertext) != ct_len:
        raise StorageError(f"{path} is truncated")

    slid = None if slid_value == _UNASSIGNED_SLID else slid_value
    image = None
    if nonce or ciphertext:
        image = SealedBlob(ciphertext=ciphertext, nonce=nonce)
    return slid, image


def persist_sl_local(sl_local, path: "Path | str") -> None:
    """Snapshot an SL-Local's persistent identity + shutdown image."""
    save_state(path, sl_local.slid, sl_local.persisted_image)


def restore_sl_local(sl_local, path: "Path | str") -> None:
    """Load identity + image into a (not yet initialised) SL-Local.

    Call before :meth:`SlLocal.init`; init() then restores the tree
    through the server-escrowed key as usual.
    """
    slid, image = load_state(path)
    sl_local.slid = slid
    sl_local.persisted_image = image
