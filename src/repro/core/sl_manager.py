"""SL-Manager: the in-application authentication module.

SL-Manager is the piece the developer adds to the application's secure
region (Section 5.1): it local-attests with SL-Local, presents the
user's license file, and holds the returned tokens of execution.  The
``check()`` method is what migrated key functions call (through the
vCPU's ``lease_checker`` wiring) before agreeing to run.

Token batching (Section 7.3): one attestation can fetch N grants; the
manager spends them one per execution and only goes back to SL-Local
when the batch runs dry, amortising the ~150k-cycle local attestation
~N-fold.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.protocol import AttestRequest, AttestResponse, Status
from repro.core.sl_local import SlLocal
from repro.core.tokens import ExecutionToken
from repro.sgx import SgxMachine
from repro.sgx.enclave import Enclave


class SlManager:
    """Per-application authentication manager (lives in the enclave)."""

    def __init__(
        self,
        app_name: str,
        machine: SgxMachine,
        sl_local: SlLocal,
        tokens_per_attestation: int = 1,
        enclave: Optional[Enclave] = None,
    ) -> None:
        self.app_name = app_name
        self.machine = machine
        self.sl_local = sl_local
        self.tokens_per_attestation = tokens_per_attestation
        #: The application enclave this manager is embedded in (shared
        #: with the migrated key functions); created on demand.
        self.enclave = enclave if enclave is not None else machine.create_enclave(
            f"sl-manager:{app_name}"
        )
        self._licenses: Dict[str, bytes] = {}
        self._tokens: Dict[str, ExecutionToken] = {}
        self._nonce = 0
        self.attestations_made = 0
        self.denials = 0

    # ------------------------------------------------------------------
    # User-facing
    # ------------------------------------------------------------------
    def load_license(self, license_id: str, license_blob: bytes) -> None:
        """The user supplies a license file for an add-on."""
        self._licenses[license_id] = license_blob

    # ------------------------------------------------------------------
    # Called by key functions (through the vCPU lease_checker)
    # ------------------------------------------------------------------
    def check(self, license_id: str) -> bool:
        """Authorize one execution under ``license_id``.

        Spends a cached token grant if one remains; otherwise performs a
        local attestation round with SL-Local for a fresh batch.
        Returns False when no valid lease can be obtained — the caller
        (a migrated key function) must then refuse to run.
        """
        token = self._tokens.get(license_id)
        if token is not None and not token.exhausted:
            token.consume()
            return True

        blob = self._licenses.get(license_id)
        if blob is None:
            self.denials += 1
            return False

        response = self._request_tokens(license_id, blob)
        if response.status is not Status.OK or response.token is None:
            self.denials += 1
            return False
        token = response.token
        token.consume()
        self._tokens[license_id] = token
        return True

    def _request_tokens(self, license_id: str, blob: bytes) -> AttestResponse:
        self._nonce += 1
        report = self.machine.local_authority.generate_report(
            self.enclave.measurement,
            self.sl_local.enclave.measurement,
            nonce=self._nonce,
        )
        self.attestations_made += 1
        return self.sl_local.handle_attest(
            AttestRequest(
                report=report,
                license_id=license_id,
                license_blob=blob,
                tokens_requested=self.tokens_per_attestation,
            )
        )

    def remaining_grants(self, license_id: str) -> int:
        token = self._tokens.get(license_id)
        return 0 if token is None else token.grants
