"""SL-Remote: the trusted license server.

Responsibilities (Sections 5.1-5.3, 5.6-5.7):

* issue licenses and hold the authoritative GCL pool per license;
* validate SL-Local instances via remote attestation, assign SLIDs;
* run the adaptive renewal policy (Algorithm 1) when handing out
  sub-GCLs;
* escrow root sealing keys at graceful shutdown and return them as the
  old-backup key (OBK) at next init;
* enforce the pessimistic crash rule: an SL-Local that re-inits without
  having shut down gracefully forfeits every unit it held.

Concurrency model
-----------------
SL-Remote is safe for concurrent dispatch: the wire server
(:mod:`repro.net.server`) calls handlers from one thread per connection
without any global serialization.  State is partitioned so renewals for
*different* licenses never contend:

* every license's definition + ledger live in one
  :class:`LicenseShardState` record guarded by its own re-entrant lock;
  a client's per-license holdings entry is guarded by that same lock
  (ledger and holdings must move together for unit conservation);
* the client/SLID registry (records, graceful flags, escrowed keys,
  SLID allocation) is guarded by ``_clients_lock``;
* service counters are guarded by ``_counters_lock``.

Lock ordering: ``_clients_lock`` may be held while acquiring a license
lock (the crash write-off path), never the reverse — a thread holding a
license lock must not touch the client registry lock.  The WAL
compactor (:mod:`repro.storage.wal`) takes the strongest cut along the
same hierarchy: ``_clients_lock`` → ``_registry_lock`` → every license
lock in sorted order, which excludes all writers while a snapshot +
log-truncation pair is made atomic.
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.gcl import LeaseKind
from repro.core.protocol import (
    BatchRequest,
    BatchResponse,
    InitRequest,
    InitResponse,
    MigratingNotice,
    RenewRequest,
    RenewResponse,
    ShutdownNotice,
    Status,
)
from repro.core.renewal import (
    LicenseLedger,
    NodeCondition,
    RenewalPolicy,
    renew_lease_inplace,
)
from repro.core.licensefile import VENDOR_SECRET, mint_license_blob
from repro.sgx.attestation import AttestationError, RemoteAttestationService
from repro.sim.clock import Clock
from repro.sgx.driver import SgxStats


class LicenseUnknown(Exception):
    """Raised when operating on a license SL-Remote never issued."""


#: Smoothing factor for the per-license concurrency EWMA (Algorithm 1's
#: C, measured instead of assumed).
CONCURRENCY_EWMA_ALPHA = 0.2
#: Renewals between auto-tuner evaluations.
AUTOTUNE_INTERVAL = 64
#: Bounds the auto-tuner may move the replication lag budget (grants)
#: and the expected-loss bound τ within.
AUTOTUNE_MAX_LAG_GRANTS = 64
AUTOTUNE_TAU_MAX = 0.25
AUTOTUNE_TAU_MIN = 0.05


@dataclass
class LicenseDefinition:
    """A license as provisioned by the software developer."""

    license_id: str
    kind: LeaseKind
    total_units: int
    tick_seconds: float = 0.0
    secret: bytes = b""
    revoked: bool = False

    def license_blob(self) -> bytes:
        """The license file handed to legitimate users.

        Minted under the vendor secret; both SL-Remote and the in-app
        authentication module validate the same bytes.
        """
        return mint_license_blob(self.license_id, self.secret)


@dataclass
class LicenseShardState:
    """All server-side state of one license, plus the lock guarding it.

    This is the unit of concurrency *and* of sharding: two requests
    touching different ``LicenseShardState`` records proceed in
    parallel, and a consistent-hash ring (:mod:`repro.net.sharding`)
    can place whole records on different server processes without any
    cross-license coupling.
    """

    definition: LicenseDefinition
    ledger: LicenseLedger
    lock: threading.RLock = field(default_factory=threading.RLock)
    #: True while the record is mid-migration between shards: license-
    #: scoped handlers answer with a typed retry-after
    #: (:class:`~repro.core.protocol.MigratingNotice`) instead of
    #: mutating a ledger that is about to move.
    frozen: bool = False
    # ------------------------------------------------------------------
    # Renewal-health accounting (guarded by ``lock`` like the ledger).
    # Monitoring state, not conserved license state: a migrated or
    # promoted record starts these at zero on the new owner.
    # ------------------------------------------------------------------
    #: EWMA of simultaneous holders+requesters — the measured Algorithm 1
    #: concurrency C fed back into ``renew_lease`` as a hint.
    concurrency_ewma: float = 0.0
    #: OK renewals granted for this license.
    grants: int = 0
    #: Renewals answered EXHAUSTED for this license.
    exhausted: int = 0
    #: Grants the admission ladder shrank (or floored) below what
    #: Algorithm 1 proposed.
    degraded: int = 0
    #: log2 grant-size histogram: ``granted.bit_length() -> count``.
    grant_hist: Dict[int, int] = field(default_factory=dict)
    #: Last shipped transport telemetry per node key: ``{rtt_seconds,
    #: retries, reconnects}`` — the evidence behind claimed reliability.
    node_telemetry: Dict[str, Dict[str, float]] = field(default_factory=dict)


@dataclass
class _ClientState:
    """Server-side record of one SL-Local instance."""

    slid: int
    escrowed_root_key: Optional[int] = None
    graceful_shutdown: bool = False
    #: outstanding units per license (mirror of the ledgers, per client);
    #: each entry is guarded by that license's LicenseShardState.lock.
    holdings: Dict[str, int] = field(default_factory=dict)


class SlRemote:
    """The trusted remote server.

    ``ledger_commit_seconds`` models the durable write SL-Remote makes
    after every ledger mutation (the monotonic-counter-class persistence
    a real vendor server needs so a crash cannot resurrect spent units).
    It is *real* wall-clock time spent while holding the license lock,
    so lock granularity becomes measurable: with the old global dispatch
    lock every request waits out every other request's commit; with
    per-license locks only same-license requests queue.  Default 0.0 —
    simulations are unaffected.
    """

    def __init__(
        self,
        ras: RemoteAttestationService,
        policy: Optional[RenewalPolicy] = None,
        server_secret: bytes = VENDOR_SECRET,
        ledger_commit_seconds: float = 0.0,
        admission: bool = True,
        autotune_lag: bool = False,
    ) -> None:
        self._ras = ras
        self.policy = policy if policy is not None else RenewalPolicy()
        self._server_secret = server_secret
        self.ledger_commit_seconds = ledger_commit_seconds
        #: Adaptive admission control (the Algorithm 1 control loop's
        #: server half): remembered node conditions, measured-concurrency
        #: hints, telemetry evidence weighting, and the degrade-before-
        #: refuse grant ladder.  ``False`` restores the static baseline
        #: (fabricated perfect holder conditions, flat EXHAUSTED refusal)
        #: for A/B comparison — the scenario engine runs both.
        self.admission = admission
        #: Auto-tune the replication lag budget and τ online from the
        #: observed forfeiture-vs-refusal balance.
        self.autotune_lag = autotune_lag
        self._states: Dict[str, LicenseShardState] = {}
        self._registry_lock = threading.Lock()
        self._clients: Dict[int, _ClientState] = {}
        self._clients_lock = threading.RLock()
        self._next_slid = 1
        self._counters_lock = threading.Lock()
        #: Total renewals served — batched members count individually
        #: (network-cost accounting).
        self.renewals_served = 0
        #: ``renew_batch`` frames served (each carrying >= 1 renewals).
        self.batches_served = 0
        self.inits_served = 0
        #: Renewals answered EXHAUSTED (pool empty *or* replication
        #: backpressure clamped the grant to zero) — the signal the
        #: adaptive-renewal loop and replication health surface watch.
        self.exhausted_served = 0
        #: Grants the admission ladder degraded below Algorithm 1's
        #: proposal instead of refusing outright.
        self.degraded_served = 0
        #: State-change observers: callables ``(event, fields_dict)``
        #: invoked under the lock guarding the mutated state, so one
        #: license's events arrive in commit order (replication hooks).
        self._observers: List[Callable[[str, Dict[str, Any]], None]] = []
        #: license_id -> new owner ("name" or "name=host:port"): a
        #: tombstone left after an outbound migration so stale callers
        #: are redirected instead of recreating the license here.
        self._moved: Dict[str, str] = {}
        #: Optional replication backpressure: called under the license
        #: lock with ``(license_id, proposed_units)``, returns how many
        #: more units may be granted before un-replicated state would
        #: exceed the lag budget (or None for "no live follower, no
        #: clamp").  The proposed size lets the budget adapt to the
        #: observed grant scale.  The hook itself being None means no
        #: replication is configured.
        self.grant_headroom: Optional[
            Callable[[str, int], Optional[int]]
        ] = None
        #: Optional durability hook (:mod:`repro.storage.wal`): returns
        #: the seconds the calling thread just spent on real fsyncs, so
        #: ``handle_renew`` charges ``ledger_commit_seconds`` as a
        #: *budget* (sleeping only the remainder) instead of stacking a
        #: simulated commit on top of a real one.
        self.commit_hook: Optional[Callable[[], float]] = None
        #: Optional group-commit hook (:mod:`repro.storage.wal`): a
        #: context-manager factory wrapping one ``renew_batch`` dispatch
        #: so every ledger event the batch journals rides a single
        #: deferred fsync instead of one per renewal.
        self.commit_group: Optional[Callable[[], Any]] = None
        #: Optional lag-budget control (the auto-tuner's actuator,
        #: symmetric to ``grant_headroom``): called with a scale factor,
        #: multiplies the replication source's per-license grants budget
        #: by it (clamped) and returns the applied value.  None when the
        #: server does not replicate — the tuner then only moves τ.
        self.lag_budget_control: Optional[Callable[[float], int]] = None
        # Auto-tuner bookkeeping: deltas since the last evaluation.
        self._autotune_lock = threading.Lock()
        self._autotune_last_renewals = 0
        self._autotune_last_exhausted = 0
        self._autotune_last_lost = 0
        self.autotune_widened = 0
        self.autotune_narrowed = 0

    # ------------------------------------------------------------------
    # Wire protocol surface
    # ------------------------------------------------------------------
    def protocol_handlers(self) -> Dict[str, Callable]:
        """Method table every transport backend serves (the one place
        the method-name -> handler binding is defined).

        ``admit``/``crash``/``ledger_probe`` are fleet-internal methods
        used by the shard router (:mod:`repro.net.sharding`) to mirror
        client identity and crash write-offs across shards, and by load
        harnesses to audit unit conservation.  A production deployment
        would authenticate shard peers (mutual attestation) before
        honouring them; the reproduction trusts the router.
        """
        return {
            "init": self.handle_init,
            "renew": self.handle_renew,
            "renew_batch": self.handle_renew_batch,
            "shutdown": self.handle_shutdown,
            "return_units": lambda request: self.return_units(*request),
            "admit": self.handle_admit,
            "crash": self.handle_crash,
            "ledger_probe": self.handle_ledger_probe,
            # Membership/migration surface (router-driven, fleet-internal).
            "freeze": self.freeze_license,
            "thaw": self.thaw_license,
            "release": lambda request: self.release_license(*request),
            "export_license": self.export_license_state,
            "install_license": self.install_license_state,
            "export_identity": lambda request: self.export_identity(),
            "install_identity": self.install_identity,
        }

    # ------------------------------------------------------------------
    # State-change observers (replication hooks)
    # ------------------------------------------------------------------
    def add_observer(
        self, observer: Callable[[str, Dict[str, Any]], None]
    ) -> None:
        """Subscribe to state-change events.

        The observer is called *under the lock guarding the mutated
        state* — per-license events arrive in ledger-commit order, so a
        replication stream built from them replays to the same ledger.
        Observers must therefore be cheap and must never call back into
        this server.
        """
        self._observers.append(observer)

    def _emit(self, event: str, **fields: Any) -> None:
        for observer in self._observers:
            observer(event, fields)

    # ------------------------------------------------------------------
    # Developer-facing provisioning
    # ------------------------------------------------------------------
    def issue_license(self, license_id: str, total_units: int,
                      kind: LeaseKind = LeaseKind.COUNT,
                      tick_seconds: float = 0.0) -> LicenseDefinition:
        """Create a license with a total GCL pool of ``total_units``."""
        definition = LicenseDefinition(
            license_id=license_id,
            kind=kind,
            total_units=total_units,
            tick_seconds=tick_seconds,
            secret=self._server_secret,
        )
        state = LicenseShardState(
            definition=definition,
            ledger=LicenseLedger(
                license_id=license_id,
                total_gcl=total_units,
                beta=self.policy.default_beta,
            ),
        )
        with self._registry_lock:
            if license_id in self._states:
                raise ValueError(f"license {license_id!r} already issued")
            self._states[license_id] = state
            self._moved.pop(license_id, None)
            # Emitted under the registry lock so a WAL compaction cut
            # (which holds it) can never land between the insert and
            # the journal entry — the license is in the snapshot or in
            # the tail, never in neither.
            self._emit("issue", license_id=license_id, kind=kind.value,
                       total_units=total_units, tick_seconds=tick_seconds)
        return definition

    def revoke_license(self, license_id: str) -> None:
        """Revoke: future renewals fail; outstanding sub-GCLs drain out."""
        state = self.license_state(license_id)
        with state.lock:
            state.definition.revoked = True
            self._emit("revoke", license_id=license_id)

    def license_state(self, license_id: str) -> LicenseShardState:
        """The per-license state record (definition + ledger + lock)."""
        with self._registry_lock:
            state = self._states.get(license_id)
        if state is None:
            raise LicenseUnknown(license_id)
        return state

    def license_ids(self) -> List[str]:
        with self._registry_lock:
            return list(self._states)

    def ledger(self, license_id: str) -> LicenseLedger:
        return self.license_state(license_id).ledger

    def license_definition(self, license_id: str) -> LicenseDefinition:
        return self.license_state(license_id).definition

    # ------------------------------------------------------------------
    # SL-Local lifecycle
    # ------------------------------------------------------------------
    def handle_init(self, request: InitRequest, clock: Clock,
                    stats: SgxStats) -> InitResponse:
        """Section 5.2.4: remote-attest the SL-Local, return SLID + OBK.

        A re-init of a client that *did not* shut down gracefully is the
        crash path: its holdings are written off as lost (Section 5.7)
        and no OBK is returned, so a replayed tree image cannot restore.
        """
        with self._counters_lock:
            self.inits_served += 1
        try:
            self._ras.verify_remote(
                clock, stats, request.report, request.platform_secret
            )
        except AttestationError:
            return InitResponse(status=Status.ATTESTATION_FAILED)

        with self._clients_lock:
            if request.slid is None:
                slid = self._next_slid
                self._next_slid += 1
                self._clients[slid] = _ClientState(slid=slid)
                self._emit("admit", slid=slid)
                return InitResponse(status=Status.OK, slid=slid,
                                    old_backup_key=None)

            client = self._clients.get(request.slid)
            if client is None:
                return InitResponse(status=Status.UNKNOWN_CLIENT)

            if client.graceful_shutdown and client.escrowed_root_key is not None:
                obk = client.escrowed_root_key
                client.graceful_shutdown = False
                client.escrowed_root_key = None
                self._emit("escrow_clear", slid=client.slid)
                return InitResponse(status=Status.OK, slid=client.slid,
                                    old_backup_key=obk)

            # Crash path: pessimistically count every outstanding unit
            # lost (acquires license locks under the clients lock — the
            # one permitted ordering).
            self._write_off(client)
            return InitResponse(status=Status.OK, slid=client.slid,
                                old_backup_key=None)

    def handle_shutdown(self, notice: ShutdownNotice) -> Status:
        """Escrow the root key of a gracefully exiting SL-Local.

        Returns a typed :class:`Status` (``OK`` / ``UNKNOWN_CLIENT``)
        instead of raising, so over the wire a client can tell "the
        server does not know me" apart from a transport fault's generic
        error envelope.
        """
        with self._clients_lock:
            client = self._clients.get(notice.slid)
            if client is None:
                return Status.UNKNOWN_CLIENT
            client.escrowed_root_key = notice.root_key
            client.graceful_shutdown = True
            self._emit("escrow", slid=notice.slid, root_key=notice.root_key)
        return Status.OK

    def report_crash(self, slid: int) -> None:
        """Out-of-band crash signal (e.g. heartbeat loss): write off."""
        with self._clients_lock:
            client = self._clients.get(slid)
            if client is not None:
                self._write_off(client)

    def return_units(self, slid: int, license_id: str, units: int) -> Status:
        """A graceful SL-Local returns unused sub-GCL units to the pool.

        Typed statuses, like :meth:`handle_shutdown`: ``UNKNOWN_CLIENT``
        for a SLID the server never issued (distinguishable from wire
        faults), and :class:`LicenseUnknown` still raised for a license
        that was never provisioned (a server configuration error, not a
        client-state mismatch).
        """
        with self._clients_lock:
            client = self._clients.get(slid)
        if client is None:
            return Status.UNKNOWN_CLIENT
        moved = self._moved.get(license_id)
        if moved is not None:
            return MigratingNotice(license_id=license_id, new_owner=moved)
        state = self.license_state(license_id)
        with state.lock:
            if state.frozen:
                return MigratingNotice(license_id=license_id)
            held = client.holdings.get(license_id, 0)
            returned = min(units, held)
            client.holdings[license_id] = held - returned
            key = self._node_key(slid)
            state.ledger.outstanding[key] = max(
                0, state.ledger.outstanding.get(key, 0) - returned
            )
            if returned > 0:
                self._emit("return", license_id=license_id, node_key=key,
                           units=returned)
        return Status.OK

    # ------------------------------------------------------------------
    # Fleet-internal methods (shard router support)
    # ------------------------------------------------------------------
    def handle_admit(self, slid: int) -> Status:
        """Register a SLID assigned by another shard (idempotent).

        In a sharded fleet one *home* shard owns identity (attestation,
        SLID allocation, key escrow); the router then admits the SLID on
        every license-owning shard so renewals there recognise the
        client.  Local SLID allocation skips past admitted values so a
        direct init on this shard can never collide.
        """
        with self._clients_lock:
            self._next_slid = max(self._next_slid, slid + 1)
            if slid not in self._clients:
                self._clients[slid] = _ClientState(slid=slid)
                self._emit("admit", slid=slid)
        return Status.OK

    def handle_crash(self, slid: int) -> Status:
        """Wire-facing crash write-off (router broadcast on re-init)."""
        self.report_crash(slid)
        return Status.OK

    def handle_ledger_probe(
        self, payload: Any = None
    ) -> Dict[str, Dict[str, Any]]:
        """Ledger accounting snapshot, for monitoring and load harnesses.

        Returns ``{license_id: {total, outstanding, lost, available,
        holders, expected_loss}}`` — every field read from the ledger's
        O(1) running aggregates, so a probe costs constant work and
        constant bytes per license no matter how many nodes hold units.

        ``payload`` is either a license id (one license; ``None`` means
        all of them) or a dict ``{"license_id": ..., "detail": ...}``.
        ``detail="summary"`` adds the bounded per-license summary
        (top-k holders, log2 holding histogram); ``detail="full"`` is
        the explicit opt-in for the complete ``outstanding`` /
        ``node_conditions`` maps — O(C) bytes, never shipped by
        default.
        """
        detail = None
        license_id = payload
        if isinstance(payload, dict):
            license_id = payload.get("license_id")
            detail = payload.get("detail")
        ids = [license_id] if license_id is not None else self.license_ids()
        probe: Dict[str, Dict[str, Any]] = {}
        for lid in ids:
            state = self.license_state(lid)
            with state.lock:
                ledger = state.ledger
                row = {
                    "total": ledger.total_gcl,
                    "outstanding": ledger.outstanding_total,
                    "lost": ledger.lost_units,
                    "available": ledger.available,
                    "holders": ledger.holder_count,
                    "expected_loss": ledger.expected_loss(),
                }
                if detail == "summary":
                    row["summary"] = ledger_summary(ledger)
                elif detail == "full":
                    row["ledger"] = ledger_to_wire(ledger)
                probe[lid] = row
        return probe

    # ------------------------------------------------------------------
    # Migration surface (online ring membership changes)
    # ------------------------------------------------------------------
    def freeze_license(self, license_id: str) -> Status:
        """Halt mutations of one license while its record migrates.

        While frozen, ``renew``/``return_units`` answer with a
        :class:`~repro.core.protocol.MigratingNotice` retry-after
        envelope; nothing is mutated, so the exported state stays exact.
        """
        state = self.license_state(license_id)
        with state.lock:
            state.frozen = True
        return Status.OK

    def thaw_license(self, license_id: str) -> Status:
        """Resume serving a license (migration aborted or inbound done)."""
        state = self.license_state(license_id)
        with state.lock:
            state.frozen = False
        return Status.OK

    def export_license_state(self, license_id: str) -> Dict[str, Any]:
        """The full wire form of one license record + its holdings.

        Must be called on a frozen license (or one with no live traffic):
        the snapshot is taken under the license lock and is exact as of
        the return.
        """
        state = self.license_state(license_id)
        # Lock order: clients lock before license lock (the write-off
        # ordering) — never the reverse.
        with self._clients_lock, state.lock:
            holdings: Dict[str, int] = {}
            for slid, client in self._clients.items():
                units = client.holdings.get(license_id, 0)
                if units:
                    holdings[str(slid)] = units
            return {
                "definition": definition_to_wire(state.definition),
                "ledger": ledger_to_wire(state.ledger),
                "frozen": state.frozen,
                "holdings": holdings,
            }

    def install_license_state(self, payload: Dict[str, Any]) -> Status:
        """Install (or overwrite) a license record from its wire form.

        The inbound record arrives *unfrozen* — installation is the
        hand-off point, after which this shard serves the license.
        Unknown SLIDs in the holdings are admitted on the fly.
        """
        definition = definition_from_wire(payload["definition"])
        ledger = ledger_from_wire(payload["ledger"])
        # Reconstructing from wire form rebuilt the Equation 1
        # aggregates from scratch; prove it before serving — promotion
        # must never adopt a ledger whose running sums disagree with
        # its maps.
        ledger.audit_aggregates()
        state = LicenseShardState(
            definition=definition,
            ledger=ledger,
        )
        with self._registry_lock:
            self._states[definition.license_id] = state
            self._moved.pop(definition.license_id, None)
        for slid_text, units in payload.get("holdings", {}).items():
            slid = int(slid_text)
            self.handle_admit(slid)
            with self._clients_lock:
                client = self._clients[slid]
            with state.lock:
                client.holdings[definition.license_id] = units
        with self._registry_lock:
            # Journal the whole record wholesale (promotion installs a
            # replicated ledger this way): a shard that died right
            # after a promotion recovers the licenses it had just
            # adopted.  Registry lock for the same compaction-cut
            # atomicity as "issue".
            self._emit("install_license",
                       license_id=definition.license_id, record=payload)
        return Status.OK

    def release_license(self, license_id: str,
                        new_owner: Optional[str] = None) -> Status:
        """Drop a migrated-out license, leaving a redirect tombstone.

        Stale routers that still dial this shard get a
        ``MigratingNotice`` naming ``new_owner`` (``"name"`` or
        ``"name=host:port"``) and self-heal their ring view.
        """
        with self._registry_lock:
            state = self._states.pop(license_id, None)
            if new_owner:
                self._moved[license_id] = new_owner
        if state is None:
            return Status.UNKNOWN_CLIENT
        with self._clients_lock:
            for client in self._clients.values():
                with state.lock:
                    client.holdings.pop(license_id, None)
        with self._registry_lock:
            self._emit("release", license_id=license_id,
                       new_owner=new_owner)
        return Status.OK

    def export_identity(self) -> Dict[str, Any]:
        """Escrowed-key/graceful flags + SLID watermark, wire-ready."""
        with self._clients_lock:
            return {
                "next_slid": self._next_slid,
                "clients": {
                    str(slid): {
                        "escrowed_root_key": client.escrowed_root_key,
                        "graceful_shutdown": client.graceful_shutdown,
                    }
                    for slid, client in self._clients.items()
                },
            }

    def install_identity(self, payload: Dict[str, Any]) -> Status:
        """Fold another shard's identity snapshot into this one.

        Used when a follower takes over the *home* role: escrowed keys
        and graceful flags must survive, or every fleet client would be
        treated as crashed on its next re-init.
        """
        with self._clients_lock:
            self._next_slid = max(self._next_slid,
                                  int(payload.get("next_slid", 1)))
            for slid_text, fields in payload.get("clients", {}).items():
                slid = int(slid_text)
                client = self._clients.get(slid)
                if client is None:
                    client = _ClientState(slid=slid)
                    self._clients[slid] = client
                    self._next_slid = max(self._next_slid, slid + 1)
                if fields.get("escrowed_root_key") is not None:
                    client.escrowed_root_key = fields["escrowed_root_key"]
                    client.graceful_shutdown = bool(
                        fields.get("graceful_shutdown", False)
                    )
            self._emit("install_identity", identity=payload)
        return Status.OK

    def _write_off(self, client: _ClientState) -> None:
        for license_id in list(client.holdings):
            with self._registry_lock:
                state = self._states.get(license_id)
            if state is None:
                continue
            with state.lock:
                units = client.holdings.get(license_id, 0)
                key = self._node_key(client.slid)
                outstanding = state.ledger.outstanding.get(key, 0)
                lost = min(units, outstanding)
                state.ledger.outstanding[key] = outstanding - lost
                state.ledger.lost_units += lost
                client.holdings.pop(license_id, None)
                if lost > 0:
                    self._emit("writeoff", license_id=license_id,
                               node_key=key, units=lost)
        client.holdings.clear()
        client.escrowed_root_key = None
        client.graceful_shutdown = False
        self._emit("escrow_clear", slid=client.slid)

    # ------------------------------------------------------------------
    # Renewal
    # ------------------------------------------------------------------
    def handle_renew(self, request: RenewRequest) -> RenewResponse:
        """Validate the license blob and run Algorithm 1.

        The whole decision — availability check, Algorithm 1, ledger
        mutation, holdings update, durable commit — happens under the
        license's own lock, so concurrent renewals of one license can
        never over-grant while renewals of different licenses proceed in
        parallel.
        """
        with self._counters_lock:
            self.renewals_served += 1
        self._maybe_autotune()
        client, state, early = self._renew_prepare(request)
        if early is not None:
            return early
        with state.lock:
            response, mutated = self._renew_locked(state, client, request)
            if mutated:
                self._charge_commit()
            return response

    def handle_renew_batch(self, batch: BatchRequest) -> BatchResponse:
        """Vectorized renewal: answer a whole coalesced frame at once.

        The members are grouped by license and each group runs under its
        license's lock; the whole batch then pays **one** durable-commit
        charge — the server-side half of the batching win: N coalesced
        renewals cost one dispatch hop and one ledger commit instead of
        N of each.  When a :class:`~repro.storage.wal.ShardPersistence`
        is attached, ``commit_group`` scopes the batch so its journal
        appends ride a single group fsync, and the budget charge sleeps
        only the remainder of ``ledger_commit_seconds`` after that real
        sync.  Licenses are visited in sorted order so the lock
        acquisition sequence is deterministic, and per-member faults
        (unknown client, frozen license, invalid blob) degrade only
        that slot, never the batch.
        """
        requests = list(batch.requests)
        with self._counters_lock:
            self.renewals_served += len(requests)
            self.batches_served += 1
        self._maybe_autotune()
        responses: List[Any] = [None] * len(requests)
        prepared: List[Any] = [None] * len(requests)
        groups: Dict[str, List[int]] = {}
        for index, request in enumerate(requests):
            client, state, early = self._renew_prepare(request)
            if early is not None:
                responses[index] = early
            else:
                prepared[index] = (client, state)
                groups.setdefault(request.license_id, []).append(index)
        group_cm = (self.commit_group() if self.commit_group is not None
                    else contextlib.nullcontext())
        mutated = False
        with group_cm:
            for license_id in sorted(groups):
                indices = groups[license_id]
                state = prepared[indices[0]][1]
                with state.lock:
                    for index in indices:
                        client, _ = prepared[index]
                        responses[index], did = self._renew_locked(
                            state, client, requests[index]
                        )
                        mutated = mutated or did
        if mutated:
            # After the group scope closed: the WAL's single batch fsync
            # has happened, so commit_hook reports it and the budget
            # sleep covers only the remainder.  The grants are durable
            # before any member of the batch is acknowledged.
            self._charge_commit()
        return BatchResponse(responses=tuple(responses))

    def _renew_prepare(
        self, request: RenewRequest
    ) -> Tuple[Optional[_ClientState], Optional[LicenseShardState],
               Optional[Any]]:
        """Pre-lock validation shared by single and batched renewals.

        Returns ``(client, state, None)`` when the renewal may proceed,
        or ``(None, None, terminal_response)`` when it is already
        answerable without touching the license lock.
        """
        with self._clients_lock:
            client = self._clients.get(request.slid)
        if client is None:
            return None, None, RenewResponse(status=Status.UNKNOWN_CLIENT)
        moved = self._moved.get(request.license_id)
        if moved is not None:
            return None, None, MigratingNotice(
                license_id=request.license_id, new_owner=moved
            )
        with self._registry_lock:
            state = self._states.get(request.license_id)
        if state is None or not self._blob_valid(state.definition,
                                                request.license_blob):
            return None, None, RenewResponse(status=Status.INVALID_LICENSE)
        return client, state, None

    def _renew_locked(self, state: LicenseShardState, client: _ClientState,
                      request: RenewRequest) -> Tuple[Any, bool]:
        """Algorithm 1 under ``state.lock``, *without* the commit charge.

        Returns ``(response, mutated)``; the caller owes one durable-
        commit charge per critical section in which any member mutated
        the ledger (one per renewal in :meth:`handle_renew`, one per
        license group in :meth:`handle_renew_batch`).
        """
        if state.frozen:
            return MigratingNotice(license_id=request.license_id), False
        definition = state.definition
        if definition.revoked:
            return RenewResponse(status=Status.REVOKED), False
        if definition.kind is LeaseKind.PERPETUAL:
            # Perpetual leases are a binary activation: no unit
            # accounting, no Algorithm 1 (Section 4.3).
            return RenewResponse(
                status=Status.OK,
                granted_units=1,
                lease_kind=definition.kind.value,
                tick_seconds=definition.tick_seconds,
            ), False
        ledger = state.ledger
        if ledger.available <= 0:
            self._note_refusal(state)
            return RenewResponse(status=Status.EXHAUSTED), False

        node_key = self._node_key(request.slid)
        requester = NodeCondition(
            node_id=node_key,
            weight=request.weight,
            network_reliability=self._evidence_reliability(state, node_key,
                                                          request),
            health=request.health,
        )
        # Algorithm 1's C, from the ledger's running holder count — no
        # holder-set scan, so the renew path stays O(1) in how many
        # nodes hold this license.
        crowd = ledger.holder_count
        if ledger.outstanding.get(node_key, 0) <= 0:
            crowd += 1
        available_before = ledger.available
        hint = None
        if self.admission:
            # Measured Algorithm 1 concurrency: EWMA over holders +
            # this requester.  The hint only ever *raises* C inside the
            # renewal evaluation, so a decaying crowd keeps grants
            # conservative until the EWMA settles.
            sample = float(crowd)
            state.concurrency_ewma = (
                sample if state.concurrency_ewma <= 0.0
                else state.concurrency_ewma
                + CONCURRENCY_EWMA_ALPHA * (sample - state.concurrency_ewma)
            )
            hint = state.concurrency_ewma
        # With admission on, holders are priced at their remembered
        # conditions (the running aggregates); the static baseline
        # fabricates perfect holders, exactly like the old per-renewal
        # snapshot did.
        decision = renew_lease_inplace(ledger, requester, self.policy,
                                       concurrency_hint=hint,
                                       fabricate_holders=not self.admission)
        granted = decision.granted_units
        degraded = False
        if self.admission and granted > 0:
            # Admission ladder, upper rungs: under pool pressure, cap
            # the grant to a concurrency-fair slice of what is left so
            # late arrivals in a flash crowd still find units.
            cap = self._admission_cap(available_before,
                                      state.concurrency_ewma,
                                      ledger.total_gcl)
            if cap < granted:
                granted = cap
                degraded = True
        if self.admission and granted <= 0 and requester.health > 0.0:
            # Bottom rung: Algorithm 1's geometric decay talked itself
            # down to nothing while the pool still has units.  Hand out
            # the smallest honest slice instead of refusing — a
            # degraded grant keeps the client running.  The slice still
            # honours Equation 1 (a shaky requester only gets what the
            # remaining loss headroom under τ can absorb) and the
            # replication headroom clamp below.
            granted = self._admission_floor(available_before,
                                            state.concurrency_ewma)
            if granted > 0 and requester.health < 1.0:
                tau = self.policy.tau_fraction * ledger.total_gcl
                loss_headroom = tau - ledger.expected_loss()
                crash = 1.0 - requester.health
                granted = (min(granted, int(loss_headroom / crash))
                           if loss_headroom > 0 else 0)
                granted = max(granted, 0)
            degraded = granted > 0
        if granted > 0 and self.grant_headroom is not None:
            # Replication backpressure: never let un-replicated
            # grants exceed the lag budget — what the follower might
            # not know about is exactly what a promotion forfeits,
            # so this clamp is what makes the loss bound hold.  A
            # None headroom means the license has no live follower
            # (nothing to lag behind): no clamp.  A *zero* headroom
            # (fenced, or lag budget spent) is a hard refusal the
            # admission ladder must never override: a deposed primary
            # must not mint units its successor cannot know about.
            headroom = self.grant_headroom(
                request.license_id, max(decision.granted_units, granted)
            )
            if headroom is not None and headroom < granted:
                granted = headroom
                degraded = False
        # The renewal evaluation already booked its proposal;
        # re-book the difference to the final grant before answering —
        # down when a clamp shrank it (all the way to zero when
        # backpressure denies it), up when the ladder floor granted
        # where Algorithm 1 proposed nothing.
        if granted != decision.granted_units:
            booked = ledger.outstanding.get(node_key, 0)
            adjusted = booked + (max(granted, 0) - decision.granted_units)
            if adjusted > 0:
                ledger.outstanding[node_key] = adjusted
            else:
                ledger.outstanding.pop(node_key, None)
        if granted <= 0:
            self._note_refusal(state)
            return RenewResponse(status=Status.EXHAUSTED), False
        state.grants += 1
        bucket = granted.bit_length()
        state.grant_hist[bucket] = state.grant_hist.get(bucket, 0) + 1
        if degraded:
            state.degraded += 1
            with self._counters_lock:
                self.degraded_served += 1
        client.holdings[request.license_id] = (
            client.holdings.get(request.license_id, 0) + granted
        )
        self._emit("grant", license_id=request.license_id,
                   node_key=self._node_key(request.slid), units=granted)
        return RenewResponse(
            status=Status.OK,
            granted_units=granted,
            lease_kind=definition.kind.value,
            tick_seconds=definition.tick_seconds,
        ), True

    def _charge_commit(self) -> None:
        """The durable ledger write, inside the critical section: a
        grant is not acknowledged until it cannot be lost.  With a WAL
        attached (commit_hook), the *real* fsync the observer just
        performed is charged against ``ledger_commit_seconds`` and only
        the remainder (if any) is simulated — never both."""
        spent = self.commit_hook() if self.commit_hook is not None else 0.0
        remainder = self.ledger_commit_seconds - spent
        if remainder > 0:
            time.sleep(remainder)

    def _evidence_reliability(self, state: LicenseShardState, node_key: str,
                              request: RenewRequest) -> float:
        """Weigh a claimed network reliability against shipped evidence.

        The client self-reports ``network_reliability``; the telemetry
        fields carry what its transport actually did.  Fresh drops or
        re-dials since the node's previous renewal cap the claim — a
        link that just lost ``d`` frames is priced at most ``1/(1+d)``
        reliable regardless of what it claims.  Lower reliability is not
        a punishment: per Algorithm 1 lines 6-8, a *healthy* node on a
        flaky link earns a larger sub-GCL to ride out disconnection.
        Always records the latest telemetry for ``renewal_health``.
        """
        claimed = request.network_reliability
        previous = state.node_telemetry.get(node_key)
        state.node_telemetry[node_key] = {
            "rtt_seconds": request.rtt_seconds,
            "retries": request.retries,
            "reconnects": request.reconnects,
        }
        if not self.admission or previous is None:
            return claimed
        fresh_drops = (max(0, request.retries - previous["retries"])
                       + max(0, request.reconnects - previous["reconnects"]))
        if fresh_drops <= 0:
            return claimed
        evidence = 1.0 / (1.0 + fresh_drops)
        return max(0.01, min(claimed, evidence))

    def _note_refusal(self, state: LicenseShardState) -> None:
        """Count one EXHAUSTED answer (caller holds ``state.lock``)."""
        state.exhausted += 1
        with self._counters_lock:
            self.exhausted_served += 1

    @staticmethod
    def _admission_cap(available: int, concurrency_ewma: float,
                       total: int) -> int:
        """Pressure-scaled grant ceiling (admission ladder upper rungs).

        Above half the pool free, Algorithm 1's own sizing mostly
        stands — but no single node ever receives more than half of
        what remains, so one early arrival with a flaky-network boost
        cannot legally drain a fresh pool and starve the entire crowd
        behind it.  As pressure mounts the cap divides what is left by
        a multiple of the measured concurrency, so the pool drains in
        O(C·log) fair slices instead of a few early winners taking
        everything.
        """
        if total <= 0 or available >= total * 0.5:
            return max(1, available // 2)
        crowd = max(1, int(concurrency_ewma + 0.999))
        if available >= total * 0.25:
            return max(1, available // (2 * crowd))
        return max(1, available // (4 * crowd))

    @staticmethod
    def _admission_floor(available: int, concurrency_ewma: float) -> int:
        """Smallest honest grant when Algorithm 1 proposes zero.

        One C-fair sliver of the remaining pool (at least one unit while
        any remain) — graceful degradation instead of EXHAUSTED.
        """
        if available <= 0:
            return 0
        crowd = max(1, int(concurrency_ewma + 0.999))
        return max(1, available // (8 * crowd))

    # ------------------------------------------------------------------
    # Renewal health + auto-tuner
    # ------------------------------------------------------------------
    def renewal_health(self) -> Dict[str, Any]:
        """Per-license renewal-health report for ``_server_stats``.

        Surfaces what the global ``exhausted_served`` counter hides:
        which licenses are refusing, how hard the admission ladder is
        degrading grants, the measured concurrency C, and the grant-size
        histogram (keys are the log2 bucket's lower bound).
        """
        licenses: Dict[str, Any] = {}
        for license_id in self.license_ids():
            try:
                state = self.license_state(license_id)
            except LicenseUnknown:
                continue
            with state.lock:
                licenses[license_id] = {
                    "grants": state.grants,
                    "exhausted": state.exhausted,
                    "degraded": state.degraded,
                    "concurrency_ewma": round(state.concurrency_ewma, 3),
                    # O(1) from the ledger's running aggregates — the
                    # report stays bounded at any holder count.
                    "holders": state.ledger.holder_count,
                    "expected_loss": round(state.ledger.expected_loss(), 3),
                    "grant_hist": {
                        str(1 << max(0, bucket - 1)): count
                        for bucket, count in sorted(state.grant_hist.items())
                    },
                }
        with self._counters_lock:
            exhausted = self.exhausted_served
            degraded = self.degraded_served
        return {
            "admission": self.admission,
            "autotune_lag": self.autotune_lag,
            "tau_fraction": self.policy.tau_fraction,
            "exhausted_served": exhausted,
            "degraded_served": degraded,
            "autotune": {
                "widened": self.autotune_widened,
                "narrowed": self.autotune_narrowed,
            },
            "licenses": licenses,
        }

    def _maybe_autotune(self) -> None:
        """Close the outer loop: refusals vs forfeitures steer τ and the
        replication lag budget.

        Every :data:`AUTOTUNE_INTERVAL` renewals, compare how many
        renewals were refused (EXHAUSTED) against how many units were
        forfeited (crash write-offs) since the last look.  More refusals
        than forfeits means the server is being too timid — widen τ and
        the lag budget so grants flow; more forfeits means crashes are
        burning the pool — narrow both so less is at risk per crash.
        """
        if not self.autotune_lag:
            return
        with self._counters_lock:
            renewals = self.renewals_served
            exhausted = self.exhausted_served
        with self._autotune_lock:
            if renewals - self._autotune_last_renewals < AUTOTUNE_INTERVAL:
                return
            lost = self._total_lost_units()
            refusals = exhausted - self._autotune_last_exhausted
            forfeits = lost - self._autotune_last_lost
            self._autotune_last_renewals = renewals
            self._autotune_last_exhausted = exhausted
            self._autotune_last_lost = lost
            if refusals > forfeits:
                self._autotune_step(widen=True)
            elif forfeits > refusals:
                self._autotune_step(widen=False)

    def _total_lost_units(self) -> int:
        total = 0
        for license_id in self.license_ids():
            try:
                state = self.license_state(license_id)
            except LicenseUnknown:
                continue
            with state.lock:
                total += state.ledger.lost_units
        return total

    def _autotune_step(self, widen: bool) -> None:
        """One tuner move (caller holds ``_autotune_lock``)."""
        factor = 2.0 if widen else 0.5
        if self.lag_budget_control is not None:
            self.lag_budget_control(factor)
        tau = self.policy.tau_fraction
        new_tau = (min(AUTOTUNE_TAU_MAX, tau * 1.25) if widen
                   else max(AUTOTUNE_TAU_MIN, tau / 1.25))
        if new_tau != tau:
            # RenewalPolicy is frozen: swap in a re-parameterized copy.
            self.policy = replace(self.policy, tau_fraction=new_tau)
        if widen:
            self.autotune_widened += 1
        else:
            self.autotune_narrowed += 1

    def _blob_valid(self, definition: LicenseDefinition, blob: bytes) -> bool:
        return blob == definition.license_blob()

    @staticmethod
    def _node_key(slid: int) -> str:
        return f"slid:{slid}"


# ----------------------------------------------------------------------
# Wire forms of the server-side records (migration + replication reuse
# these; they are JSON-plain, like every protocol message field dict)
# ----------------------------------------------------------------------
def definition_to_wire(definition: LicenseDefinition) -> Dict[str, Any]:
    return {
        "license_id": definition.license_id,
        "kind": definition.kind.value,
        "total_units": definition.total_units,
        "tick_seconds": definition.tick_seconds,
        "secret": definition.secret.hex(),
        "revoked": definition.revoked,
    }


def definition_from_wire(fields: Dict[str, Any]) -> LicenseDefinition:
    return LicenseDefinition(
        license_id=fields["license_id"],
        kind=LeaseKind(fields["kind"]),
        total_units=fields["total_units"],
        tick_seconds=fields["tick_seconds"],
        secret=bytes.fromhex(fields["secret"]),
        revoked=fields["revoked"],
    )


def ledger_to_wire(ledger: LicenseLedger) -> Dict[str, Any]:
    return {
        "license_id": ledger.license_id,
        "total_gcl": ledger.total_gcl,
        "beta": ledger.beta,
        "outstanding": {key: units
                        for key, units in ledger.outstanding.items()},
        "lost_units": ledger.lost_units,
        "node_conditions": {
            key: {
                "weight": condition.weight,
                "network_reliability": condition.network_reliability,
                "health": condition.health,
            }
            for key, condition in ledger.node_conditions.items()
        },
    }


def ledger_summary(ledger: LicenseLedger, top_k: int = 8) -> Dict[str, Any]:
    """Bounded introspection view of one ledger.

    The full wire form (:func:`ledger_to_wire`) ships the complete
    ``outstanding`` and ``node_conditions`` maps — O(C) bytes, which at
    10^5 holders is a multi-megabyte stats answer.  This summary is
    bounded regardless of holder count: running aggregates, the top-k
    largest holders, and a log2 histogram of holding sizes (at most 64
    buckets).  Computing it is one O(C) pass, but only on explicit
    probe request — never on the renew path.
    """
    holdings = [(units, node_id)
                for node_id, units in ledger.outstanding.items()
                if units > 0]
    holdings.sort(reverse=True)
    histogram: Dict[str, int] = {}
    for units, _ in holdings:
        bucket = str(1 << max(0, units.bit_length() - 1))
        histogram[bucket] = histogram.get(bucket, 0) + 1
    return {
        "holders": ledger.holder_count,
        "outstanding": ledger.outstanding_total,
        "lost": ledger.lost_units,
        "available": ledger.available,
        "expected_loss": ledger.expected_loss(),
        "weight_sum": ledger.weight_sum,
        "beta": ledger.beta,
        "conditions_remembered": len(ledger.node_conditions),
        "top_holders": [
            {"node": node_id, "units": units,
             "expected_loss": ledger.node_expected_loss(node_id)}
            for units, node_id in holdings[:max(0, top_k)]
        ],
        "holding_hist": dict(sorted(histogram.items(),
                                    key=lambda item: int(item[0]))),
    }


def ledger_from_wire(fields: Dict[str, Any]) -> LicenseLedger:
    return LicenseLedger(
        license_id=fields["license_id"],
        total_gcl=fields["total_gcl"],
        beta=fields["beta"],
        outstanding=dict(fields["outstanding"]),
        lost_units=fields["lost_units"],
        node_conditions={
            key: NodeCondition(node_id=key, **condition)
            for key, condition in fields["node_conditions"].items()
        },
    )
