"""SL-Remote: the trusted license server.

Responsibilities (Sections 5.1-5.3, 5.6-5.7):

* issue licenses and hold the authoritative GCL pool per license;
* validate SL-Local instances via remote attestation, assign SLIDs;
* run the adaptive renewal policy (Algorithm 1) when handing out
  sub-GCLs;
* escrow root sealing keys at graceful shutdown and return them as the
  old-backup key (OBK) at next init;
* enforce the pessimistic crash rule: an SL-Local that re-inits without
  having shut down gracefully forfeits every unit it held.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.gcl import Gcl, LeaseKind
from repro.core.protocol import (
    InitRequest,
    InitResponse,
    RenewRequest,
    RenewResponse,
    ShutdownNotice,
    Status,
)
from repro.core.renewal import (
    LicenseLedger,
    NodeCondition,
    RenewalDecision,
    RenewalPolicy,
    renew_lease,
)
from repro.core.licensefile import VENDOR_SECRET, mint_license_blob
from repro.sgx.attestation import AttestationError, RemoteAttestationService
from repro.sim.clock import Clock
from repro.sgx.driver import SgxStats


class LicenseUnknown(Exception):
    """Raised when operating on a license SL-Remote never issued."""


@dataclass
class LicenseDefinition:
    """A license as provisioned by the software developer."""

    license_id: str
    kind: LeaseKind
    total_units: int
    tick_seconds: float = 0.0
    secret: bytes = b""
    revoked: bool = False

    def license_blob(self) -> bytes:
        """The license file handed to legitimate users.

        Minted under the vendor secret; both SL-Remote and the in-app
        authentication module validate the same bytes.
        """
        return mint_license_blob(self.license_id, self.secret)


@dataclass
class _ClientState:
    """Server-side record of one SL-Local instance."""

    slid: int
    escrowed_root_key: Optional[int] = None
    graceful_shutdown: bool = False
    #: outstanding units per license (mirror of the ledgers, per client)
    holdings: Dict[str, int] = field(default_factory=dict)


class SlRemote:
    """The trusted remote server."""

    def __init__(
        self,
        ras: RemoteAttestationService,
        policy: Optional[RenewalPolicy] = None,
        server_secret: bytes = VENDOR_SECRET,
    ) -> None:
        self._ras = ras
        self.policy = policy if policy is not None else RenewalPolicy()
        self._server_secret = server_secret
        self._licenses: Dict[str, LicenseDefinition] = {}
        self._ledgers: Dict[str, LicenseLedger] = {}
        self._clients: Dict[int, _ClientState] = {}
        self._slid_counter = itertools.count(1)
        #: Total renewal round trips served (network-cost accounting).
        self.renewals_served = 0
        self.inits_served = 0

    # ------------------------------------------------------------------
    # Wire protocol surface
    # ------------------------------------------------------------------
    def protocol_handlers(self) -> Dict[str, Callable]:
        """Method table every transport backend serves (the one place
        the method-name -> handler binding is defined)."""
        return {
            "init": self.handle_init,
            "renew": self.handle_renew,
            "shutdown": self.handle_shutdown,
            "return_units": lambda request: self.return_units(*request),
        }

    # ------------------------------------------------------------------
    # Developer-facing provisioning
    # ------------------------------------------------------------------
    def issue_license(self, license_id: str, total_units: int,
                      kind: LeaseKind = LeaseKind.COUNT,
                      tick_seconds: float = 0.0) -> LicenseDefinition:
        """Create a license with a total GCL pool of ``total_units``."""
        if license_id in self._licenses:
            raise ValueError(f"license {license_id!r} already issued")
        definition = LicenseDefinition(
            license_id=license_id,
            kind=kind,
            total_units=total_units,
            tick_seconds=tick_seconds,
            secret=self._server_secret,
        )
        self._licenses[license_id] = definition
        self._ledgers[license_id] = LicenseLedger(
            license_id=license_id,
            total_gcl=total_units,
            beta=self.policy.default_beta,
        )
        return definition

    def revoke_license(self, license_id: str) -> None:
        """Revoke: future renewals fail; outstanding sub-GCLs drain out."""
        definition = self._licenses.get(license_id)
        if definition is None:
            raise LicenseUnknown(license_id)
        definition.revoked = True

    def ledger(self, license_id: str) -> LicenseLedger:
        ledger = self._ledgers.get(license_id)
        if ledger is None:
            raise LicenseUnknown(license_id)
        return ledger

    def license_definition(self, license_id: str) -> LicenseDefinition:
        definition = self._licenses.get(license_id)
        if definition is None:
            raise LicenseUnknown(license_id)
        return definition

    # ------------------------------------------------------------------
    # SL-Local lifecycle
    # ------------------------------------------------------------------
    def handle_init(self, request: InitRequest, clock: Clock,
                    stats: SgxStats) -> InitResponse:
        """Section 5.2.4: remote-attest the SL-Local, return SLID + OBK.

        A re-init of a client that *did not* shut down gracefully is the
        crash path: its holdings are written off as lost (Section 5.7)
        and no OBK is returned, so a replayed tree image cannot restore.
        """
        self.inits_served += 1
        try:
            self._ras.verify_remote(
                clock, stats, request.report, request.platform_secret
            )
        except AttestationError:
            return InitResponse(status=Status.ATTESTATION_FAILED)

        if request.slid is None:
            slid = next(self._slid_counter)
            self._clients[slid] = _ClientState(slid=slid)
            return InitResponse(status=Status.OK, slid=slid, old_backup_key=None)

        client = self._clients.get(request.slid)
        if client is None:
            return InitResponse(status=Status.UNKNOWN_CLIENT)

        if client.graceful_shutdown and client.escrowed_root_key is not None:
            obk = client.escrowed_root_key
            client.graceful_shutdown = False
            client.escrowed_root_key = None
            return InitResponse(status=Status.OK, slid=client.slid,
                                old_backup_key=obk)

        # Crash path: pessimistically count every outstanding unit lost.
        self._write_off(client)
        return InitResponse(status=Status.OK, slid=client.slid,
                            old_backup_key=None)

    def handle_shutdown(self, notice: ShutdownNotice) -> None:
        """Escrow the root key of a gracefully exiting SL-Local."""
        client = self._clients.get(notice.slid)
        if client is None:
            raise LicenseUnknown(f"unknown SLID {notice.slid}")
        client.escrowed_root_key = notice.root_key
        client.graceful_shutdown = True

    def report_crash(self, slid: int) -> None:
        """Out-of-band crash signal (e.g. heartbeat loss): write off."""
        client = self._clients.get(slid)
        if client is not None:
            self._write_off(client)

    def return_units(self, slid: int, license_id: str, units: int) -> None:
        """A graceful SL-Local returns unused sub-GCL units to the pool."""
        client = self._clients.get(slid)
        if client is None:
            raise LicenseUnknown(f"unknown SLID {slid}")
        ledger = self.ledger(license_id)
        held = client.holdings.get(license_id, 0)
        returned = min(units, held)
        client.holdings[license_id] = held - returned
        ledger.outstanding[self._node_key(slid)] = max(
            0, ledger.outstanding.get(self._node_key(slid), 0) - returned
        )

    def _write_off(self, client: _ClientState) -> None:
        for license_id, units in client.holdings.items():
            ledger = self._ledgers.get(license_id)
            if ledger is None:
                continue
            key = self._node_key(client.slid)
            outstanding = ledger.outstanding.get(key, 0)
            lost = min(units, outstanding)
            ledger.outstanding[key] = outstanding - lost
            ledger.lost_units += lost
        client.holdings.clear()
        client.escrowed_root_key = None
        client.graceful_shutdown = False

    # ------------------------------------------------------------------
    # Renewal
    # ------------------------------------------------------------------
    def handle_renew(self, request: RenewRequest) -> RenewResponse:
        """Validate the license blob and run Algorithm 1."""
        self.renewals_served += 1
        client = self._clients.get(request.slid)
        if client is None:
            return RenewResponse(status=Status.UNKNOWN_CLIENT)
        definition = self._licenses.get(request.license_id)
        if definition is None or not self._blob_valid(definition, request.license_blob):
            return RenewResponse(status=Status.INVALID_LICENSE)
        if definition.revoked:
            return RenewResponse(status=Status.REVOKED)
        if definition.kind is LeaseKind.PERPETUAL:
            # Perpetual leases are a binary activation: no unit
            # accounting, no Algorithm 1 (Section 4.3).
            return RenewResponse(
                status=Status.OK,
                granted_units=1,
                lease_kind=definition.kind.value,
                tick_seconds=definition.tick_seconds,
            )
        ledger = self._ledgers[request.license_id]
        if ledger.available <= 0:
            return RenewResponse(status=Status.EXHAUSTED)

        requester = NodeCondition(
            node_id=self._node_key(request.slid),
            weight=request.weight,
            network_reliability=request.network_reliability,
            health=request.health,
        )
        concurrent = self._concurrent_conditions(request.license_id, requester)
        decision = renew_lease(ledger, requester, concurrent, self.policy)
        if decision.granted_units <= 0:
            return RenewResponse(status=Status.EXHAUSTED)
        client.holdings[request.license_id] = (
            client.holdings.get(request.license_id, 0) + decision.granted_units
        )
        return RenewResponse(
            status=Status.OK,
            granted_units=decision.granted_units,
            lease_kind=definition.kind.value,
            tick_seconds=definition.tick_seconds,
        )

    def _concurrent_conditions(self, license_id: str,
                               requester: NodeCondition) -> List[NodeCondition]:
        """All nodes currently holding or requesting this license."""
        ledger = self._ledgers[license_id]
        conditions = {requester.node_id: requester}
        for node_id, units in ledger.outstanding.items():
            if units > 0 and node_id not in conditions:
                conditions[node_id] = NodeCondition(node_id=node_id)
        return list(conditions.values())

    def _blob_valid(self, definition: LicenseDefinition, blob: bytes) -> bool:
        return blob == definition.license_blob()

    @staticmethod
    def _node_key(slid: int) -> str:
        return f"slid:{slid}"
