"""Wire messages between SL-Manager, SL-Local, and SL-Remote.

Keeping the protocol explicit (rather than direct method calls) lets
the network layer inject latency and drops, and makes the security
tests precise about what an attacker on the untrusted path can see.

Every message implements ``to_wire``/``from_wire`` — a JSON-ready field
dict — so any transport backend (``repro.net.transport``) can serialize
it through ``repro.net.codec`` and rebuild it on the far side of a real
socket.  Byte fields travel as hex; nested messages nest their dicts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.tokens import ExecutionToken
from repro.crypto.sealing import SealedBlob
from repro.sgx.attestation import AttestationReport


class Status(enum.Enum):
    """Outcome codes shared by all responses."""

    OK = "ok"
    INVALID_LICENSE = "invalid_license"
    EXHAUSTED = "exhausted"
    ATTESTATION_FAILED = "attestation_failed"
    UNKNOWN_CLIENT = "unknown_client"
    REVOKED = "revoked"
    #: The license's ledger is mid-migration between shards; retry after
    #: the interval carried by the accompanying :class:`MigratingNotice`.
    MIGRATING = "migrating"


# ----------------------------------------------------------------------
# SL-Local -> SL-Remote
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class InitRequest:
    """SL-Local's init() call (Section 5.2.4)."""

    slid: Optional[int]  # None on first initialisation
    report: AttestationReport
    platform_secret: int  # quoted platform identity

    def to_wire(self) -> Dict[str, Any]:
        return {
            "slid": self.slid,
            "report": self.report.to_wire(),
            "platform_secret": self.platform_secret,
        }

    @classmethod
    def from_wire(cls, fields: Dict[str, Any]) -> "InitRequest":
        return cls(
            slid=fields["slid"],
            report=AttestationReport.from_wire(fields["report"]),
            platform_secret=fields["platform_secret"],
        )


@dataclass(frozen=True)
class InitResponse:
    status: Status
    slid: Optional[int] = None
    old_backup_key: Optional[int] = None  # OBK, None on first init

    def to_wire(self) -> Dict[str, Any]:
        return {
            "status": self.status.value,
            "slid": self.slid,
            "old_backup_key": self.old_backup_key,
        }

    @classmethod
    def from_wire(cls, fields: Dict[str, Any]) -> "InitResponse":
        return cls(
            status=Status(fields["status"]),
            slid=fields["slid"],
            old_backup_key=fields["old_backup_key"],
        )


@dataclass(frozen=True)
class RenewRequest:
    """Ask SL-Remote for (more) sub-GCL units for a license.

    ``network_reliability``/``health``/``weight`` are the Algorithm 1
    condition inputs; the trailing telemetry fields carry the *observed*
    evidence behind them — the client transport's measured round-trip
    EWMA and its cumulative retry/reconnect counters — so SL-Remote can
    weigh a claimed reliability against what the connection actually
    did.  All telemetry fields default, and decoding uses those defaults
    when a v1/v2 peer (or an older v3 peer, whose field table is simply
    shorter) omits them.
    """

    slid: int
    license_id: str
    license_blob: bytes  # the user-supplied license file contents
    network_reliability: float
    health: float
    weight: float = 1.0
    rtt_seconds: float = 0.0  # client-observed round-trip EWMA
    retries: int = 0  # transport messages dropped + retried so far
    reconnects: int = 0  # socket re-dials the client has survived

    def to_wire(self) -> Dict[str, Any]:
        return {
            "slid": self.slid,
            "license_id": self.license_id,
            "license_blob": self.license_blob.hex(),
            "network_reliability": self.network_reliability,
            "health": self.health,
            "weight": self.weight,
            "rtt_seconds": self.rtt_seconds,
            "retries": self.retries,
            "reconnects": self.reconnects,
        }

    @classmethod
    def from_wire(cls, fields: Dict[str, Any]) -> "RenewRequest":
        return cls(
            slid=fields["slid"],
            license_id=fields["license_id"],
            license_blob=bytes.fromhex(fields["license_blob"]),
            network_reliability=fields["network_reliability"],
            health=fields["health"],
            weight=fields["weight"],
            rtt_seconds=fields.get("rtt_seconds", 0.0),
            retries=fields.get("retries", 0),
            reconnects=fields.get("reconnects", 0),
        )


@dataclass(frozen=True)
class RenewResponse:
    status: Status
    granted_units: int = 0
    lease_kind: str = "count"
    tick_seconds: float = 0.0

    def to_wire(self) -> Dict[str, Any]:
        return {
            "status": self.status.value,
            "granted_units": self.granted_units,
            "lease_kind": self.lease_kind,
            "tick_seconds": self.tick_seconds,
        }

    @classmethod
    def from_wire(cls, fields: Dict[str, Any]) -> "RenewResponse":
        return cls(
            status=Status(fields["status"]),
            granted_units=fields["granted_units"],
            lease_kind=fields["lease_kind"],
            tick_seconds=fields["tick_seconds"],
        )


@dataclass(frozen=True)
class ShutdownNotice:
    """Graceful shutdown: escrow the root sealing key (Section 5.6)."""

    slid: int
    root_key: int

    def to_wire(self) -> Dict[str, Any]:
        return {"slid": self.slid, "root_key": self.root_key}

    @classmethod
    def from_wire(cls, fields: Dict[str, Any]) -> "ShutdownNotice":
        return cls(slid=fields["slid"], root_key=fields["root_key"])


@dataclass(frozen=True)
class MigratingNotice:
    """Typed retry-after answer for a license whose ledger is in motion.

    Returned (not raised) by any license-scoped handler while the
    license's :class:`~repro.core.sl_remote.LicenseShardState` is frozen
    for an online shard migration, and by the *old* owner after the
    hand-off completes (``new_owner`` then names where the ledger went,
    as ``name`` or ``name=host:port`` so a stale router can re-dial).
    Routers treat it as a bounded retry signal — never an error — so a
    live migration costs clients only ``retry_after_seconds`` waits.
    """

    license_id: str
    retry_after_seconds: float = 0.05
    new_owner: Optional[str] = None
    status: Status = Status.MIGRATING

    def to_wire(self) -> Dict[str, Any]:
        return {
            "license_id": self.license_id,
            "retry_after_seconds": self.retry_after_seconds,
            "new_owner": self.new_owner,
            "status": self.status.value,
        }

    @classmethod
    def from_wire(cls, fields: Dict[str, Any]) -> "MigratingNotice":
        return cls(
            license_id=fields["license_id"],
            retry_after_seconds=fields["retry_after_seconds"],
            new_owner=fields["new_owner"],
            status=Status(fields["status"]),
        )


@dataclass(frozen=True)
class BatchRequest:
    """Several coalesced :class:`RenewRequest` in one frame.

    Client transports gather renewals that arrive within a batching
    window into one of these; SL-Remote answers with a
    :class:`BatchResponse` whose slots line up positionally, and the
    whole batch pays one executor hop and (per distinct license) one
    ledger-commit charge instead of N.
    """

    requests: tuple  # of RenewRequest, in submission order

    def to_wire(self) -> Dict[str, Any]:
        return {"requests": [request.to_wire() for request in self.requests]}

    @classmethod
    def from_wire(cls, fields: Dict[str, Any]) -> "BatchRequest":
        return cls(requests=tuple(RenewRequest.from_wire(f)
                                  for f in fields["requests"]))


#: Wire tags for the polymorphic slots of a :class:`BatchResponse`.
_BATCH_SLOT_TYPES = {"RenewResponse": RenewResponse,
                     "MigratingNotice": MigratingNotice}


@dataclass(frozen=True)
class BatchResponse:
    """Positional replies to a :class:`BatchRequest`.

    Each slot is a :class:`RenewResponse`, or a :class:`MigratingNotice`
    when that one license was mid-migration — a batch never fails
    wholesale because one member needs a routed retry.
    """

    responses: tuple  # of RenewResponse | MigratingNotice

    def to_wire(self) -> Dict[str, Any]:
        return {
            "responses": [
                {"type": type(slot).__name__, "fields": slot.to_wire()}
                for slot in self.responses
            ],
        }

    @classmethod
    def from_wire(cls, fields: Dict[str, Any]) -> "BatchResponse":
        slots = []
        for entry in fields["responses"]:
            slot_cls = _BATCH_SLOT_TYPES.get(entry["type"])
            if slot_cls is None:
                raise ValueError(f"unknown batch slot type {entry['type']!r}")
            slots.append(slot_cls.from_wire(entry["fields"]))
        return cls(responses=tuple(slots))


# ----------------------------------------------------------------------
# SL-Manager -> SL-Local
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AttestRequest:
    """A license-check request from an application's SL-Manager."""

    report: AttestationReport
    license_id: str
    license_blob: bytes
    tokens_requested: int = 1

    def to_wire(self) -> Dict[str, Any]:
        return {
            "report": self.report.to_wire(),
            "license_id": self.license_id,
            "license_blob": self.license_blob.hex(),
            "tokens_requested": self.tokens_requested,
        }

    @classmethod
    def from_wire(cls, fields: Dict[str, Any]) -> "AttestRequest":
        return cls(
            report=AttestationReport.from_wire(fields["report"]),
            license_id=fields["license_id"],
            license_blob=bytes.fromhex(fields["license_blob"]),
            tokens_requested=fields["tokens_requested"],
        )


@dataclass(frozen=True)
class AttestResponse:
    status: Status
    token: Optional[object] = None  # ExecutionToken on success

    def to_wire(self) -> Dict[str, Any]:
        return {
            "status": self.status.value,
            "token": self.token.to_wire() if self.token is not None else None,
        }

    @classmethod
    def from_wire(cls, fields: Dict[str, Any]) -> "AttestResponse":
        token = fields["token"]
        return cls(
            status=Status(fields["status"]),
            token=ExecutionToken.from_wire(token) if token is not None else None,
        )
