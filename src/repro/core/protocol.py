"""Wire messages between SL-Manager, SL-Local, and SL-Remote.

Keeping the protocol explicit (rather than direct method calls) lets
the network layer inject latency and drops, and makes the security
tests precise about what an attacker on the untrusted path can see.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.crypto.sealing import SealedBlob
from repro.sgx.attestation import AttestationReport


class Status(enum.Enum):
    """Outcome codes shared by all responses."""

    OK = "ok"
    INVALID_LICENSE = "invalid_license"
    EXHAUSTED = "exhausted"
    ATTESTATION_FAILED = "attestation_failed"
    UNKNOWN_CLIENT = "unknown_client"
    REVOKED = "revoked"


# ----------------------------------------------------------------------
# SL-Local -> SL-Remote
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class InitRequest:
    """SL-Local's init() call (Section 5.2.4)."""

    slid: Optional[int]  # None on first initialisation
    report: AttestationReport
    platform_secret: int  # quoted platform identity


@dataclass(frozen=True)
class InitResponse:
    status: Status
    slid: Optional[int] = None
    old_backup_key: Optional[int] = None  # OBK, None on first init


@dataclass(frozen=True)
class RenewRequest:
    """Ask SL-Remote for (more) sub-GCL units for a license."""

    slid: int
    license_id: str
    license_blob: bytes  # the user-supplied license file contents
    network_reliability: float
    health: float
    weight: float = 1.0


@dataclass(frozen=True)
class RenewResponse:
    status: Status
    granted_units: int = 0
    lease_kind: str = "count"
    tick_seconds: float = 0.0


@dataclass(frozen=True)
class ShutdownNotice:
    """Graceful shutdown: escrow the root sealing key (Section 5.6)."""

    slid: int
    root_key: int


# ----------------------------------------------------------------------
# SL-Manager -> SL-Local
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AttestRequest:
    """A license-check request from an application's SL-Manager."""

    report: AttestationReport
    license_id: str
    license_blob: bytes
    tokens_requested: int = 1


@dataclass(frozen=True)
class AttestResponse:
    status: Status
    token: Optional[object] = None  # ExecutionToken on success
