"""SL-Local: the per-machine lease service running inside SGX.

SL-Local (Sections 5.2-5.6) holds a snapshot of leases obtained from
SL-Remote and attests license-check requests from applications on the
same machine, replacing a 3.5 s remote attestation with a ~50 µs local
one.  Its lease state lives in the 4-level lease tree; cold leases are
sealed and evicted, and graceful shutdown escrows the root key with
SL-Remote so the next instantiation can restore — while a crash forfeits
everything outstanding (the anti-replay rule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.core.gcl import Gcl, LeaseKind
from repro.core.lease_tree import LeaseNotFound, LeaseTree
from repro.core.protocol import (
    AttestRequest,
    AttestResponse,
    BatchRequest,
    BatchResponse,
    InitRequest,
    InitResponse,
    RenewRequest,
    RenewResponse,
    ShutdownNotice,
    Status,
)
from repro.core.tokens import ExecutionToken
from repro.crypto.hashes import sha256_word
from repro.crypto.keys import KeyGenerator
from repro.crypto.sealing import SealedBlob, TamperedSealError
from repro.net.transport import transport_telemetry
from repro.sgx import SgxMachine
from repro.sgx.attestation import AttestationError, AttestationReport
from repro.sgx.enclave import Enclave

if TYPE_CHECKING:  # imported lazily: repro.net depends on repro.core
    from repro.net.rpc import RemoteEndpoint

#: Cycles for updating a found lease (lock, decrement, hash refresh).
LEASE_UPDATE_CYCLES = 2_600
#: Cycles for minting and MAC'ing an execution token.
TOKEN_ISSUE_CYCLES = 1_200


class SlLocalError(Exception):
    """Raised on lifecycle misuse (e.g. serving before init)."""


@dataclass
class _LeaseSlot:
    """SL-Local bookkeeping binding a license to its tree slot."""

    license_id: str
    lease_id: int


class SlLocal:
    """The local attestation service (one per machine).

    Parameters
    ----------
    machine:
        The SGX machine this service runs on; supplies clock, pager,
        attestation authority, and statistics.
    remote:
        RPC endpoint to SL-Remote (adds network latency/drops).
    keygen:
        Sealing-key generator for the lease tree.
    tokens_per_attestation:
        How many execution grants one local attestation earns
        (Section 7.3's batching optimisation; the paper uses 10).
    """

    #: On-disk identity file: SLID is plaintext (it is not a secret).
    def __init__(
        self,
        machine: SgxMachine,
        remote: "RemoteEndpoint",
        keygen: KeyGenerator,
        tokens_per_attestation: int = 1,
        network_reliability: float = 1.0,
        health: float = 1.0,
        weight: float = 1.0,
        pcl=None,
    ) -> None:
        self.machine = machine
        self.remote = remote
        self.keygen = keygen
        self.tokens_per_attestation = tokens_per_attestation
        self.network_reliability = network_reliability
        self.health = health
        self.weight = weight

        #: Optional protected-code-loader bundle: (PclKeyServer,
        #: SealedCodeSection).  When present, init() must obtain the
        #: section key (a remote-attested exchange) and decrypt the
        #: service logic inside the enclave before serving — the
        #: Section 2.3.1 confidentiality step that keeps SL-Local's
        #: code unreadable in the shipped binary.
        self.pcl = pcl
        self.loaded_code: Optional[bytes] = None

        self.enclave: Enclave = machine.create_enclave("sl-local")
        self.enclave.register_ecall("attest", self._ecall_attest)
        self._tree: Optional[LeaseTree] = None
        self._slots: Dict[str, _LeaseSlot] = {}
        self._next_lease_id = 0
        self.slid: Optional[int] = None
        self._running = False
        self._token_nonce = 0
        #: Secret used to MAC execution tokens (enclave-private).
        self._token_secret = sha256_word(b"sl-local-token" )
        #: Untrusted-side persisted shutdown image (survives restarts).
        self.persisted_image: Optional[SealedBlob] = None
        #: Served-locally / renewed-remotely counters for Section 7.4.
        self.local_grants = 0
        self.remote_renewals = 0

    # ------------------------------------------------------------------
    # Lifecycle (Sections 5.2.4 and 5.6)
    # ------------------------------------------------------------------
    def init(self) -> Status:
        """Attest to SL-Remote, obtain SLID (+ OBK), restore saved state.

        If the service was shipped through the protected code loader,
        the encrypted logic is decrypted into the enclave first — a
        binary on disk never contains SL-Local's plaintext code.
        """
        if self.pcl is not None:
            self._load_protected_code()
        report = self.machine.local_authority.generate_report(
            self.enclave.measurement, self.enclave.measurement, nonce=1
        )
        response: InitResponse = self.remote.call(
            "init",
            InitRequest(
                slid=self.slid,
                report=report,
                platform_secret=self.machine.platform_secret,
            ),
            clock=self.machine.clock,
            stats=self.machine.stats,
        )
        if response.status is not Status.OK:
            raise SlLocalError(f"init failed: {response.status.value}")
        self.slid = response.slid

        if response.old_backup_key is not None and self.persisted_image is not None:
            try:
                self._tree = LeaseTree.restore(
                    self.persisted_image, response.old_backup_key, self.keygen
                )
                self._rebuild_slots()
            except TamperedSealError:
                # Stale or tampered image: start clean; the server has
                # already written the old units off.
                self._tree = LeaseTree(keygen=self.keygen)
                self._slots.clear()
        else:
            self._tree = LeaseTree(keygen=self.keygen)
            self._slots.clear()
        self._running = True
        return Status.OK

    def shutdown(self, return_unused: bool = False) -> None:
        """Graceful exit: stop serving, seal the tree, escrow the root key.

        With ``return_unused=True``, every remaining sub-GCL unit is
        handed back to SL-Remote's pool before sealing — the polite
        variant for machines that will be decommissioned rather than
        restarted (returned units become available to other nodes
        immediately instead of waiting out the escrow).
        """
        self._require_running()
        self._running = False
        if return_unused:
            self._return_unused_units()
        root_key = self._tree.commit_all()
        self.persisted_image = self._tree.shutdown_image
        response = self.remote.call(
            "shutdown",
            ShutdownNotice(slid=self.slid, root_key=root_key),
            clock=self.machine.clock,
            stats=self.machine.stats,
        )
        # Typed rejection (v2 servers): the escrow did not happen, so the
        # persisted image will never restore — surface it. A None reply
        # is a v1 server that escrowed silently.
        if response is Status.UNKNOWN_CLIENT:
            raise SlLocalError(
                f"shutdown rejected: server does not know SLID {self.slid}"
            )
        self.enclave.destroy()

    def _return_unused_units(self) -> None:
        """Drain local GCL balances back to the server's ledgers."""
        for lease_id in list(self._tree.iter_all_ids()):
            record = self._tree.find(lease_id)
            gcl = record.gcl
            if gcl.kind is LeaseKind.COUNT and gcl.counter > 0:
                response = self.remote.call(
                    "return_units",
                    (self.slid, gcl.license_id, gcl.counter),
                    clock=self.machine.clock,
                    stats=self.machine.stats,
                )
                if response is Status.UNKNOWN_CLIENT:
                    raise SlLocalError(
                        f"return_units rejected: server does not know "
                        f"SLID {self.slid}"
                    )
                gcl.counter = 0

    def crash(self) -> None:
        """Abrupt termination: no sealing, no escrow — leases are lost.

        The persisted image (if any) remains whatever the *last graceful
        shutdown* wrote; replaying it will fail because SL-Remote will
        not hand back an OBK for a crashed instance.
        """
        self._running = False
        self._tree = None
        self._slots.clear()
        self.enclave.destroy()

    def reincarnate(self) -> None:
        """Build a fresh enclave after a crash/shutdown, ready for init()."""
        self.enclave = self.machine.create_enclave("sl-local")
        self.enclave.register_ecall("attest", self._ecall_attest)
        self.loaded_code = None  # protected code must be re-fetched

    def _load_protected_code(self) -> None:
        """PCL flow: prove genuineness, fetch the key, decrypt in-enclave."""
        from repro.sgx.pcl import load_protected_code

        key_server, section = self.pcl
        report = self.machine.local_authority.generate_report(
            self.enclave.measurement, self.enclave.measurement, nonce=0x9C1
        )
        key64 = key_server.release_key(
            self.enclave, report, self.machine.platform_secret,
            section.section_name,
        )
        self.loaded_code = load_protected_code(self.enclave, section, key64)

    # ------------------------------------------------------------------
    # The attestation service (Section 5.4)
    # ------------------------------------------------------------------
    def handle_attest(self, request: AttestRequest) -> AttestResponse:
        """Entry point for SL-Manager requests: ECALL into the enclave."""
        self._require_running()
        return self.enclave.ecall("attest", request)

    def _ecall_attest(self, request: AttestRequest) -> AttestResponse:
        # Mutual validation via local attestation (charged to the clock).
        try:
            self.machine.local_authority.verify_local(request.report)
        except AttestationError:
            return AttestationFailed()

        slot = self._slots.get(request.license_id)
        if slot is None:
            status = self._fetch_lease(request.license_id, request.license_blob)
            if status is not Status.OK:
                return AttestResponse(status=status)
            slot = self._slots[request.license_id]

        record = self._tree.find(slot.lease_id)
        lock_owner = f"attest:{request.license_id}"
        record.lock.acquire(self.machine.clock, lock_owner)
        try:
            # Time-based leases are reconciled against the (virtual)
            # wall clock on every touch — including time that passed
            # while the system was off (Section 4.3).
            record.gcl.reconcile_clock(self.machine.clock.seconds)
            if not record.gcl.valid:
                # Local units exhausted: renew from SL-Remote in place.
                status = self._renew_into(record.gcl, request.license_blob)
                if status is not Status.OK:
                    return AttestResponse(status=status)
            # An honest clamp: never promise more than the lease holds.
            # A COUNT lease whose counter is (still) zero after the
            # renewal attempt grants nothing — the old `max(counter, 1)`
            # expression could mint a token backed by no units.
            requested = max(self.tokens_per_attestation, request.tokens_requested)
            if record.gcl.kind is LeaseKind.COUNT:
                grants = min(requested, record.gcl.counter)
            else:
                grants = requested
            if grants <= 0:
                return AttestResponse(status=Status.EXHAUSTED)
            for _ in range(grants):
                record.gcl.consume_execution()
                if not record.gcl.valid and record.gcl.kind is LeaseKind.COUNT:
                    break
            self.machine.clock.advance(LEASE_UPDATE_CYCLES + TOKEN_ISSUE_CYCLES)
            self._token_nonce += 1
            token = ExecutionToken.issue(
                license_id=request.license_id,
                lease_id=slot.lease_id,
                nonce=self._token_nonce,
                grants=grants,
                signing_secret=self._token_secret,
            )
            self.local_grants += grants
            return AttestResponse(status=Status.OK, token=token)
        finally:
            record.lock.release(self.machine.clock, lock_owner)

    def verify_token(self, token: ExecutionToken) -> bool:
        """Used in tests/attacks: is this token genuine?"""
        try:
            token.verify(self._token_secret)
            return True
        except Exception:
            return False

    # ------------------------------------------------------------------
    # Lease acquisition from SL-Remote (Section 4.4 step 3)
    # ------------------------------------------------------------------
    def _fetch_lease(self, license_id: str, license_blob: bytes) -> Status:
        gcl = Gcl.count_based(license_id, 0)
        status = self._renew_into(gcl, license_blob)
        if status is not Status.OK:
            return status
        lease_id = self._allocate_lease_id()
        self._tree.insert(lease_id, gcl)
        self._slots[license_id] = _LeaseSlot(license_id=license_id, lease_id=lease_id)
        return Status.OK

    def prefetch_leases(self, blobs: Dict[str, bytes]) -> Dict[str, Status]:
        """Warm many licenses with one coalesced round trip.

        ``blobs`` maps license IDs to their license blobs.  A single
        ``renew_batch`` covers every license, so a machine that will
        attest against N licenses pays one RPC (and, server-side, one
        ledger commit) instead of N cold-miss renewals at first touch.
        Granted leases are installed into the tree exactly as a
        cold-miss fetch would; against a server that predates the batch
        method the prefetch degrades to per-license renewals with the
        same observable outcome.  Returns the per-license status.
        """
        from repro.net.rpc import RpcError

        self._require_running()
        ordered = sorted(blobs)
        if not ordered:
            return {}
        batch = BatchRequest(requests=tuple(
            self._renew_request(license_id, blobs[license_id])
            for license_id in ordered
        ))
        reply: Optional[BatchResponse]
        try:
            reply = self.remote.call(
                "renew_batch", batch,
                clock=self.machine.clock, stats=self.machine.stats,
            )
        except RpcError:
            reply = None  # pre-batch server: fall back below
        if (not isinstance(reply, BatchResponse)
                or len(reply.responses) != len(ordered)):
            return {
                license_id: self._warm_one(license_id, blobs[license_id])
                for license_id in ordered
            }
        statuses: Dict[str, Status] = {}
        for license_id, slot_reply in zip(ordered, reply.responses):
            if isinstance(slot_reply, RenewResponse):
                statuses[license_id] = self._install_renewal(
                    license_id, slot_reply
                )
            else:
                # A migration notice (or other non-renewal slot) from a
                # transport that does not re-drive: the single-renew
                # path owns redirect handling.
                statuses[license_id] = self._warm_one(
                    license_id, blobs[license_id]
                )
        return statuses

    def _renew_request(self, license_id: str,
                       license_blob: bytes) -> RenewRequest:
        """Build a renewal carrying *observed* condition evidence.

        The configured ``network_reliability`` is a prior, not a
        constant: the endpoint's transport tracks what the connection
        actually delivered (drop rate, round-trip EWMA, retry and
        reconnect counts), and the renewal ships the more pessimistic
        of the two so Algorithm 1 sizes grants against the link the
        client really has.
        """
        telemetry = transport_telemetry(
            getattr(self.remote, "transport", None)
        )
        reliability = self.network_reliability
        observed = telemetry["network_reliability"]
        if observed is not None:
            reliability = min(reliability, observed)
        return RenewRequest(
            slid=self.slid,
            license_id=license_id,
            license_blob=license_blob,
            network_reliability=reliability,
            health=self.health,
            weight=self.weight,
            rtt_seconds=telemetry["rtt_seconds"],
            retries=telemetry["retries"],
            reconnects=telemetry["reconnects"],
        )

    def _warm_one(self, license_id: str, license_blob: bytes) -> Status:
        """Prefetch fallback: renew/fetch one license the classic way."""
        slot = self._slots.get(license_id)
        if slot is not None:
            return self._renew_into(
                self._tree.find(slot.lease_id).gcl, license_blob
            )
        return self._fetch_lease(license_id, license_blob)

    def _install_renewal(self, license_id: str,
                         response: RenewResponse) -> Status:
        """Fold one batch slot's grant into the tree (new or existing)."""
        slot = self._slots.get(license_id)
        if slot is not None:
            return self._apply_renewal(
                self._tree.find(slot.lease_id).gcl, response
            )
        gcl = Gcl.count_based(license_id, 0)
        status = self._apply_renewal(gcl, response)
        if status is not Status.OK:
            return status
        lease_id = self._allocate_lease_id()
        self._tree.insert(lease_id, gcl)
        self._slots[license_id] = _LeaseSlot(
            license_id=license_id, lease_id=lease_id
        )
        return status

    def _renew_into(self, gcl: Gcl, license_blob: bytes) -> Status:
        response: RenewResponse = self.remote.call(
            "renew",
            self._renew_request(gcl.license_id, license_blob),
            clock=self.machine.clock,
            stats=self.machine.stats,
        )
        return self._apply_renewal(gcl, response)

    def _apply_renewal(self, gcl: Gcl, response: RenewResponse) -> Status:
        if response.status is not Status.OK:
            return response.status
        self.remote_renewals += 1
        kind = LeaseKind(response.lease_kind)
        previous_kind = gcl.kind
        gcl.kind = kind
        if kind is LeaseKind.PERPETUAL:
            gcl.counter = 1
        else:
            gcl.counter += response.granted_units
            gcl.tick_seconds = response.tick_seconds or gcl.tick_seconds or 86_400.0
            if kind is LeaseKind.TIME and previous_kind is not LeaseKind.TIME:
                # The validity window starts when the lease arrives.
                gcl.last_seen_seconds = self.machine.clock.seconds
        return Status.OK

    # ------------------------------------------------------------------
    # Memory management (Sections 5.5 and 7.3's Table 6)
    # ------------------------------------------------------------------
    def commit_cold_leases(self, keep_resident: int) -> int:
        """Seal-and-evict all but the ``keep_resident`` hottest leases.

        A simple policy sufficient for the paper's experiment: resident
        count is capped; the rest move to untrusted memory.  Returns the
        number of leases committed.
        """
        self._require_running()
        resident = list(self._tree.iter_resident_ids())
        to_commit = resident[keep_resident:]
        for lease_id in to_commit:
            self._tree.commit_lease(lease_id)
        return len(to_commit)

    def resident_bytes(self) -> int:
        self._require_running()
        return self._tree.resident_bytes()

    @property
    def tree(self) -> LeaseTree:
        self._require_running()
        return self._tree

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _allocate_lease_id(self) -> int:
        # Sequential IDs give the spatial locality Section 5.2.2 wants:
        # an application's leases share 4th-level nodes.
        lease_id = self._next_lease_id
        self._next_lease_id += 1
        return lease_id

    def _rebuild_slots(self) -> None:
        """After restore, relearn license -> lease-ID bindings."""
        self._slots.clear()
        max_id = -1
        for lease_id in list(self._tree.iter_all_ids()):
            record = self._tree.find(lease_id)
            self._slots[record.gcl.license_id] = _LeaseSlot(
                license_id=record.gcl.license_id, lease_id=lease_id
            )
            max_id = max(max_id, lease_id)
        self._next_lease_id = max_id + 1

    def _require_running(self) -> None:
        if not self._running or self._tree is None:
            raise SlLocalError("SL-Local is not running (init() first)")


def AttestationFailed() -> AttestResponse:
    """Shorthand for the local-attestation failure response."""
    return AttestResponse(status=Status.ATTESTATION_FAILED)
