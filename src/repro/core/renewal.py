"""Adaptive GCL renewal — the paper's Algorithm 1 and Equations 1-2.

SL-Remote pre-distributes sub-GCLs to SL-Locals so that lease checks can
be served locally, but a crashed SL-Local forfeits everything it holds
(the pessimistic rule of Section 5.7).  The renewal policy therefore
balances two pressures:

* give a node enough units (``g_i``) that it rarely needs the network;
* keep the *expected loss* of a license — the units at risk across all
  nodes weighted by their crash probabilities (Equation 1) — under the
  per-license bound ``τ``.

Inputs per requesting node ``i``: weight ``α_i`` (Σα=1), network
reliability ``n ∈ (0,1]``, node health ``h ∈ [0,1]`` (1 − crash
probability), the default scale-down divisor ``D``, the health threshold
``T_H`` above which flaky-network nodes receive extra units, and the
global per-license scale factor ``β``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class RenewalPolicy:
    """Tunable parameters of Algorithm 1 (defaults from Section 7.4)."""

    #: Lease scaling factor D: a node receives G_i / D by default.
    scale_divisor: float = 4.0  # D such that g_i = 25% of G_i
    #: Health threshold above which poor network earns extra units.
    health_threshold: float = 0.9
    #: Default β (the paper uses 0.01 as the starting estimate).
    default_beta: float = 0.01
    #: Expected-loss bound as a fraction of the license's total GCL.
    tau_fraction: float = 0.10
    #: Iteration guard for the scale-down loop.
    max_scaledown_iters: int = 64

    def __post_init__(self) -> None:
        if self.scale_divisor < 1.0:
            raise ValueError("scale divisor D must be >= 1")
        if not 0.0 < self.health_threshold <= 1.0:
            raise ValueError("health threshold must be in (0, 1]")
        if not 0.0 <= self.tau_fraction <= 1.0:
            raise ValueError("tau fraction must be in [0, 1]")


@dataclass
class NodeCondition:
    """Observed state of one requesting node (Table 2's n, h, α)."""

    node_id: str
    weight: float = 1.0  # α_i
    network_reliability: float = 1.0  # n_i: 0 dead, 1 stable
    health: float = 1.0  # h_i: 1 - crash probability

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("node weight must be non-negative")
        if not 0.0 < self.network_reliability <= 1.0:
            raise ValueError("network reliability must be in (0, 1]")
        if not 0.0 <= self.health <= 1.0:
            raise ValueError("health must be in [0, 1]")

    @property
    def crash_probability(self) -> float:
        return 1.0 - self.health


@dataclass
class LicenseLedger:
    """Server-side accounting for one license.

    Tracks the total pool (``TG``), the sub-GCLs currently outstanding
    on each node, the per-license β carried between renewals, and the
    last-reported condition of every node that holds units — Equation 1
    needs each holder's crash probability even when that node is not
    part of the current request.
    """

    license_id: str
    total_gcl: int
    beta: float
    outstanding: Dict[str, int] = field(default_factory=dict)
    lost_units: int = 0
    node_conditions: Dict[str, "NodeCondition"] = field(default_factory=dict)

    @property
    def available(self) -> int:
        return self.total_gcl - sum(self.outstanding.values()) - self.lost_units

    def expected_loss(
        self, conditions: Optional[Dict[str, "NodeCondition"]] = None
    ) -> float:
        """Equation 1: Σ g_i · (1 − h_i) over nodes holding sub-GCLs.

        ``conditions`` overrides/extends the ledger's remembered node
        conditions for this evaluation.
        """
        merged = dict(self.node_conditions)
        if conditions:
            merged.update(conditions)
        total = 0.0
        for node_id, units in self.outstanding.items():
            condition = merged.get(node_id)
            crash_probability = (
                condition.crash_probability if condition is not None else 0.0
            )
            total += units * crash_probability
        return total


@dataclass(frozen=True)
class RenewalDecision:
    """Outcome of one RenewLease evaluation.

    ``reason`` is ``"ok"`` for a normal Algorithm 1 evaluation; typed
    zero-grant decisions (degenerate inputs that used to fall into
    division-sensitive float paths) name why nothing was granted:
    ``"no-concurrent"``, ``"zero-weight"``, or ``"zero-health"``.
    """

    license_id: str
    node_id: str
    granted_units: int
    max_share: int  # G_i
    expected_loss_after: float
    beta_after: float
    reason: str = "ok"


def _zero_grant(
    ledger: LicenseLedger, requester: NodeCondition, reason: str
) -> RenewalDecision:
    """A typed zero-grant decision that leaves the ledger untouched
    except for remembering the requester's latest condition."""
    ledger.node_conditions[requester.node_id] = requester
    return RenewalDecision(
        license_id=ledger.license_id,
        node_id=requester.node_id,
        granted_units=0,
        max_share=0,
        expected_loss_after=ledger.expected_loss(),
        beta_after=ledger.beta,
        reason=reason,
    )


def renew_lease(
    ledger: LicenseLedger,
    requester: NodeCondition,
    concurrent: List[NodeCondition],
    policy: Optional[RenewalPolicy] = None,
    concurrency_hint: Optional[float] = None,
) -> RenewalDecision:
    """Algorithm 1: decide how many units to grant ``requester``.

    ``concurrent`` is every node currently requesting or holding the
    license, *including* the requester (C = len(concurrent)).  The grant
    is clamped to the ledger's available pool, so Σ G_i ≤ TG holds by
    construction.

    ``concurrency_hint`` lets the caller substitute a *measured*
    concurrency estimate (e.g. the server's EWMA of simultaneous
    renewers) when it exceeds the instantaneous ``len(concurrent)`` —
    holders that renewed moments ago and will renew again are real
    contention even though they are not in this call's snapshot.

    Degenerate inputs — an empty ``concurrent`` list, a zero total
    weight, a zero-health requester — return a typed zero-grant
    decision rather than entering the float pipeline; a requester
    missing from a *non-empty* ``concurrent`` list is still a caller
    bug and raises.
    """
    policy = policy if policy is not None else RenewalPolicy()
    if not concurrent:
        return _zero_grant(ledger, requester, "no-concurrent")
    if not any(c.node_id == requester.node_id for c in concurrent):
        raise ValueError("requester must be among the concurrent nodes")
    weight_sum = sum(c.weight for c in concurrent)
    if weight_sum <= 0 or requester.weight <= 0:
        return _zero_grant(ledger, requester, "zero-weight")
    if requester.health <= 0.0:
        return _zero_grant(ledger, requester, "zero-health")

    conditions = {c.node_id: c for c in concurrent}
    total_gcl = ledger.total_gcl
    concurrency = float(len(concurrent))
    if concurrency_hint is not None and concurrency_hint > concurrency:
        concurrency = concurrency_hint
    alpha = requester.weight / weight_sum

    # Line 3: the node's fair share of the license.
    max_share = (alpha * total_gcl) / 1.0  # α_i * TG (per-node cap)
    g = max_share / concurrency if concurrency > 1 else max_share
    # Line 4: default policy scale-down (sub-GCL).
    g = g / policy.scale_divisor
    # Line 5: crash penalty.
    g = g * requester.health
    # Lines 6-8: network benefit for healthy nodes on flaky links.
    if requester.health > policy.health_threshold:
        g = min(max_share, g * (1.0 / requester.network_reliability))

    # Lines 9-17: bound the license's expected loss by τ.
    tau = policy.tau_fraction * total_gcl
    beta = ledger.beta if ledger.beta > 0 else policy.default_beta

    def loss_with_grant(units: float) -> float:
        baseline = ledger.expected_loss(conditions)
        return baseline + units * requester.crash_probability

    if loss_with_grant(g) > tau:
        for _ in range(policy.max_scaledown_iters):
            current_loss = loss_with_grant(g)
            if current_loss <= tau or g < 1.0:
                break
            # Line 12: shrink β by the loss overshoot ratio, then apply.
            overshoot = (current_loss - tau) / current_loss
            beta = beta * overshoot if beta * overshoot > 0 else policy.default_beta
            shrink = max(min(1.0 - overshoot, 0.95), 0.05)
            g = g * shrink
    else:
        # Line 16: headroom under τ scales the grant up.
        baseline = ledger.expected_loss(conditions)
        beta = (tau - baseline) / tau if tau > 0 else 0.0
        g = g * (1.0 + beta)
        g = min(g, max_share)

    granted = int(math.floor(max(g, 0.0)))
    granted = min(granted, int(math.floor(max_share)), max(ledger.available, 0))
    if granted > 0 and loss_with_grant(granted) > tau and requester.crash_probability > 0:
        # Final clamp: never hand out units that push the loss over τ.
        headroom = tau - ledger.expected_loss(conditions)
        granted = min(granted, int(headroom / requester.crash_probability))
        granted = max(granted, 0)

    if granted > 0:
        ledger.outstanding[requester.node_id] = (
            ledger.outstanding.get(requester.node_id, 0) + granted
        )
    ledger.beta = beta
    # Remember every participant's latest condition for future
    # expected-loss evaluations (Equation 1 spans all holders).
    for condition in concurrent:
        ledger.node_conditions[condition.node_id] = condition

    return RenewalDecision(
        license_id=ledger.license_id,
        node_id=requester.node_id,
        granted_units=granted,
        max_share=int(math.floor(max_share)),
        expected_loss_after=ledger.expected_loss(conditions),
        beta_after=beta,
    )
