"""Adaptive GCL renewal — the paper's Algorithm 1 and Equations 1-2.

SL-Remote pre-distributes sub-GCLs to SL-Locals so that lease checks can
be served locally, but a crashed SL-Local forfeits everything it holds
(the pessimistic rule of Section 5.7).  The renewal policy therefore
balances two pressures:

* give a node enough units (``g_i``) that it rarely needs the network;
* keep the *expected loss* of a license — the units at risk across all
  nodes weighted by their crash probabilities (Equation 1) — under the
  per-license bound ``τ``.

Inputs per requesting node ``i``: weight ``α_i`` (Σα=1), network
reliability ``n ∈ (0,1]``, node health ``h ∈ [0,1]`` (1 − crash
probability), the default scale-down divisor ``D``, the health threshold
``T_H`` above which flaky-network nodes receive extra units, and the
global per-license scale factor ``β``.

Equation 1 is maintained *incrementally*: :class:`LicenseLedger` keeps
running aggregates — Σ units, Σ units·(1−h), Σ α over holders, and the
holder count — updated in O(1) on every grant, return, crash
forfeiture, and condition update.  :func:`renew_lease_inplace` (the
server's renew path) evaluates a candidate grant as a delta against
those aggregates, so per-renewal cost is independent of how many nodes
hold the license.  ``REPRO_LEDGER_AUDIT=1`` recomputes every aggregate
from scratch on each ``expected_loss`` call and raises on drift.
"""

from __future__ import annotations

import copy
import math
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class RenewalPolicy:
    """Tunable parameters of Algorithm 1 (defaults from Section 7.4)."""

    #: Lease scaling factor D: a node receives G_i / D by default.
    scale_divisor: float = 4.0  # D such that g_i = 25% of G_i
    #: Health threshold above which poor network earns extra units.
    health_threshold: float = 0.9
    #: Default β (the paper uses 0.01 as the starting estimate).
    default_beta: float = 0.01
    #: Expected-loss bound as a fraction of the license's total GCL.
    tau_fraction: float = 0.10
    #: Iteration guard for the scale-down loop.
    max_scaledown_iters: int = 64

    def __post_init__(self) -> None:
        if self.scale_divisor < 1.0:
            raise ValueError("scale divisor D must be >= 1")
        if not 0.0 < self.health_threshold <= 1.0:
            raise ValueError("health threshold must be in (0, 1]")
        if not 0.0 <= self.tau_fraction <= 1.0:
            raise ValueError("tau fraction must be in [0, 1]")


@dataclass
class NodeCondition:
    """Observed state of one requesting node (Table 2's n, h, α).

    Conditions stored in a ledger's ``node_conditions`` map must be
    *replaced*, never mutated in place — the ledger's running Equation 1
    aggregates can only observe assignments through the map.
    """

    node_id: str
    weight: float = 1.0  # α_i
    network_reliability: float = 1.0  # n_i: 0 dead, 1 stable
    health: float = 1.0  # h_i: 1 - crash probability

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("node weight must be non-negative")
        if not 0.0 < self.network_reliability <= 1.0:
            raise ValueError("network reliability must be in (0, 1]")
        if not 0.0 <= self.health <= 1.0:
            raise ValueError("health must be in [0, 1]")

    @property
    def crash_probability(self) -> float:
        return 1.0 - self.health


class _LedgerDict(dict):
    """A dict that notifies its owning :class:`LicenseLedger` on every
    mutation, so the ledger's Equation 1 aggregates stay exact without
    caller discipline — ``ledger.outstanding[key] = units`` from the
    WAL replay, a replication follower, or a test updates the running
    sums automatically.

    Copies (``dict(...)``, ``.copy()``, pickling) intentionally degrade
    to plain dicts: a detached copy must not keep a live pointer into
    the ledger it came from.
    """

    __slots__ = ("_ledger",)

    def __init__(self, ledger: "LicenseLedger", initial=None):
        super().__init__(initial or {})
        self._ledger = ledger

    def __reduce__(self):
        return (dict, (dict(self),))

    def copy(self):
        return dict(self)

    def _notify(self, key, old, new) -> None:
        raise NotImplementedError

    def __setitem__(self, key, value):
        old = dict.get(self, key)
        dict.__setitem__(self, key, value)
        self._notify(key, old, value)

    def __delitem__(self, key):
        old = dict.get(self, key)
        dict.__delitem__(self, key)
        self._notify(key, old, None)

    def pop(self, key, *default):
        if key in self:
            old = dict.__getitem__(self, key)
            dict.__delitem__(self, key)
            self._notify(key, old, None)
            return old
        if default:
            return default[0]
        raise KeyError(key)

    def popitem(self):
        key, old = dict.popitem(self)
        self._notify(key, old, None)
        return key, old

    def clear(self):
        items = list(dict.items(self))
        dict.clear(self)
        for key, old in items:
            self._notify(key, old, None)

    def update(self, *args, **kwargs):
        for key, value in dict(*args, **kwargs).items():
            self[key] = value

    def setdefault(self, key, default=None):
        if key not in self:
            self[key] = default
        return dict.__getitem__(self, key)


class _OutstandingMap(_LedgerDict):
    def _notify(self, key, old, new) -> None:
        self._ledger._outstanding_changed(key, old or 0, new or 0)


class _ConditionMap(_LedgerDict):
    def _notify(self, key, old, new) -> None:
        self._ledger._condition_changed(key, old, new)


@dataclass
class LicenseLedger:
    """Server-side accounting for one license.

    Tracks the total pool (``TG``), the sub-GCLs currently outstanding
    on each node, the per-license β carried between renewals, and the
    last-reported condition of every node that holds units — Equation 1
    needs each holder's crash probability even when that node is not
    part of the current request.

    The ledger maintains four running aggregates, each updated in O(1)
    on every mutation of ``outstanding`` or ``node_conditions`` (the
    maps are observed dicts; whole-map reassignment rebuilds from
    scratch):

    * ``outstanding_total`` ≡ ``Σ outstanding.values()``
    * ``holder_count``      ≡ ``|{n : outstanding[n] > 0}|``
    * ``expected_loss()``   ≡ Equation 1 priced at the remembered
      conditions (a holder without one contributes crash probability 0)
    * ``weight_sum``        ≡ Σ α over holders (missing condition → 1.0)

    ``REPRO_LEDGER_AUDIT=1`` re-derives all four from scratch on every
    ``expected_loss`` call and raises on drift; recovery and promotion
    paths call :meth:`audit_aggregates` unconditionally.
    """

    license_id: str
    total_gcl: int
    beta: float
    outstanding: Dict[str, int] = field(default_factory=dict)
    lost_units: int = 0
    node_conditions: Dict[str, "NodeCondition"] = field(default_factory=dict)

    def __setattr__(self, name: str, value: Any) -> None:
        if name == "outstanding":
            if not (isinstance(value, _OutstandingMap)
                    and value._ledger is self):
                value = _OutstandingMap(self, value)
        elif name == "node_conditions":
            if not (isinstance(value, _ConditionMap)
                    and value._ledger is self):
                value = _ConditionMap(self, value)
        object.__setattr__(self, name, value)
        if name in ("outstanding", "node_conditions"):
            self._rebuild_aggregates()

    def __deepcopy__(self, memo: Dict[int, Any]) -> "LicenseLedger":
        # The observed maps hold a pointer back to *this* ledger; a
        # naive deepcopy would detach them.  Rebuild a fresh ledger so
        # the copy observes its own maps.
        return LicenseLedger(
            license_id=self.license_id,
            total_gcl=self.total_gcl,
            beta=self.beta,
            outstanding=dict(self.outstanding),
            lost_units=self.lost_units,
            node_conditions={key: copy.deepcopy(condition, memo)
                             for key, condition
                             in self.node_conditions.items()},
        )

    # ------------------------------------------------------------------
    # Incremental Equation 1 bookkeeping
    # ------------------------------------------------------------------
    def _rebuild_aggregates(self) -> None:
        outstanding = self.__dict__.get("outstanding")
        conditions = self.__dict__.get("node_conditions")
        if outstanding is None or conditions is None:
            return  # mid-__init__; the later field assignment rebuilds
        total = 0
        holders = 0
        loss = 0.0
        weight = 0.0
        for node_id, units in dict.items(outstanding):
            total += units
            if units > 0:
                holders += 1
                condition = dict.get(conditions, node_id)
                if condition is not None:
                    loss += units * condition.crash_probability
                    weight += condition.weight
                else:
                    weight += 1.0
        self._outstanding_total = total
        self._holder_count = holders
        self._loss_total = loss
        self._weight_sum = weight

    def _outstanding_changed(self, node_id: str, old: int, new: int) -> None:
        self._outstanding_total += new - old
        condition = dict.get(self.node_conditions, node_id)
        if condition is not None:
            crash = condition.crash_probability
            self._loss_total += new * crash - old * crash
            weight = condition.weight
        else:
            weight = 1.0
        if old > 0 and new <= 0:
            self._holder_count -= 1
            self._weight_sum -= weight
        elif old <= 0 and new > 0:
            self._holder_count += 1
            self._weight_sum += weight
        if self._holder_count == 0:
            # Periodic exact reset: with no holders both float
            # aggregates are zero by definition, so accumulated
            # round-off cannot survive a drained license.
            self._loss_total = 0.0
            self._weight_sum = 0.0

    def _condition_changed(self, node_id: str,
                           old: Optional["NodeCondition"],
                           new: Optional["NodeCondition"]) -> None:
        units = dict.get(self.outstanding, node_id, 0)
        if units <= 0:
            return
        old_crash = old.crash_probability if old is not None else 0.0
        new_crash = new.crash_probability if new is not None else 0.0
        self._loss_total += units * new_crash - units * old_crash
        old_weight = old.weight if old is not None else 1.0
        new_weight = new.weight if new is not None else 1.0
        self._weight_sum += new_weight - old_weight

    def audit_aggregates(self) -> None:
        """Recompute every aggregate from scratch and raise on drift.

        The integer aggregates must match exactly; the float aggregates
        accumulate per-update round-off, so they are compared with a
        tight relative tolerance.  Called on every ``expected_loss``
        under ``REPRO_LEDGER_AUDIT=1`` and unconditionally at recovery
        and promotion boundaries.
        """
        total = 0
        holders = 0
        loss = 0.0
        weight = 0.0
        for node_id, units in dict.items(self.outstanding):
            total += units
            if units > 0:
                holders += 1
                condition = dict.get(self.node_conditions, node_id)
                if condition is not None:
                    loss += units * condition.crash_probability
                    weight += condition.weight
                else:
                    weight += 1.0
        if total != self._outstanding_total:
            raise AssertionError(
                f"{self.license_id}: outstanding_total drifted: "
                f"incremental {self._outstanding_total} != recomputed {total}"
            )
        if holders != self._holder_count:
            raise AssertionError(
                f"{self.license_id}: holder_count drifted: "
                f"incremental {self._holder_count} != recomputed {holders}"
            )
        if not math.isclose(loss, self._loss_total,
                            rel_tol=1e-9, abs_tol=1e-6):
            raise AssertionError(
                f"{self.license_id}: expected-loss aggregate drifted: "
                f"incremental {self._loss_total} != recomputed {loss}"
            )
        if not math.isclose(weight, self._weight_sum,
                            rel_tol=1e-9, abs_tol=1e-6):
            raise AssertionError(
                f"{self.license_id}: weight aggregate drifted: "
                f"incremental {self._weight_sum} != recomputed {weight}"
            )

    # ------------------------------------------------------------------
    # Aggregate accessors
    # ------------------------------------------------------------------
    @property
    def outstanding_total(self) -> int:
        """Σ outstanding units, from the running aggregate (O(1))."""
        return self._outstanding_total

    @property
    def holder_count(self) -> int:
        """How many nodes currently hold units (O(1))."""
        return self._holder_count

    @property
    def weight_sum(self) -> float:
        """Σ α over current holders, remembered conditions (O(1))."""
        return self._weight_sum

    @property
    def available(self) -> int:
        return self.total_gcl - self._outstanding_total - self.lost_units

    def node_expected_loss(self, node_id: str) -> float:
        """One node's Equation 1 term, units·(1−h), in O(1)."""
        units = dict.get(self.outstanding, node_id, 0)
        if units <= 0:
            return 0.0
        condition = dict.get(self.node_conditions, node_id)
        return units * condition.crash_probability if condition else 0.0

    def expected_loss(
        self, conditions: Optional[Dict[str, "NodeCondition"]] = None
    ) -> float:
        """Equation 1: Σ g_i · (1 − h_i) over nodes holding sub-GCLs.

        O(1) from the running aggregate; ``conditions`` overrides the
        remembered condition per node for this evaluation, each costing
        one O(1) repricing delta.
        """
        if os.environ.get("REPRO_LEDGER_AUDIT"):
            self.audit_aggregates()
        total = self._loss_total
        if conditions:
            for node_id, condition in conditions.items():
                units = dict.get(self.outstanding, node_id, 0)
                if units <= 0:
                    continue
                stored = dict.get(self.node_conditions, node_id)
                stored_crash = (stored.crash_probability
                                if stored is not None else 0.0)
                total += (units * condition.crash_probability
                          - units * stored_crash)
        return total if total > 0.0 else 0.0


@dataclass(frozen=True)
class RenewalDecision:
    """Outcome of one RenewLease evaluation.

    ``reason`` is ``"ok"`` for a normal Algorithm 1 evaluation; typed
    zero-grant decisions (degenerate inputs that used to fall into
    division-sensitive float paths) name why nothing was granted:
    ``"no-concurrent"``, ``"zero-weight"``, or ``"zero-health"``.
    """

    license_id: str
    node_id: str
    granted_units: int
    max_share: int  # G_i
    expected_loss_after: float
    beta_after: float
    reason: str = "ok"


def _zero_grant(
    ledger: LicenseLedger, requester: NodeCondition, reason: str
) -> RenewalDecision:
    """A typed zero-grant decision that leaves the ledger untouched
    except for remembering the requester's latest condition."""
    ledger.node_conditions[requester.node_id] = requester
    return RenewalDecision(
        license_id=ledger.license_id,
        node_id=requester.node_id,
        granted_units=0,
        max_share=0,
        expected_loss_after=ledger.expected_loss(),
        beta_after=ledger.beta,
        reason=reason,
    )


def _evaluate(
    ledger: LicenseLedger,
    requester: NodeCondition,
    weight_sum: float,
    concurrency: float,
    baseline: float,
    policy: RenewalPolicy,
) -> Tuple[int, float, float]:
    """The Algorithm 1 core, on scalars only: no holder-set scans.

    ``baseline`` is the license's Equation 1 value with the requester
    already priced at its fresh condition; the candidate grant is
    evaluated as ``baseline + g·(1−h)`` deltas against it.  Returns
    ``(granted, max_share, beta)`` without touching the ledger.
    """
    total_gcl = ledger.total_gcl
    alpha = requester.weight / weight_sum

    # Line 3: the node's fair share of the license.
    max_share = (alpha * total_gcl) / 1.0  # α_i * TG (per-node cap)
    g = max_share / concurrency if concurrency > 1 else max_share
    # Line 4: default policy scale-down (sub-GCL).
    g = g / policy.scale_divisor
    # Line 5: crash penalty.
    g = g * requester.health
    # Lines 6-8: network benefit for healthy nodes on flaky links.
    if requester.health > policy.health_threshold:
        g = min(max_share, g * (1.0 / requester.network_reliability))

    # Lines 9-17: bound the license's expected loss by τ.
    tau = policy.tau_fraction * total_gcl
    beta = ledger.beta if ledger.beta > 0 else policy.default_beta
    crash = requester.crash_probability

    if baseline + g * crash > tau:
        for _ in range(policy.max_scaledown_iters):
            current_loss = baseline + g * crash
            if current_loss <= tau or g < 1.0:
                break
            # Line 12: shrink β by the loss overshoot ratio, then apply.
            overshoot = (current_loss - tau) / current_loss
            beta = (beta * overshoot if beta * overshoot > 0
                    else policy.default_beta)
            shrink = max(min(1.0 - overshoot, 0.95), 0.05)
            g = g * shrink
    else:
        # Line 16: headroom under τ scales the grant up.
        beta = (tau - baseline) / tau if tau > 0 else 0.0
        g = g * (1.0 + beta)
        g = min(g, max_share)

    granted = int(math.floor(max(g, 0.0)))
    granted = min(granted, int(math.floor(max_share)),
                  max(ledger.available, 0))
    if granted > 0 and baseline + granted * crash > tau and crash > 0:
        # Final clamp: never hand out units that push the loss over τ.
        headroom = tau - baseline
        granted = min(granted, int(headroom / crash))
        granted = max(granted, 0)
    return granted, max_share, beta


def renew_lease(
    ledger: LicenseLedger,
    requester: NodeCondition,
    concurrent: List[NodeCondition],
    policy: Optional[RenewalPolicy] = None,
    concurrency_hint: Optional[float] = None,
) -> RenewalDecision:
    """Algorithm 1: decide how many units to grant ``requester``.

    ``concurrent`` is every node currently requesting or holding the
    license, *including* the requester (C = len(concurrent)).  The grant
    is clamped to the ledger's available pool, so Σ G_i ≤ TG holds by
    construction.

    ``concurrency_hint`` lets the caller substitute a *measured*
    concurrency estimate (e.g. the server's EWMA of simultaneous
    renewers) when it exceeds the instantaneous ``len(concurrent)`` —
    holders that renewed moments ago and will renew again are real
    contention even though they are not in this call's snapshot.

    Degenerate inputs — an empty ``concurrent`` list, a zero total
    weight, a zero-health requester — return a typed zero-grant
    decision rather than entering the float pipeline; a requester
    missing from a *non-empty* ``concurrent`` list is still a caller
    bug and raises.

    Servers that already maintain the holder set inside the ledger
    should prefer :func:`renew_lease_inplace`, which derives the
    snapshot from the running aggregates in O(1) instead of accepting
    (and pricing) an explicit O(C) list.
    """
    policy = policy if policy is not None else RenewalPolicy()
    if not concurrent:
        return _zero_grant(ledger, requester, "no-concurrent")
    if not any(c.node_id == requester.node_id for c in concurrent):
        raise ValueError("requester must be among the concurrent nodes")
    weight_sum = sum(c.weight for c in concurrent)
    if weight_sum <= 0 or requester.weight <= 0:
        return _zero_grant(ledger, requester, "zero-weight")
    if requester.health <= 0.0:
        return _zero_grant(ledger, requester, "zero-health")

    conditions = {c.node_id: c for c in concurrent}
    concurrency = float(len(concurrent))
    if concurrency_hint is not None and concurrency_hint > concurrency:
        concurrency = concurrency_hint

    baseline = ledger.expected_loss(conditions)
    granted, max_share, beta = _evaluate(
        ledger, requester, weight_sum, concurrency, baseline, policy
    )

    if granted > 0:
        ledger.outstanding[requester.node_id] = (
            ledger.outstanding.get(requester.node_id, 0) + granted
        )
    ledger.beta = beta
    # Remember every participant's latest condition for future
    # expected-loss evaluations (Equation 1 spans all holders).
    for condition in concurrent:
        ledger.node_conditions[condition.node_id] = condition

    return RenewalDecision(
        license_id=ledger.license_id,
        node_id=requester.node_id,
        granted_units=granted,
        max_share=int(math.floor(max_share)),
        expected_loss_after=ledger.expected_loss(conditions),
        beta_after=beta,
    )


def renew_lease_inplace(
    ledger: LicenseLedger,
    requester: NodeCondition,
    policy: Optional[RenewalPolicy] = None,
    concurrency_hint: Optional[float] = None,
    *,
    fabricate_holders: bool = False,
) -> RenewalDecision:
    """Algorithm 1 against the ledger's own holder set, in O(1).

    :func:`renew_lease` takes an explicit ``concurrent`` snapshot —
    O(C) to build and O(C) to price.  The server's renew path instead
    derives everything Algorithm 1 needs from the running aggregates:

    * C = ``holder_count`` (+1 when the requester holds nothing yet),
      still raisable by ``concurrency_hint``;
    * Σα = ``weight_sum`` with the requester's stored weight swapped
      for its freshly reported one;
    * the Equation 1 baseline = the running expected loss with the
      requester's term repriced at its fresh condition.

    ``fabricate_holders=True`` reproduces the static baseline's pricing
    (admission control off): every *other* holder is priced as a
    perfect default node (crash probability 0, weight 1), exactly what
    the old per-renewal snapshot fabricated.  Grant decisions are
    identical to the snapshot path; the observable differences are that
    the fabricated defaults are no longer written back over the
    remembered conditions, and ``expected_loss_after`` reports the
    ledger's remembered-condition aggregate rather than the fabricated
    view.

    Only the requester-degeneracy zero-grants apply here
    (``zero-weight`` / ``zero-health``): the requester itself always
    makes C ≥ 1, so ``no-concurrent`` cannot happen.
    """
    policy = policy if policy is not None else RenewalPolicy()
    if requester.weight <= 0:
        return _zero_grant(ledger, requester, "zero-weight")
    if requester.health <= 0.0:
        return _zero_grant(ledger, requester, "zero-health")

    held = ledger.outstanding.get(requester.node_id, 0)
    crowd = ledger.holder_count + (0 if held > 0 else 1)
    if fabricate_holders:
        weight_sum = (crowd - 1) * 1.0 + requester.weight
        baseline = held * requester.crash_probability
    else:
        if held > 0:
            stored = ledger.node_conditions.get(requester.node_id)
            stored_weight = stored.weight if stored is not None else 1.0
        else:
            stored_weight = 0.0
        weight_sum = ledger.weight_sum - stored_weight + requester.weight
        baseline = ledger.expected_loss({requester.node_id: requester})
    if weight_sum <= 0:
        return _zero_grant(ledger, requester, "zero-weight")

    concurrency = float(crowd)
    if concurrency_hint is not None and concurrency_hint > concurrency:
        concurrency = concurrency_hint

    granted, max_share, beta = _evaluate(
        ledger, requester, weight_sum, concurrency, baseline, policy
    )

    if granted > 0:
        ledger.outstanding[requester.node_id] = held + granted
    ledger.beta = beta
    ledger.node_conditions[requester.node_id] = requester

    return RenewalDecision(
        license_id=ledger.license_id,
        node_id=requester.node_id,
        granted_units=granted,
        max_share=int(math.floor(max_share)),
        expected_loss_after=ledger.expected_loss(),
        beta_after=beta,
    )
