"""Tokens of execution.

When SL-Local validates a license check it returns a *token of
execution* to the requesting SL-Manager (Section 4.4 step 2).  The
paper notes the token "can be anything from a simple Boolean value to a
data packet"; we use a small signed packet so tests can verify it is
unforgeable by untrusted code and bound to a specific lease and nonce.

Section 7.3's optimisation — granting multiple tokens per local
attestation — shows up here as ``grants``: one token object may
authorise up to ``grants`` executions, consumed one at a time by
SL-Manager.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hmac import hmac_sha256_word


class TokenError(Exception):
    """Raised when verifying or consuming an invalid token."""


@dataclass
class ExecutionToken:
    """A signed grant of executions for one license.

    The MAC covers the *initial* grant count; ``grants`` counts down as
    the holder spends executions.  Inflating either field breaks the
    MAC check (``grants`` may never exceed ``initial_grants``).
    """

    license_id: str
    lease_id: int
    nonce: int
    grants: int
    initial_grants: int
    mac: int

    @staticmethod
    def issue(license_id: str, lease_id: int, nonce: int, grants: int,
              signing_secret: int) -> "ExecutionToken":
        if grants <= 0:
            raise TokenError("a token must grant at least one execution")
        mac = _token_mac(license_id, lease_id, nonce, grants, signing_secret)
        return ExecutionToken(
            license_id=license_id,
            lease_id=lease_id,
            nonce=nonce,
            grants=grants,
            initial_grants=grants,
            mac=mac,
        )

    def verify(self, signing_secret: int) -> None:
        expected = _token_mac(
            self.license_id, self.lease_id, self.nonce, self.initial_grants,
            signing_secret,
        )
        if expected != self.mac:
            raise TokenError(f"token MAC mismatch for {self.license_id!r}")
        if not 0 <= self.grants <= self.initial_grants:
            raise TokenError(
                f"token for {self.license_id!r} claims more grants than issued"
            )

    def consume(self) -> None:
        """Spend one grant; raises once exhausted."""
        if self.grants <= 0:
            raise TokenError(f"token for {self.license_id!r} is exhausted")
        self.grants -= 1

    @property
    def exhausted(self) -> bool:
        return self.grants <= 0

    def to_wire(self) -> dict:
        """JSON-ready field dict for the wire codec (``repro.net.codec``)."""
        return {
            "license_id": self.license_id,
            "lease_id": self.lease_id,
            "nonce": self.nonce,
            "grants": self.grants,
            "initial_grants": self.initial_grants,
            "mac": self.mac,
        }

    @classmethod
    def from_wire(cls, fields: dict) -> "ExecutionToken":
        return cls(
            license_id=fields["license_id"],
            lease_id=fields["lease_id"],
            nonce=fields["nonce"],
            grants=fields["grants"],
            initial_grants=fields["initial_grants"],
            mac=fields["mac"],
        )


def _token_mac(license_id: str, lease_id: int, nonce: int, grants: int,
               secret: int) -> int:
    body = (
        license_id.encode("utf-8")
        + lease_id.to_bytes(4, "big")
        + nonce.to_bytes(8, "big")
        + grants.to_bytes(4, "big")
    )
    return hmac_sha256_word(secret.to_bytes(8, "big"), body)
