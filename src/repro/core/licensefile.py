"""The license-file format.

A license file (the ``license_blob``) is what the user presents to the
authentication module: ``<license-id> ":" <64-bit vendor MAC>``.  The
MAC is keyed by the vendor secret, shared between the vendor's license
server (SL-Remote) and the AM code compiled into the application — both
sides validate the same bytes, exactly as a signed license file works
in commercial license managers.
"""

from __future__ import annotations

from repro.crypto.hashes import sha256_word

#: Default vendor signing secret shared by SL-Remote and the in-app AM.
VENDOR_SECRET = b"securelease-vendor-secret"


def mint_license_blob(license_id: str, secret: bytes = VENDOR_SECRET) -> bytes:
    """Create the license file a paying user receives."""
    mac = sha256_word(license_id.encode("utf-8") + secret)
    return license_id.encode("utf-8") + b":" + mac.to_bytes(8, "big")


def blob_matches(license_id: str, blob: bytes,
                 secret: bytes = VENDOR_SECRET) -> bool:
    """Validate a license file against the vendor secret."""
    return blob == mint_license_blob(license_id, secret)
