"""Concurrent attestation with real lock contention.

Figure 8's micro-benchmark runs N enclaves against one SL-Local at
once.  The deployment-level drivers serialise requests round-robin,
which captures service-bound throughput but not *contention*: when two
requests target the same lease simultaneously, the paper serialises
them with ``sgx_spin_lock`` (Section 5.4), burning retry cycles.

This module runs the contention experiment properly on the discrete-
event scheduler: each requester is a process that (a) spends the local
attestation latency, (b) spins for the target lease's lock — paying
retry cycles while another holder is inside the critical section —
then (c) spends the update/issue latency and releases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.sl_local import LEASE_UPDATE_CYCLES, TOKEN_ISSUE_CYCLES
from repro.sgx.costs import SgxCostModel
from repro.sgx.spinlock import SPIN_RETRY_CYCLES
from repro.sim.clock import Clock
from repro.sim.events import EventScheduler


@dataclass
class _SimLock:
    """Lock state living on the scheduler's shared timeline."""

    holder: Optional[str] = None
    contended_spins: int = 0


@dataclass
class ContentionResult:
    """Outcome of one contention experiment."""

    requesters: int
    same_lease: bool
    grants: Dict[str, int] = field(default_factory=dict)
    contended_spins: int = 0
    virtual_seconds: float = 0.0

    @property
    def total_grants(self) -> int:
        return sum(self.grants.values())

    @property
    def grants_per_second(self) -> float:
        if self.virtual_seconds <= 0:
            return 0.0
        return self.total_grants / self.virtual_seconds


def run_contention(
    requesters: int,
    same_lease: bool,
    duration_seconds: float = 0.05,
    tokens_per_attestation: int = 1,
    costs: Optional[SgxCostModel] = None,
) -> ContentionResult:
    """Run N concurrent requesters for a window of virtual time.

    ``same_lease=True`` aims every requester at one lease (maximal
    contention); otherwise each gets its own.  Returns per-requester
    grant counts and the contention spin total.
    """
    if requesters < 1:
        raise ValueError("need at least one requester")
    costs = costs if costs is not None else SgxCostModel()
    scheduler = EventScheduler(Clock())
    deadline = round(duration_seconds * 2_900_000_000)

    locks: Dict[int, _SimLock] = {}
    result = ContentionResult(requesters=requesters, same_lease=same_lease)

    def lease_id_for(index: int) -> int:
        return 0 if same_lease else index

    def requester(name: str, index: int):
        grants = 0
        lock = locks.setdefault(lease_id_for(index), _SimLock())
        while scheduler.clock.cycles < deadline:
            # (a) local attestation
            yield costs.local_attestation_cycles
            # (b) acquire the lease lock, spinning on contention
            while lock.holder is not None:
                lock.contended_spins += 1
                result.contended_spins += 1
                yield SPIN_RETRY_CYCLES
            lock.holder = name
            # (c) critical section: update + issue the token batch
            yield LEASE_UPDATE_CYCLES + TOKEN_ISSUE_CYCLES
            lock.holder = None
            grants += tokens_per_attestation
        result.grants[name] = grants
        return grants

    for index in range(requesters):
        name = f"enclave-{index}"
        scheduler.spawn(requester(name, index), name)
    scheduler.run()
    result.virtual_seconds = scheduler.clock.cycles / 2_900_000_000
    return result
