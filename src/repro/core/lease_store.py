"""Lease store variants compared in Table 1.

Section 5.2 weighs three organisations for SL-Local's lease data:
array-based, hash-table-based, and tree-based.  Table 1 measures the
``find()`` latency of a MurmurHash table (what C++'s ``unordered_map``
uses), a SHA-256 table, and the 4-level tree; the tree wins because it
avoids hash computation, and it additionally supports offloading
metadata subtrees (up to 94 % memory savings).

All variants implement :class:`LeaseStore` and charge virtual cycles to
a shared clock so the Table 1 benchmark can replay the comparison.  The
per-operation costs reflect each scheme's real work: pointer chases for
the tree, hash computation plus a bucket probe for the tables.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional

from repro.core.gcl import Gcl
from repro.core.lease_tree import (
    LEASE_SIZE_BYTES,
    LeaseNotFound,
    LeaseRecord,
    LeaseTree,
)
from repro.crypto.hashes import murmur3_32, sha256_word
from repro.crypto.keys import KeyGenerator
from repro.sim.clock import Clock

#: Cycle cost of chasing one tree-node pointer inside the EPC
#: (an L2-resident dependent load).
TREE_HOP_CYCLES = 23
#: Cycle cost of computing MurmurHash3 over an 8-byte key.
MURMUR_HASH_CYCLES = 210
#: Cycle cost of one SHA-256 compression (dwarfs the lookup itself).
SHA256_HASH_CYCLES = 940
#: Cycle cost of probing a hash bucket (load + compare).
BUCKET_PROBE_CYCLES = 22
#: Cycle cost of an array index + validity check.
ARRAY_INDEX_CYCLES = 14


class LeaseStore(abc.ABC):
    """Interface every SL-Local storage backend implements."""

    name: str = "abstract"

    @abc.abstractmethod
    def insert(self, lease_id: int, gcl: Gcl) -> None:
        """Store a new lease under a 32-bit ID."""

    @abc.abstractmethod
    def find(self, lease_id: int) -> LeaseRecord:
        """Locate a lease; raises :class:`LeaseNotFound` if absent."""

    @abc.abstractmethod
    def remove(self, lease_id: int) -> Gcl:
        """Delete a lease, returning its GCL."""

    @abc.abstractmethod
    def resident_bytes(self) -> int:
        """EPC bytes consumed by the store."""

    @abc.abstractmethod
    def __len__(self) -> int:
        ...

    def supports_offload(self) -> bool:
        """Whether cold metadata can leave the EPC (tree-only)."""
        return False


class TreeLeaseStore(LeaseStore):
    """The paper's choice: the 4-level lease tree."""

    name = "tree"

    def __init__(self, clock: Clock, keygen: KeyGenerator) -> None:
        self._clock = clock
        self._tree = LeaseTree(
            keygen=keygen,
            find_cost_hook=lambda hops: clock.advance(hops * TREE_HOP_CYCLES),
        )

    def insert(self, lease_id: int, gcl: Gcl) -> None:
        self._tree.insert(lease_id, gcl)

    def find(self, lease_id: int) -> LeaseRecord:
        return self._tree.find(lease_id)

    def remove(self, lease_id: int) -> Gcl:
        return self._tree.remove(lease_id)

    def resident_bytes(self) -> int:
        return self._tree.resident_bytes()

    def supports_offload(self) -> bool:
        return True

    @property
    def tree(self) -> LeaseTree:
        """Access to tree-only operations (commit/restore)."""
        return self._tree

    def __len__(self) -> int:
        return len(self._tree)


class _HashLeaseStore(LeaseStore):
    """Common machinery for the two hash-table variants.

    Open hashing with chained buckets; the dominating cost is the hash
    computation itself, charged per ``find``/``insert``/``remove``.
    """

    hash_cycles: int = 0

    def __init__(self, clock: Clock, nbuckets: int = 4096) -> None:
        self._clock = clock
        self._nbuckets = nbuckets
        self._buckets: List[List[int]] = [[] for _ in range(nbuckets)]
        self._records: Dict[int, LeaseRecord] = {}

    def _hash(self, lease_id: int) -> int:
        raise NotImplementedError

    def _charge_find(self, probes: int) -> None:
        self._clock.advance(self.hash_cycles + probes * BUCKET_PROBE_CYCLES)

    def insert(self, lease_id: int, gcl: Gcl) -> None:
        if lease_id in self._records:
            raise ValueError(f"lease {lease_id} already present")
        bucket = self._hash(lease_id) % self._nbuckets
        self._buckets[bucket].append(lease_id)
        self._records[lease_id] = LeaseRecord(gcl=gcl)
        self._clock.advance(self.hash_cycles + BUCKET_PROBE_CYCLES)

    def find(self, lease_id: int) -> LeaseRecord:
        bucket = self._hash(lease_id) % self._nbuckets
        chain = self._buckets[bucket]
        for probes, candidate in enumerate(chain, start=1):
            if candidate == lease_id:
                self._charge_find(probes)
                return self._records[lease_id]
        self._charge_find(max(1, len(chain)))
        raise LeaseNotFound(lease_id)

    def remove(self, lease_id: int) -> Gcl:
        record = self.find(lease_id)
        bucket = self._hash(lease_id) % self._nbuckets
        self._buckets[bucket].remove(lease_id)
        del self._records[lease_id]
        return record.gcl

    def resident_bytes(self) -> int:
        # The full bucket array plus every record stays in the EPC;
        # hash tables cannot offload metadata without rebuilding.
        return self._nbuckets * 8 + len(self._records) * (LEASE_SIZE_BYTES + 16)

    def __len__(self) -> int:
        return len(self._records)


class MurmurLeaseStore(_HashLeaseStore):
    """Hash table keyed by MurmurHash3 (C++ ``unordered_map`` style)."""

    name = "murmur"
    hash_cycles = MURMUR_HASH_CYCLES

    def _hash(self, lease_id: int) -> int:
        return murmur3_32(lease_id.to_bytes(8, "big"))


class Sha256LeaseStore(_HashLeaseStore):
    """Hash table keyed by SHA-256 — cryptographic but slow."""

    name = "sha256"
    hash_cycles = SHA256_HASH_CYCLES

    def _hash(self, lease_id: int) -> int:
        return sha256_word(lease_id.to_bytes(8, "big")) & 0x7FFF_FFFF


class ArrayLeaseStore(LeaseStore):
    """Flat array indexed by lease ID.

    Fastest lookups but the array must be sized for the whole ID space
    in use and cannot shed cold entries — the memory-footprint loser.
    """

    name = "array"

    def __init__(self, clock: Clock, capacity: int = 65_536) -> None:
        self._clock = clock
        self._capacity = capacity
        self._slots: List[Optional[LeaseRecord]] = [None] * capacity
        self._count = 0

    def insert(self, lease_id: int, gcl: Gcl) -> None:
        if lease_id >= self._capacity:
            raise ValueError(f"lease ID {lease_id} exceeds array capacity")
        if self._slots[lease_id] is not None:
            raise ValueError(f"lease {lease_id} already present")
        self._slots[lease_id] = LeaseRecord(gcl=gcl)
        self._count += 1
        self._clock.advance(ARRAY_INDEX_CYCLES)

    def find(self, lease_id: int) -> LeaseRecord:
        self._clock.advance(ARRAY_INDEX_CYCLES)
        if lease_id >= self._capacity or self._slots[lease_id] is None:
            raise LeaseNotFound(lease_id)
        return self._slots[lease_id]

    def remove(self, lease_id: int) -> Gcl:
        record = self.find(lease_id)
        self._slots[lease_id] = None
        self._count -= 1
        return record.gcl

    def resident_bytes(self) -> int:
        return self._capacity * 8 + self._count * LEASE_SIZE_BYTES

    def __len__(self) -> int:
        return self._count
