"""SecureLease core: leases, the lease tree, and the three SL components.

This package is the paper's primary contribution:

* :mod:`repro.core.gcl` — generalized count-based leases modelling all
  four license types (Section 4.3).
* :mod:`repro.core.lease_tree` — the 4-level, 256-fanout lease tree
  with seal-and-evict paging and crash-safe shutdown (Section 5.2.2).
* :mod:`repro.core.lease_store` — the Table 1 storage alternatives.
* :mod:`repro.core.renewal` — adaptive GCL renewal (Algorithm 1).
* :mod:`repro.core.sl_remote` / :mod:`repro.core.sl_local` /
  :mod:`repro.core.sl_manager` — the three-tier lease-management system
  (Figure 3).
* :mod:`repro.core.tokens` — signed tokens of execution, with the
  10-tokens-per-attestation batching optimisation of Section 7.3.
"""

from repro.core.gcl import Gcl, LeaseExpired, LeaseKind
from repro.core.lease_tree import (
    ENTRIES_PER_NODE,
    LEASE_SIZE_BYTES,
    LEVELS,
    LeaseNotFound,
    LeaseRecord,
    LeaseTree,
    LeaseTreeError,
    NODE_SIZE_BYTES,
    split_lease_id,
)
from repro.core.lease_store import (
    ArrayLeaseStore,
    LeaseStore,
    MurmurLeaseStore,
    Sha256LeaseStore,
    TreeLeaseStore,
)
from repro.core.renewal import (
    LicenseLedger,
    NodeCondition,
    RenewalDecision,
    RenewalPolicy,
    renew_lease,
)
from repro.core.protocol import (
    AttestRequest,
    AttestResponse,
    InitRequest,
    InitResponse,
    RenewRequest,
    RenewResponse,
    ShutdownNotice,
    Status,
)
from repro.core.sl_local import SlLocal, SlLocalError
from repro.core.sl_manager import SlManager
from repro.core.sl_remote import (
    LicenseDefinition,
    LicenseShardState,
    LicenseUnknown,
    SlRemote,
)
from repro.core.tokens import ExecutionToken, TokenError

__all__ = [
    "ArrayLeaseStore",
    "AttestRequest",
    "AttestResponse",
    "ENTRIES_PER_NODE",
    "ExecutionToken",
    "Gcl",
    "InitRequest",
    "InitResponse",
    "LEASE_SIZE_BYTES",
    "LEVELS",
    "LeaseExpired",
    "LeaseKind",
    "LeaseNotFound",
    "LeaseRecord",
    "LeaseStore",
    "LeaseTree",
    "LeaseTreeError",
    "LicenseDefinition",
    "LicenseLedger",
    "LicenseShardState",
    "LicenseUnknown",
    "MurmurLeaseStore",
    "NODE_SIZE_BYTES",
    "NodeCondition",
    "RenewRequest",
    "RenewResponse",
    "RenewalDecision",
    "RenewalPolicy",
    "Sha256LeaseStore",
    "ShutdownNotice",
    "SlLocal",
    "SlLocalError",
    "SlManager",
    "SlRemote",
    "Status",
    "TokenError",
    "TreeLeaseStore",
    "renew_lease",
    "split_lease_id",
]
