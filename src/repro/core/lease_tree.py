"""The 4-level lease tree (Section 5.2.2).

SL-Local organises its leases like a page table: a 4-level radix tree
whose nodes are 4 KB pages holding 256 entries of 16 B each (a 64-bit
key and a 64-bit pointer).  A 32-bit lease ID indexes 8 bits per level.
Leaves hold the 312 B lease structure: a 32-bit lock, a 64-bit hash, and
300 B of lease data (the serialized GCL).

Memory efficiency comes from three properties the tests pin down:

* internal nodes are allocated lazily;
* cold leases and entire subtrees can be *committed* — sealed under a
  fresh random key (Algorithm 2) and offloaded to untrusted memory,
  with only the 64-bit key left behind in the parent entry;
* the root never leaves the enclave while running, and at shutdown the
  root itself is sealed under a key that is escrowed with SL-Remote
  (Section 5.6), which is what defeats replay of stale trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.gcl import Gcl
from repro.crypto.hashes import sha256_word
from repro.crypto.keys import KeyGenerator
from repro.crypto.sealing import SealedBlob, TamperedSealError, protect, validate
from repro.sgx.spinlock import SpinLock

#: Geometry from the paper: 4 KB nodes, 256 16-byte entries, 4 levels.
NODE_SIZE_BYTES = 4096
ENTRIES_PER_NODE = 256
LEVELS = 4
BITS_PER_LEVEL = 8
#: Lease structure size: 32-bit lock + 64-bit hash + 300 B data.
LEASE_SIZE_BYTES = 312

MAX_LEASE_ID = (1 << (BITS_PER_LEVEL * LEVELS)) - 1


class LeaseTreeError(Exception):
    """Raised on structural misuse of the tree."""


class LeaseNotFound(KeyError):
    """Raised when looking up an ID with no lease behind it."""


def split_lease_id(lease_id: int) -> Tuple[int, int, int, int]:
    """Split a 32-bit lease ID into four 8-bit per-level indices (MSB first)."""
    if not 0 <= lease_id <= MAX_LEASE_ID:
        raise LeaseTreeError(f"lease ID {lease_id} does not fit in 32 bits")
    return (
        (lease_id >> 24) & 0xFF,
        (lease_id >> 16) & 0xFF,
        (lease_id >> 8) & 0xFF,
        lease_id & 0xFF,
    )


@dataclass
class LeaseRecord:
    """The 312 B leaf structure: lock, hash, and the GCL payload."""

    gcl: Gcl
    lock: SpinLock = field(default_factory=SpinLock)

    @property
    def integrity_hash(self) -> int:
        """64-bit hash over the lease data (stored alongside it)."""
        return sha256_word(self.gcl.to_bytes())

    def to_bytes(self) -> bytes:
        return self.gcl.to_bytes()

    @classmethod
    def from_bytes(cls, payload: bytes) -> "LeaseRecord":
        return cls(gcl=Gcl.from_bytes(payload))


@dataclass
class _Entry:
    """One 16 B node entry: a 64-bit seal key and a pointer.

    Exactly one of ``child``/``record``/``sealed`` is populated (or none
    for an empty entry).  ``key64`` is meaningful only while ``sealed``
    is set — it seals that blob.
    """

    child: Optional["_Node"] = None
    record: Optional[LeaseRecord] = None
    sealed: Optional[SealedBlob] = None
    key64: int = 0

    @property
    def empty(self) -> bool:
        return self.child is None and self.record is None and self.sealed is None


class _Node:
    """A 4 KB tree node of 256 entries."""

    __slots__ = ("level", "entries")

    def __init__(self, level: int) -> None:
        self.level = level
        self.entries: Dict[int, _Entry] = {}

    def entry(self, index: int) -> _Entry:
        if not 0 <= index < ENTRIES_PER_NODE:
            raise LeaseTreeError(f"entry index {index} out of range")
        if index not in self.entries:
            self.entries[index] = _Entry()
        return self.entries[index]

    def occupied(self) -> Iterator[Tuple[int, _Entry]]:
        for index in sorted(self.entries):
            entry = self.entries[index]
            if not entry.empty:
                yield index, entry


class LeaseTree:
    """Radix tree over 32-bit lease IDs with seal-and-evict paging.

    ``find_cost_hook`` (if given) is invoked with the number of node
    hops a ``find`` performed — the SL-Local service uses it to charge
    cycles; the data structure itself stays simulation-agnostic.
    """

    def __init__(self, keygen: KeyGenerator,
                 find_cost_hook: Optional[Callable[[int], None]] = None) -> None:
        self._root = _Node(level=0)
        self._keygen = keygen
        self._find_cost_hook = find_cost_hook
        self._count = 0
        self._sealed_count = 0

    # ------------------------------------------------------------------
    # Basic operations
    # ------------------------------------------------------------------
    def insert(self, lease_id: int, gcl: Gcl) -> LeaseRecord:
        """Insert a lease, allocating interior nodes lazily."""
        indices = split_lease_id(lease_id)
        node = self._root
        for level, index in enumerate(indices[:-1]):
            entry = node.entry(index)
            if entry.sealed is not None:
                self._unseal_entry(entry, level + 1)
            if entry.child is None:
                if entry.record is not None:
                    raise LeaseTreeError("corrupt tree: record at interior level")
                entry.child = _Node(level=level + 1)
            node = entry.child
        leaf_entry = node.entry(indices[-1])
        if leaf_entry.sealed is not None or leaf_entry.record is not None:
            raise LeaseTreeError(f"lease {lease_id} already present")
        record = LeaseRecord(gcl=gcl)
        leaf_entry.record = record
        self._count += 1
        return record

    def find(self, lease_id: int) -> LeaseRecord:
        """Walk the tree; transparently unseals committed leases on access.

        Raises :class:`LeaseNotFound` for absent IDs.
        """
        indices = split_lease_id(lease_id)
        node = self._root
        hops = 0
        for level, index in enumerate(indices[:-1]):
            hops += 1
            entry = node.entries.get(index)
            if entry is None or entry.empty:
                self._report_hops(hops)
                raise LeaseNotFound(lease_id)
            if entry.sealed is not None:
                self._unseal_entry(entry, level + 1)
            node = entry.child
            if node is None:
                self._report_hops(hops)
                raise LeaseNotFound(lease_id)
        hops += 1
        entry = node.entries.get(indices[-1])
        if entry is None or entry.empty:
            self._report_hops(hops)
            raise LeaseNotFound(lease_id)
        if entry.sealed is not None:
            self._unseal_leaf(entry)
        self._report_hops(hops)
        if entry.record is None:
            raise LeaseNotFound(lease_id)
        return entry.record

    def contains(self, lease_id: int) -> bool:
        try:
            self.find(lease_id)
            return True
        except LeaseNotFound:
            return False

    def remove(self, lease_id: int) -> Gcl:
        """Delete a lease, pruning interior nodes that become empty."""
        record = self.find(lease_id)
        indices = split_lease_id(lease_id)
        path = [self._root]
        for index in indices[:-1]:
            path.append(path[-1].entries[index].child)
        path[-1].entries[indices[-1]] = _Entry()
        self._count -= 1
        # Walk back up, detaching nodes with no occupied entries so the
        # resident footprint shrinks with the population (Table 6's
        # memory story must hold under deletion, too).
        for depth in range(len(path) - 1, 0, -1):
            node = path[depth]
            if any(True for _ in node.occupied()):
                break
            parent = path[depth - 1]
            parent.entries[indices[depth - 1]] = _Entry()
        return record.gcl

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    # Commit (seal-and-evict) — Section 5.5
    # ------------------------------------------------------------------
    def commit_lease(self, lease_id: int) -> None:
        """Seal one lease out to untrusted memory.

        The fresh 64-bit key is written into the parent entry; the
        record itself leaves the EPC.  Every commit uses a new key, so a
        replay of an older ciphertext fails validation.
        """
        indices = split_lease_id(lease_id)
        node = self._root
        for level, index in enumerate(indices[:-1]):
            entry = node.entries.get(index)
            if entry is None or entry.empty:
                raise LeaseNotFound(lease_id)
            if entry.sealed is not None:
                self._unseal_entry(entry, level + 1)
            node = entry.child
        entry = node.entries.get(indices[-1])
        if entry is None or entry.record is None:
            raise LeaseNotFound(lease_id)
        if entry.record.lock.locked:
            raise LeaseTreeError(f"lease {lease_id} is locked; cannot commit")
        blob, key64 = protect(entry.record.to_bytes(), self._keygen)
        entry.sealed = blob
        entry.key64 = key64
        entry.record = None
        self._sealed_count += 1

    def commit_all(self) -> bytes:
        """Shutdown procedure (Section 5.6): seal everything bottom-up.

        Returns the serialized sealed root; the root's sealing key is
        *not* stored locally — the caller ships it to SL-Remote and it
        comes back as the old-backup key (OBK) at next init.

        After this call the tree is empty (all state lives in the
        returned untrusted image plus the escrowed key).
        """
        image, root_key = self._seal_node(self._root)
        self._root = _Node(level=0)
        self._count = 0
        self._sealed_count = 0
        # Pack key alongside nothing: caller gets (blob, key) separately.
        self._pending_root_key = root_key
        self._pending_root_blob = image
        return root_key

    @property
    def shutdown_image(self) -> Optional[SealedBlob]:
        """The sealed root produced by the last :meth:`commit_all`."""
        return getattr(self, "_pending_root_blob", None)

    def _seal_node(self, node: _Node) -> Tuple[SealedBlob, int]:
        """Recursively seal a subtree; returns (blob, key) for this node."""
        parts: List[bytes] = []
        for index, entry in node.occupied():
            if entry.record is not None:
                blob, key64 = protect(entry.record.to_bytes(), self._keygen)
                entry.sealed, entry.key64, entry.record = blob, key64, None
            elif entry.child is not None:
                blob, key64 = self._seal_node(entry.child)
                entry.sealed, entry.key64, entry.child = blob, key64, None
            parts.append(self._encode_sealed_entry(index, entry, node.level))
        payload = b"".join(parts) or b"\x00"
        body = bytes([node.level]) + payload
        blob, key64 = protect(body, self._keygen)
        return blob, key64

    @staticmethod
    def _encode_sealed_entry(index: int, entry: _Entry, level: int) -> bytes:
        # entry wire format: index(1) kind(1) key(8) nonce_len(2) nonce
        #                    ct_len(4) ciphertext
        kind = 1 if level == LEVELS - 1 else 0  # 1 = leaf record, 0 = child node
        blob = entry.sealed
        return (
            bytes([index, kind])
            + entry.key64.to_bytes(8, "big")
            + len(blob.nonce).to_bytes(2, "big")
            + blob.nonce
            + len(blob.ciphertext).to_bytes(4, "big")
            + blob.ciphertext
        )

    # ------------------------------------------------------------------
    # Restore — Section 5.6 init path
    # ------------------------------------------------------------------
    @classmethod
    def restore(cls, image: SealedBlob, old_backup_key: int,
                keygen: KeyGenerator,
                find_cost_hook: Optional[Callable[[int], None]] = None) -> "LeaseTree":
        """Rebuild a tree from a sealed shutdown image and the OBK.

        Raises :class:`TamperedSealError` if the image is stale or
        modified — a replayed old tree fails here because its root was
        sealed under a different key than the escrowed one.
        """
        tree = cls(keygen=keygen, find_cost_hook=find_cost_hook)
        tree._root = tree._decode_node(image, old_backup_key)
        tree._count = tree._count_leaves(tree._root)
        return tree

    def _decode_node(self, blob: SealedBlob, key64: int) -> _Node:
        body = validate(blob, key64)
        level = body[0]
        node = _Node(level=level)
        offset = 1
        payload = body
        if payload[1:] == b"\x00" and len(payload) == 2:
            return node
        while offset < len(payload):
            if len(payload) - offset == 1 and payload[offset] == 0:
                break
            index = payload[offset]
            kind = payload[offset + 1]
            key = int.from_bytes(payload[offset + 2 : offset + 10], "big")
            nonce_len = int.from_bytes(payload[offset + 10 : offset + 12], "big")
            nonce = payload[offset + 12 : offset + 12 + nonce_len]
            pos = offset + 12 + nonce_len
            ct_len = int.from_bytes(payload[pos : pos + 4], "big")
            ciphertext = payload[pos + 4 : pos + 4 + ct_len]
            offset = pos + 4 + ct_len
            entry = node.entry(index)
            entry.sealed = SealedBlob(ciphertext=ciphertext, nonce=nonce)
            entry.key64 = key
            # Leaves stay sealed (lazy unseal on find); this keeps
            # restore O(resident) instead of O(total leases).
            _ = kind
        return node

    def _count_leaves(self, node: _Node) -> int:
        total = 0
        for _, entry in node.occupied():
            if entry.record is not None:
                total += 1
            elif entry.child is not None:
                total += self._count_leaves(entry.child)
            elif entry.sealed is not None:
                total += self._count_sealed(entry, node.level)
        return total

    def _count_sealed(self, entry: _Entry, parent_level: int) -> int:
        """Count leases under a sealed entry without keeping it unsealed."""
        if parent_level == LEVELS - 1:
            return 1
        child = self._decode_node(entry.sealed, entry.key64)
        return self._count_leaves(child)

    # ------------------------------------------------------------------
    # Unsealing helpers
    # ------------------------------------------------------------------
    def _unseal_entry(self, entry: _Entry, child_level: int) -> None:
        """Bring a sealed child node back into trusted memory."""
        node = self._decode_node(entry.sealed, entry.key64)
        if node.level != child_level:
            raise TamperedSealError(
                f"sealed node claims level {node.level}, expected {child_level}"
            )
        entry.child = node
        entry.sealed = None
        entry.key64 = 0

    def _unseal_leaf(self, entry: _Entry) -> None:
        payload = validate(entry.sealed, entry.key64)
        entry.record = LeaseRecord.from_bytes(payload)
        entry.sealed = None
        entry.key64 = 0
        self._sealed_count = max(0, self._sealed_count - 1)

    def _report_hops(self, hops: int) -> None:
        if self._find_cost_hook is not None:
            self._find_cost_hook(hops)

    # ------------------------------------------------------------------
    # Memory accounting (Table 6)
    # ------------------------------------------------------------------
    def resident_bytes(self) -> int:
        """EPC bytes used by resident nodes and lease records.

        Sealed (committed) leases and subtrees cost nothing here — they
        live in untrusted memory.  This is the quantity Table 6 reports.
        """
        return self._resident_bytes(self._root)

    def _resident_bytes(self, node: _Node) -> int:
        total = NODE_SIZE_BYTES
        for _, entry in node.occupied():
            if entry.record is not None:
                total += LEASE_SIZE_BYTES
            elif entry.child is not None:
                total += self._resident_bytes(entry.child)
        return total

    def resident_lease_count(self) -> int:
        """Number of unsealed lease records currently in trusted memory."""
        return self._count_resident(self._root)

    def _count_resident(self, node: _Node) -> int:
        total = 0
        for _, entry in node.occupied():
            if entry.record is not None:
                total += 1
            elif entry.child is not None:
                total += self._count_resident(entry.child)
        return total

    def iter_resident_ids(self) -> Iterator[int]:
        """Yield the IDs of all currently resident (unsealed) leases."""
        yield from self._iter_ids(self._root, prefix=0, depth=0, unseal=False)

    def iter_all_ids(self) -> Iterator[int]:
        """Yield the IDs of every lease, resident or sealed.

        Sealed *interior* nodes are unsealed to walk them (their leaf
        records stay sealed); used by SL-Local after a restore to
        rebuild its license bindings.
        """
        yield from self._iter_ids(self._root, prefix=0, depth=0, unseal=True)

    def _iter_ids(self, node: _Node, prefix: int, depth: int,
                  unseal: bool) -> Iterator[int]:
        for index, entry in node.occupied():
            value = (prefix << BITS_PER_LEVEL) | index
            if depth == LEVELS - 1:
                if entry.record is not None or (unseal and entry.sealed is not None):
                    yield value
                continue
            if entry.sealed is not None and unseal:
                self._unseal_entry(entry, depth + 1)
            if entry.child is not None:
                yield from self._iter_ids(entry.child, value, depth + 1, unseal)
