"""Generalized count-based leases (GCLs).

Section 4.3's key abstraction: *every* license type reduces to a counter
that is decremented when some condition is fulfilled, and the lease
expires when the counter reaches zero.

* A **count-based** lease decrements once per execution.
* A **time-based** lease discretises calendar time (e.g. 1-day ticks)
  and decrements per elapsed tick — including ticks that passed while
  the system was off, using the stored last-measurement timestamp.
* An **execution-time** lease decrements per unit of accumulated
  execution time.
* A **perpetual** lease has a vacuous decrement (a binary
  activated/revoked flag).

Revocation is uniform: set the counter to zero.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Optional


class LeaseKind(enum.Enum):
    """The four license types of Section 4.3, all mapped onto a GCL."""

    COUNT = "count"
    TIME = "time"
    EXECUTION_TIME = "execution_time"
    PERPETUAL = "perpetual"


class LeaseExpired(Exception):
    """Raised when consuming from an exhausted or revoked lease."""


#: Serialized GCL payload layout (fits in the paper's 300 B lease data):
#: kind(1) counter(8) tick_ms(8) last_seen_ms(8) partial_ms(8)
#: license-id bytes (variable).
_GCL_HEADER = struct.Struct(">BQQQQ")


@dataclass
class Gcl:
    """One generalized count-based lease.

    Attributes
    ----------
    license_id:
        The license this lease draws from (one per add-on module).
    kind:
        Which decrement rule applies.
    counter:
        Remaining units.  For perpetual leases this is 1 (activated) or
        0 (revoked).
    tick_seconds:
        For TIME/EXECUTION_TIME leases: how much time one counter unit
        represents (e.g. 86 400 s for a 1-day-tick evaluation license).
    last_seen_seconds:
        For TIME leases: virtual timestamp of the last reconciliation,
        so off-time is charged on the next power-up (Section 4.3).
    """

    license_id: str
    kind: LeaseKind
    counter: int
    tick_seconds: float = 0.0
    last_seen_seconds: float = 0.0
    #: Execution-time remainder not yet worth a whole tick.
    _partial_seconds: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.counter < 0:
            raise ValueError("GCL counter cannot be negative")
        if self.kind in (LeaseKind.TIME, LeaseKind.EXECUTION_TIME):
            if self.tick_seconds <= 0:
                raise ValueError(f"{self.kind.value} lease needs tick_seconds > 0")
        if self.kind is LeaseKind.PERPETUAL:
            self.counter = 1 if self.counter else 0

    # ------------------------------------------------------------------
    # Factories for the four paper lease types
    # ------------------------------------------------------------------
    @classmethod
    def count_based(cls, license_id: str, executions: int) -> "Gcl":
        """A lease permitting a fixed number of executions."""
        return cls(license_id=license_id, kind=LeaseKind.COUNT, counter=executions)

    @classmethod
    def time_based(cls, license_id: str, days: int, now_seconds: float,
                   tick_seconds: float = 86_400.0) -> "Gcl":
        """A calendar lease valid for ``days`` 1-day ticks from ``now``."""
        return cls(
            license_id=license_id,
            kind=LeaseKind.TIME,
            counter=days,
            tick_seconds=tick_seconds,
            last_seen_seconds=now_seconds,
        )

    @classmethod
    def execution_time_based(cls, license_id: str, ticks: int,
                             tick_seconds: float = 3_600.0) -> "Gcl":
        """A lease capping accumulated execution time (hour ticks)."""
        return cls(
            license_id=license_id,
            kind=LeaseKind.EXECUTION_TIME,
            counter=ticks,
            tick_seconds=tick_seconds,
        )

    @classmethod
    def perpetual(cls, license_id: str) -> "Gcl":
        """An activated perpetual lease."""
        return cls(license_id=license_id, kind=LeaseKind.PERPETUAL, counter=1)

    # ------------------------------------------------------------------
    # The counter-modification rules
    # ------------------------------------------------------------------
    @property
    def valid(self) -> bool:
        return self.counter > 0

    def consume_execution(self) -> None:
        """Charge one execution (COUNT decrements; others just gate)."""
        self._require_valid()
        if self.kind is LeaseKind.COUNT:
            self.counter -= 1

    def reconcile_clock(self, now_seconds: float) -> int:
        """Charge elapsed calendar time on a TIME lease.

        Called at power-up and periodically; handles arbitrary off-time
        (Section 4.3's "if the system stays off for some time").  Returns
        how many ticks were charged.
        """
        if self.kind is not LeaseKind.TIME:
            return 0
        if now_seconds < self.last_seen_seconds:
            raise ValueError("time went backwards during reconciliation")
        elapsed = now_seconds - self.last_seen_seconds
        ticks = int(elapsed // self.tick_seconds)
        if ticks > 0:
            charged = min(ticks, self.counter)
            self.counter -= charged
            self.last_seen_seconds += ticks * self.tick_seconds
            return charged
        return 0

    def charge_execution_time(self, seconds: float) -> int:
        """Charge accumulated run time on an EXECUTION_TIME lease."""
        if self.kind is not LeaseKind.EXECUTION_TIME:
            return 0
        if seconds < 0:
            raise ValueError("cannot charge negative execution time")
        self._partial_seconds += seconds
        ticks = int(self._partial_seconds // self.tick_seconds)
        if ticks > 0:
            self._partial_seconds -= ticks * self.tick_seconds
            charged = min(ticks, self.counter)
            self.counter -= charged
            return charged
        return 0

    def revoke(self) -> None:
        """Revocation == zeroing the counter (Section 4.3)."""
        self.counter = 0

    def split(self, amount: int) -> "Gcl":
        """Carve ``amount`` units off into a sub-GCL (server-side).

        Used by SL-Remote when issuing a sub-lease ``g_i`` to a client;
        the units move, so double-spending is structurally impossible.
        """
        if self.kind is LeaseKind.PERPETUAL:
            raise ValueError("perpetual leases are not divisible")
        if amount <= 0:
            raise ValueError("sub-GCL must carry at least one unit")
        if amount > self.counter:
            raise LeaseExpired(
                f"license {self.license_id!r} has {self.counter} units; "
                f"cannot split off {amount}"
            )
        self.counter -= amount
        return Gcl(
            license_id=self.license_id,
            kind=self.kind,
            counter=amount,
            tick_seconds=self.tick_seconds,
            last_seen_seconds=self.last_seen_seconds,
        )

    def absorb(self, other: "Gcl") -> None:
        """Return unused units from a sub-GCL back into this lease."""
        if other.license_id != self.license_id:
            raise ValueError("cannot absorb a lease for a different license")
        if other.kind is not self.kind:
            raise ValueError("cannot absorb a lease of a different kind")
        if self.kind is LeaseKind.PERPETUAL:
            return
        self.counter += other.counter
        other.counter = 0

    def _require_valid(self) -> None:
        if not self.valid:
            raise LeaseExpired(f"lease for {self.license_id!r} is exhausted")

    # ------------------------------------------------------------------
    # Serialization (what gets sealed into lease-tree leaves)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        kind_code = list(LeaseKind).index(self.kind)
        header = _GCL_HEADER.pack(
            kind_code,
            self.counter,
            int(self.tick_seconds * 1000),
            int(self.last_seen_seconds * 1000),
            int(self._partial_seconds * 1000),
        )
        return header + self.license_id.encode("utf-8")

    @classmethod
    def from_bytes(cls, payload: bytes) -> "Gcl":
        kind_code, counter, tick_ms, last_ms, partial_ms = (
            _GCL_HEADER.unpack_from(payload)
        )
        license_id = payload[_GCL_HEADER.size :].decode("utf-8")
        kinds = list(LeaseKind)
        if kind_code >= len(kinds):
            raise ValueError(f"unknown lease kind code {kind_code}")
        gcl = cls.__new__(cls)
        gcl.license_id = license_id
        gcl.kind = kinds[kind_code]
        gcl.counter = counter
        gcl.tick_seconds = tick_ms / 1000
        gcl.last_seen_seconds = last_ms / 1000
        gcl._partial_seconds = partial_ms / 1000
        return gcl
