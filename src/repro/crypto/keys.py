"""Key generation helpers.

The paper seals every committed lease node under a *fresh* random 64-bit
key (Section 5.5) stored in the parent node's metadata entry; freshness
of the key is what defeats replay of stale ciphertexts.  SGX hardware
would supply the entropy; here a :class:`DeterministicRng` does, so that
experiments replay exactly.
"""

from __future__ import annotations

import hashlib

from repro.sim.rng import DeterministicRng


def expand_key64(key64: int) -> bytes:
    """Expand a 64-bit key into the 16-byte AES-128 key actually used.

    The paper stores 64-bit keys in lease-tree entries; AES needs 128
    bits, so we derive the cipher key by hashing, mirroring how SGX
    derives sealing keys from key material plus enclave identity.
    """
    if not 0 <= key64 < (1 << 64):
        raise ValueError(f"key must fit in 64 bits: {key64}")
    return hashlib.sha256(key64.to_bytes(8, "big") + b"securelease-kdf").digest()[:16]


class KeyGenerator:
    """Generates fresh 64-bit sealing keys and 8-byte nonces."""

    def __init__(self, rng: DeterministicRng) -> None:
        self._rng = rng
        self._nonce_counter = 0

    def fresh_key64(self) -> int:
        """A new 64-bit key; never reused within one generator stream."""
        return self._rng.key64()

    def fresh_nonce(self) -> bytes:
        """A unique 8-byte CTR nonce.

        Uniqueness is guaranteed by a counter rather than randomness:
        nonce reuse under CTR would leak plaintext XORs.
        """
        self._nonce_counter += 1
        return self._nonce_counter.to_bytes(8, "big")
