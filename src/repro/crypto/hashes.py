"""Hash functions used by the lease stores.

Table 1 of the paper compares three ``find()`` implementations for
SL-Local: a 4-level tree, a MurmurHash-based hash table (what C++'s
``std::unordered_map`` uses), and a SHA-256-based hash table.  We
implement MurmurHash3 from scratch (x86 32-bit and 128-bit variants) and
wrap :mod:`hashlib` for SHA-256.
"""

from __future__ import annotations

import hashlib
import struct

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF


def _rotl32(x: int, r: int) -> int:
    return ((x << r) | (x >> (32 - r))) & _MASK32


def _rotl64(x: int, r: int) -> int:
    return ((x << r) | (x >> (64 - r))) & _MASK64


def _fmix32(h: int) -> int:
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & _MASK32
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & _MASK32
    h ^= h >> 16
    return h


def _fmix64(k: int) -> int:
    k ^= k >> 33
    k = (k * 0xFF51AFD7ED558CCD) & _MASK64
    k ^= k >> 33
    k = (k * 0xC4CEB9FE1A85EC53) & _MASK64
    k ^= k >> 33
    return k


def murmur3_32(data: bytes, seed: int = 0) -> int:
    """MurmurHash3 x86 32-bit of ``data``.

    Matches the reference implementation (Austin Appleby); verified
    against published test vectors in the test suite.
    """
    c1 = 0xCC9E2D51
    c2 = 0x1B873593
    h1 = seed & _MASK32
    length = len(data)
    nblocks = length // 4

    for i in range(nblocks):
        (k1,) = struct.unpack_from("<I", data, i * 4)
        k1 = (k1 * c1) & _MASK32
        k1 = _rotl32(k1, 15)
        k1 = (k1 * c2) & _MASK32
        h1 ^= k1
        h1 = _rotl32(h1, 13)
        h1 = (h1 * 5 + 0xE6546B64) & _MASK32

    k1 = 0
    tail = data[nblocks * 4 :]
    if len(tail) >= 3:
        k1 ^= tail[2] << 16
    if len(tail) >= 2:
        k1 ^= tail[1] << 8
    if len(tail) >= 1:
        k1 ^= tail[0]
        k1 = (k1 * c1) & _MASK32
        k1 = _rotl32(k1, 15)
        k1 = (k1 * c2) & _MASK32
        h1 ^= k1

    h1 ^= length
    return _fmix32(h1)


def murmur3_128(data: bytes, seed: int = 0) -> int:
    """MurmurHash3 x64 128-bit of ``data``, returned as a 128-bit int."""
    c1 = 0x87C37B91114253D5
    c2 = 0x4CF5AD432745937F
    h1 = seed & _MASK64
    h2 = seed & _MASK64
    length = len(data)
    nblocks = length // 16

    for i in range(nblocks):
        k1, k2 = struct.unpack_from("<QQ", data, i * 16)
        k1 = (k1 * c1) & _MASK64
        k1 = _rotl64(k1, 31)
        k1 = (k1 * c2) & _MASK64
        h1 ^= k1
        h1 = _rotl64(h1, 27)
        h1 = (h1 + h2) & _MASK64
        h1 = (h1 * 5 + 0x52DCE729) & _MASK64
        k2 = (k2 * c2) & _MASK64
        k2 = _rotl64(k2, 33)
        k2 = (k2 * c1) & _MASK64
        h2 ^= k2
        h2 = _rotl64(h2, 31)
        h2 = (h2 + h1) & _MASK64
        h2 = (h2 * 5 + 0x38495AB5) & _MASK64

    tail = data[nblocks * 16 :]
    k1 = 0
    k2 = 0
    if len(tail) > 8:
        for i in range(len(tail) - 1, 7, -1):
            k2 = (k2 << 8) | tail[i]
        k2 = (k2 * c2) & _MASK64
        k2 = _rotl64(k2, 33)
        k2 = (k2 * c1) & _MASK64
        h2 ^= k2
    if tail:
        for i in range(min(len(tail), 8) - 1, -1, -1):
            k1 = (k1 << 8) | tail[i]
        k1 = (k1 * c1) & _MASK64
        k1 = _rotl64(k1, 31)
        k1 = (k1 * c2) & _MASK64
        h1 ^= k1

    h1 ^= length
    h2 ^= length
    h1 = (h1 + h2) & _MASK64
    h2 = (h2 + h1) & _MASK64
    h1 = _fmix64(h1)
    h2 = _fmix64(h2)
    h1 = (h1 + h2) & _MASK64
    h2 = (h2 + h1) & _MASK64
    return (h2 << 64) | h1


def sha256_digest(data: bytes) -> bytes:
    """Full 32-byte SHA-256 digest."""
    return hashlib.sha256(data).digest()


def sha256_word(data: bytes) -> int:
    """First 64 bits of the SHA-256 digest, as an int.

    The lease metadata stores a 64-bit hash per lease (Section 5.2.2);
    this is the truncation used throughout the reproduction.
    """
    return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")
