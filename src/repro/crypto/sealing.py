"""Sealing of lease data: the paper's ``Protect`` and ``Validate``.

Algorithm 2 (Protect): hash the data, generate a random key, encrypt
``data || hash`` under that key, and return ``(ciphertext, key)``.  The
ciphertext lives in untrusted memory; the key stays inside the enclave
(in the parent lease-tree node).

Algorithm 3 (Validate): decrypt, split off the hash, recompute, compare.
A mismatch means the untrusted side tampered with or replayed the blob.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.aes import aes128_ctr_decrypt, aes128_ctr_encrypt
from repro.crypto.hashes import sha256_digest
from repro.crypto.keys import KeyGenerator, expand_key64

_HASH_LEN = 32


class TamperedSealError(Exception):
    """Raised when a sealed blob fails integrity validation."""


@dataclass(frozen=True)
class SealedBlob:
    """An encrypted payload living in untrusted memory.

    The nonce rides along in plaintext (standard for CTR); secrecy and
    integrity come from the key and the embedded hash respectively.
    """

    ciphertext: bytes
    nonce: bytes

    @property
    def size_bytes(self) -> int:
        return len(self.ciphertext) + len(self.nonce)

    def to_wire(self) -> dict:
        """JSON-ready field dict so sealed images can cross a real wire
        (e.g. escrowing a shutdown image with SL-Remote)."""
        return {"ciphertext": self.ciphertext.hex(), "nonce": self.nonce.hex()}

    @classmethod
    def from_wire(cls, fields: dict) -> "SealedBlob":
        return cls(
            ciphertext=bytes.fromhex(fields["ciphertext"]),
            nonce=bytes.fromhex(fields["nonce"]),
        )


def protect(data: bytes, keygen: KeyGenerator) -> "tuple[SealedBlob, int]":
    """Seal ``data`` under a fresh 64-bit key (paper Algorithm 2).

    Returns ``(blob, key64)``.  The caller stores ``key64`` in trusted
    memory (the parent tree node) and may place ``blob`` anywhere.
    """
    digest = sha256_digest(data)
    key64 = keygen.fresh_key64()
    nonce = keygen.fresh_nonce()
    ciphertext = aes128_ctr_encrypt(data + digest, expand_key64(key64), nonce)
    return SealedBlob(ciphertext=ciphertext, nonce=nonce), key64


def validate(blob: SealedBlob, key64: int) -> bytes:
    """Unseal a blob and verify integrity (paper Algorithm 3).

    Returns the original data, or raises :class:`TamperedSealError` if
    the embedded hash does not match — which is exactly what happens when
    an attacker replays a blob sealed under an older (different) key.
    """
    plaintext = aes128_ctr_decrypt(blob.ciphertext, expand_key64(key64), blob.nonce)
    if len(plaintext) < _HASH_LEN:
        raise TamperedSealError("sealed blob too short to contain a hash")
    data, stored_hash = plaintext[:-_HASH_LEN], plaintext[-_HASH_LEN:]
    if sha256_digest(data) != stored_hash:
        raise TamperedSealError("hash mismatch: blob tampered with or replayed")
    return data
