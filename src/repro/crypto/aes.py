"""Pure-Python AES-128 with CTR mode.

SGX seals data with AES-GCM in hardware; the paper's ``Protect``/
``Validate`` routines (Algorithms 2-3) need only an authenticated
encrypt/decrypt pair.  We implement AES-128 from the FIPS-197
specification (table-driven) and run it in counter mode; authentication
is provided on top by :mod:`repro.crypto.sealing` (encrypt-then-check of
an embedded SHA-256).

The implementation is self-contained and verified against FIPS-197 /
NIST SP 800-38A test vectors in the test suite.
"""

from __future__ import annotations

import struct
from typing import List

_SBOX: List[int] = []


def _build_sbox() -> None:
    """Construct the AES S-box from GF(2^8) inverses plus the affine map."""
    if _SBOX:
        return
    # Multiplicative inverses in GF(2^8) via exp/log tables (generator 3).
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by 3 in GF(2^8)
        x ^= (x << 1) ^ (0x11B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    for value in range(256):
        inv = 0 if value == 0 else exp[255 - log[value]]
        # affine transformation
        s = inv
        result = 0x63
        for _ in range(4):
            s = ((s << 1) | (s >> 7)) & 0xFF
            result ^= s
        result ^= inv
        _SBOX.append(result)


_build_sbox()

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def _xtime(a: int) -> int:
    """Multiply by x (i.e. 2) in GF(2^8)."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


# Precomputed multiply-by-2 and multiply-by-3 tables for MixColumns.
_MUL2 = [_xtime(i) for i in range(256)]
_MUL3 = [_xtime(i) ^ i for i in range(256)]


def _gf_mul(a: int, b: int) -> int:
    """General GF(2^8) multiplication (for InvMixColumns)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


# Inverse S-box and the 9/11/13/14 tables for the inverse cipher.
_INV_SBOX = [0] * 256
for _value, _mapped in enumerate(_SBOX):
    _INV_SBOX[_mapped] = _value
_MUL9 = [_gf_mul(i, 9) for i in range(256)]
_MUL11 = [_gf_mul(i, 11) for i in range(256)]
_MUL13 = [_gf_mul(i, 13) for i in range(256)]
_MUL14 = [_gf_mul(i, 14) for i in range(256)]


class Aes128:
    """AES-128 block cipher (encryption direction only; CTR needs no inverse)."""

    BLOCK_SIZE = 16
    ROUNDS = 10

    def __init__(self, key: bytes) -> None:
        if len(key) != 16:
            raise ValueError(f"AES-128 key must be 16 bytes, got {len(key)}")
        self._round_keys = self._expand_key(key)

    @staticmethod
    def _expand_key(key: bytes) -> List[List[int]]:
        """FIPS-197 key schedule producing 11 round keys of 16 bytes each."""
        words = [list(key[i : i + 4]) for i in range(0, 16, 4)]
        for i in range(4, 4 * (Aes128.ROUNDS + 1)):
            temp = list(words[i - 1])
            if i % 4 == 0:
                temp = temp[1:] + temp[:1]  # RotWord
                temp = [_SBOX[b] for b in temp]  # SubWord
                temp[0] ^= _RCON[i // 4 - 1]
            words.append([a ^ b for a, b in zip(words[i - 4], temp)])
        round_keys = []
        for r in range(Aes128.ROUNDS + 1):
            rk: List[int] = []
            for w in words[4 * r : 4 * r + 4]:
                rk.extend(w)
            round_keys.append(rk)
        return round_keys

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        # state is column-major flattened: byte (row r, col c) at 4*c + r,
        # which matches the natural byte order of the input block.
        state = list(block)
        self._add_round_key(state, 0)
        for rnd in range(1, self.ROUNDS):
            self._sub_bytes(state)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, rnd)
        self._sub_bytes(state)
        self._shift_rows(state)
        self._add_round_key(state, self.ROUNDS)
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block (FIPS-197 inverse cipher).

        CTR mode never calls this; it exists so the cipher is complete
        (and so the ECB known-answer vectors can be checked both ways).
        """
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        state = list(block)
        self._add_round_key(state, self.ROUNDS)
        for rnd in range(self.ROUNDS - 1, 0, -1):
            self._inv_shift_rows(state)
            self._inv_sub_bytes(state)
            self._add_round_key(state, rnd)
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._inv_sub_bytes(state)
        self._add_round_key(state, 0)
        return bytes(state)

    def _add_round_key(self, state: List[int], rnd: int) -> None:
        rk = self._round_keys[rnd]
        for i in range(16):
            state[i] ^= rk[i]

    @staticmethod
    def _sub_bytes(state: List[int]) -> None:
        for i in range(16):
            state[i] = _SBOX[state[i]]

    @staticmethod
    def _shift_rows(state: List[int]) -> None:
        # state is column-major: byte (row r, col c) at index 4*c + r.
        for r in range(1, 4):
            row = [state[4 * c + r] for c in range(4)]
            row = row[r:] + row[:r]
            for c in range(4):
                state[4 * c + r] = row[c]

    @staticmethod
    def _mix_columns(state: List[int]) -> None:
        for c in range(4):
            a0, a1, a2, a3 = state[4 * c : 4 * c + 4]
            state[4 * c + 0] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3
            state[4 * c + 1] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3
            state[4 * c + 2] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3]
            state[4 * c + 3] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3]

    @staticmethod
    def _inv_sub_bytes(state: List[int]) -> None:
        for i in range(16):
            state[i] = _INV_SBOX[state[i]]

    @staticmethod
    def _inv_shift_rows(state: List[int]) -> None:
        for r in range(1, 4):
            row = [state[4 * c + r] for c in range(4)]
            row = row[-r:] + row[:-r]
            for c in range(4):
                state[4 * c + r] = row[c]

    @staticmethod
    def _inv_mix_columns(state: List[int]) -> None:
        for c in range(4):
            a0, a1, a2, a3 = state[4 * c : 4 * c + 4]
            state[4 * c + 0] = _MUL14[a0] ^ _MUL11[a1] ^ _MUL13[a2] ^ _MUL9[a3]
            state[4 * c + 1] = _MUL9[a0] ^ _MUL14[a1] ^ _MUL11[a2] ^ _MUL13[a3]
            state[4 * c + 2] = _MUL13[a0] ^ _MUL9[a1] ^ _MUL14[a2] ^ _MUL11[a3]
            state[4 * c + 3] = _MUL11[a0] ^ _MUL13[a1] ^ _MUL9[a2] ^ _MUL14[a3]


def _ctr_keystream(cipher: Aes128, nonce: bytes, nblocks: int) -> bytes:
    """Generate ``nblocks`` blocks of CTR keystream for an 8-byte nonce."""
    if len(nonce) != 8:
        raise ValueError("CTR nonce must be 8 bytes")
    out = bytearray()
    for counter in range(nblocks):
        block = nonce + struct.pack(">Q", counter)
        out.extend(cipher.encrypt_block(block))
    return bytes(out)


def aes128_ctr_encrypt(plaintext: bytes, key: bytes, nonce: bytes) -> bytes:
    """Encrypt ``plaintext`` with AES-128-CTR; the nonce is 8 bytes."""
    cipher = Aes128(key)
    nblocks = (len(plaintext) + 15) // 16
    stream = _ctr_keystream(cipher, nonce, nblocks)
    return bytes(p ^ s for p, s in zip(plaintext, stream))


def aes128_ctr_decrypt(ciphertext: bytes, key: bytes, nonce: bytes) -> bytes:
    """CTR decryption is identical to encryption."""
    return aes128_ctr_encrypt(ciphertext, key, nonce)
