"""Cryptographic substrate for SecureLease.

The paper seals evicted lease nodes with authenticated encryption
(Algorithms 2-3) keyed by per-commit 64-bit random keys, compares
MurmurHash- and SHA-256-based lease stores (Table 1), and relies on SGX's
hardware key derivation.  This package supplies all of that in pure
Python: a from-scratch AES-128 (CTR mode), MurmurHash3 (32- and 128-bit
x86 variants), SHA-256 via :mod:`hashlib`, and the sealing helpers.
"""

from repro.crypto.hashes import murmur3_32, murmur3_128, sha256_digest, sha256_word
from repro.crypto.aes import Aes128, aes128_ctr_decrypt, aes128_ctr_encrypt
from repro.crypto.hmac import constant_time_equal, hmac_sha256, hmac_sha256_word
from repro.crypto.keys import KeyGenerator, expand_key64
from repro.crypto.sealing import SealedBlob, TamperedSealError, protect, validate

__all__ = [
    "Aes128",
    "KeyGenerator",
    "SealedBlob",
    "TamperedSealError",
    "aes128_ctr_decrypt",
    "aes128_ctr_encrypt",
    "constant_time_equal",
    "hmac_sha256",
    "hmac_sha256_word",
    "expand_key64",
    "murmur3_32",
    "murmur3_128",
    "protect",
    "sha256_digest",
    "sha256_word",
    "validate",
]
