"""HMAC-SHA256 from scratch (RFC 2104).

The token and attestation MACs deserve a real MAC construction rather
than an ad-hoc hash-of-concatenation: HMAC is immune to length-extension
and keyed properly.  Implemented from the RFC definition over our
SHA-256 wrapper; verified against the RFC 4231 test vectors in the test
suite.
"""

from __future__ import annotations

import hashlib

_BLOCK_SIZE = 64  # SHA-256 block size in bytes
_IPAD = bytes(0x36 for _ in range(_BLOCK_SIZE))
_OPAD = bytes(0x5C for _ in range(_BLOCK_SIZE))


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA256(key, message) per RFC 2104."""
    if len(key) > _BLOCK_SIZE:
        key = hashlib.sha256(key).digest()
    key = key.ljust(_BLOCK_SIZE, b"\x00")
    inner_key = bytes(k ^ p for k, p in zip(key, _IPAD))
    outer_key = bytes(k ^ p for k, p in zip(key, _OPAD))
    inner = hashlib.sha256(inner_key + message).digest()
    return hashlib.sha256(outer_key + inner).digest()


def hmac_sha256_word(key: bytes, message: bytes) -> int:
    """First 64 bits of the HMAC, as an int (the in-tree MAC width)."""
    return int.from_bytes(hmac_sha256(key, message)[:8], "big")


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Timing-safe comparison (single-pass accumulate-and-compare)."""
    if len(a) != len(b):
        return False
    diff = 0
    for x, y in zip(a, b):
        diff |= x ^ y
    return diff == 0
