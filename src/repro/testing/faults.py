"""Deterministic fault injection: storage faults and wire faults.

The WAL's crash-safety claims ("committed prefixes survive, torn tails
are dropped, compaction can die between snapshot and truncate") are
only worth anything if tests can actually produce those disk states.
This module simulates them *deterministically* — no signal racing, no
``kill -9`` timing luck:

* :class:`FaultPlan` — declarative schedule: crash on the Nth
  ``write()`` / Nth ``fsync()`` / at a named crash point, optionally
  landing a torn prefix of the dying write, optionally rolling the
  file back to the last honoured fsync (what a power cut does to an
  OS write-back cache), optionally turning ``fsync`` into a liar that
  reports success while committing nothing.

* :class:`FaultyFile` / :class:`FaultyOpener` — file-object wrappers
  injected through :class:`~repro.storage.wal.WriteAheadLog`'s
  ``opener`` hook.  A triggered fault leaves the on-disk bytes exactly
  as the plan prescribes and raises :class:`SimulatedCrash`, after
  which the test re-runs recovery against the survivor file.

* :class:`NetFaultPlan` — the same declarative idea one layer up, on
  the wire: drop, duplicate, corrupt, or truncate the Nth frame
  crossing a socket.  Consumed by the red-team capture proxy
  (:mod:`repro.redteam.proxy`) to tamper live traffic, and reusable
  by any harness that moves length-prefixed frames.

* :func:`corrupt_file_byte` — flip one byte of a file on disk: the
  ledger-rollback campaigns use it to tamper a killed shard's WAL
  before reviving it.

Used by ``tests/storage/``, ``tests/redteam/``, and mirrored at
process granularity by the SIGKILL chaos benchmark
``benchmarks/test_recovery.py``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, List, Optional


class SimulatedCrash(Exception):
    """The process 'died' here; everything after this write is gone."""


@dataclass
class FaultPlan:
    """A deterministic schedule of storage faults.

    Counters are plan-global (shared across every file the opener
    wraps), so "crash on the 7th write overall" stays meaningful when
    a snapshot and a log are being written through the same plan.
    """

    #: Crash when the Nth ``write()`` call starts (1-based).
    crash_after_writes: Optional[int] = None
    #: Crash when the Nth ``fsync()`` call starts (1-based).
    crash_on_fsync: Optional[int] = None
    #: Crash when code reaches this named crash point
    #: (e.g. ``"snapshot:written"``, ``"wal:reset"``).
    crash_at: Optional[str] = None
    #: On a write-crash, this prefix of the dying write still lands —
    #: the classic torn write.
    torn_bytes: int = 0
    #: On any crash, roll the file back to the last honoured fsync:
    #: models a power cut taking the OS write-back cache with it.
    lose_unsynced: bool = False
    #: Lying disk: ``fsync`` returns success but commits nothing, so
    #: with ``lose_unsynced`` even an ``always``-policy log loses data.
    drop_fsync: bool = False

    writes_seen: int = 0
    fsyncs_seen: int = 0
    crashed: bool = False
    points_seen: List[str] = field(default_factory=list)

    def reached(self, point: str) -> None:
        """Named crash point (called from the code under test)."""
        self.points_seen.append(point)
        if self.crash_at is not None and point == self.crash_at:
            self.crashed = True
            raise SimulatedCrash(f"crash point {point!r}")


class FaultyFile:
    """A file object that dies on schedule.

    Exposes ``fsync`` so :func:`repro.storage.wal._fsync` routes
    durability through the plan instead of straight to ``os.fsync``.
    """

    def __init__(self, inner: Any, plan: FaultPlan, path: str) -> None:
        self._inner = inner
        self._plan = plan
        self.path = path
        # Everything already on disk when we open is considered durable.
        self._synced = inner.tell()

    # -- plan triggers -------------------------------------------------
    def _crash(self, reason: str, torn: bytes = b"") -> None:
        plan = self._plan
        plan.crashed = True
        if plan.lose_unsynced:
            # The write-back cache dies with the power: only the prefix
            # up to the last honoured fsync survives.
            self._inner.flush()
            self._inner.truncate(self._synced)
        if torn:
            self._inner.seek(0, os.SEEK_END)
            self._inner.write(torn)
        self._inner.flush()
        self._inner.close()
        raise SimulatedCrash(reason)

    def write(self, data: bytes) -> int:
        plan = self._plan
        plan.writes_seen += 1
        if (plan.crash_after_writes is not None
                and plan.writes_seen >= plan.crash_after_writes):
            torn = bytes(data[:max(0, plan.torn_bytes)])
            self._crash(
                f"crash on write #{plan.writes_seen}"
                f" (torn {len(torn)}/{len(data)} bytes)",
                torn=torn,
            )
        return self._inner.write(data)

    def fsync(self) -> None:
        plan = self._plan
        plan.fsyncs_seen += 1
        if (plan.crash_on_fsync is not None
                and plan.fsyncs_seen >= plan.crash_on_fsync):
            self._crash(f"crash on fsync #{plan.fsyncs_seen}")
        self._inner.flush()
        os.fsync(self._inner.fileno())
        if not plan.drop_fsync:
            self._synced = self._inner.tell()

    # -- passthrough ---------------------------------------------------
    def flush(self) -> None:
        self._inner.flush()

    def fileno(self) -> int:
        return self._inner.fileno()

    def tell(self) -> int:
        return self._inner.tell()

    def truncate(self, size: int) -> int:
        return self._inner.truncate(size)

    def close(self) -> None:
        self._inner.close()

    @property
    def closed(self) -> bool:
        return self._inner.closed

    def __enter__(self) -> "FaultyFile":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class FaultyOpener:
    """``opener(path, mode)`` factory wiring one plan into every file."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.files: List[FaultyFile] = []

    def __call__(self, path: str, mode: str) -> FaultyFile:
        wrapped = FaultyFile(open(path, mode), self.plan, path)
        self.files.append(wrapped)
        return wrapped


# ----------------------------------------------------------------------
# Network-level faults: deterministic frame manipulation
# ----------------------------------------------------------------------
@dataclass
class NetFaultPlan:
    """A deterministic schedule of frame-level wire faults.

    Operates on frame *payloads* (the bytes after the 4-byte length
    prefix): the applier re-frames every surviving payload with a
    correct header, so stream framing always holds and the tamper is
    seen by the **codec** (checksum mismatch, garbage envelope), not
    by the framing layer — exactly the adversary the typed-rejection
    contract is about.  Frame counters are 1-based and plan-global,
    mirroring :class:`FaultPlan`'s write counters.

    One-shot actions (``*_nth``) fire on exactly that frame; the
    periodic ``corrupt_every`` corrupts every Nth frame after
    ``start_after`` (so handshakes/init traffic can pass clean).
    """

    #: Drop the Nth frame entirely (the peer sees silence, then its
    #: own timeout/retry machinery).
    drop_nth: Optional[int] = None
    #: Deliver the Nth frame twice back to back (wire-level replay).
    duplicate_nth: Optional[int] = None
    #: Bit-flip one payload byte of the Nth frame.
    corrupt_nth: Optional[int] = None
    #: Truncate the Nth frame's payload to ``truncate_to`` bytes.
    truncate_nth: Optional[int] = None
    #: Corrupt every Nth frame (after ``start_after``); composes with
    #: ``corrupt_nth`` for one-shot use.
    corrupt_every: Optional[int] = None
    #: Frames numbered <= this pass untouched (lets negotiation and
    #: init traffic through before the tampering starts).
    start_after: int = 0
    #: Which payload byte the corruption flips (modulo the length).
    corrupt_offset: int = 0
    #: XOR mask for the flipped byte (0 would be a no-op; coerced to
    #: 0xFF).
    corrupt_mask: int = 0xFF
    #: Payload bytes kept by a truncation.
    truncate_to: int = 1

    frames_seen: int = 0
    frames_dropped: int = 0
    frames_duplicated: int = 0
    frames_corrupted: int = 0
    frames_truncated: int = 0

    def tampered(self) -> int:
        """Frames this plan mutilated (corrupted or truncated) — the
        number of typed rejections an audit should account for."""
        return self.frames_corrupted + self.frames_truncated

    def _flip(self, payload: bytes) -> bytes:
        data = bytearray(payload)
        if data:
            index = self.corrupt_offset % len(data)
            data[index] ^= (self.corrupt_mask & 0xFF) or 0xFF
        return bytes(data)

    def apply(self, payload: bytes) -> List[bytes]:
        """Map one frame payload to the payloads actually delivered.

        Returns ``[]`` for a drop, one payload normally, two for a
        duplicate; corrupted/truncated payloads come back mutated and
        are counted on the plan.
        """
        self.frames_seen += 1
        n = self.frames_seen
        if n <= self.start_after:
            return [payload]
        if self.drop_nth is not None and n == self.drop_nth:
            self.frames_dropped += 1
            return []
        out = payload
        if self.truncate_nth is not None and n == self.truncate_nth:
            self.frames_truncated += 1
            out = out[:max(0, self.truncate_to)]
        periodic = (self.corrupt_every is not None
                    and (n - self.start_after) % self.corrupt_every == 0)
        if (self.corrupt_nth is not None and n == self.corrupt_nth) \
                or periodic:
            self.frames_corrupted += 1
            out = self._flip(out)
        if self.duplicate_nth is not None and n == self.duplicate_nth:
            self.frames_duplicated += 1
            return [out, out]
        return [out]


def corrupt_file_byte(path: str, offset: Optional[int] = None,
                      mask: int = 0xFF) -> int:
    """Flip one byte of ``path`` in place; returns the offset flipped.

    ``offset=None`` targets the middle of the file — for a WAL that
    lands inside a committed record's sealed body, the classic
    "attacker edits the ledger journal" tamper.  Negative offsets
    count from the end.  Raises :class:`ValueError` on an empty file
    (nothing to tamper).
    """
    size = os.path.getsize(path)
    if size == 0:
        raise ValueError(f"cannot corrupt empty file {path!r}")
    if offset is None:
        offset = size // 2
    if offset < 0:
        offset += size
    if not 0 <= offset < size:
        raise ValueError(f"offset {offset} out of range for {size}-byte file")
    with open(path, "r+b") as handle:
        handle.seek(offset)
        original = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([original[0] ^ ((mask & 0xFF) or 0xFF)]))
        handle.flush()
        os.fsync(handle.fileno())
    return offset
