"""Deterministic storage fault injection for durability tests.

The WAL's crash-safety claims ("committed prefixes survive, torn tails
are dropped, compaction can die between snapshot and truncate") are
only worth anything if tests can actually produce those disk states.
This module simulates them *deterministically* — no signal racing, no
``kill -9`` timing luck:

* :class:`FaultPlan` — declarative schedule: crash on the Nth
  ``write()`` / Nth ``fsync()`` / at a named crash point, optionally
  landing a torn prefix of the dying write, optionally rolling the
  file back to the last honoured fsync (what a power cut does to an
  OS write-back cache), optionally turning ``fsync`` into a liar that
  reports success while committing nothing.

* :class:`FaultyFile` / :class:`FaultyOpener` — file-object wrappers
  injected through :class:`~repro.storage.wal.WriteAheadLog`'s
  ``opener`` hook.  A triggered fault leaves the on-disk bytes exactly
  as the plan prescribes and raises :class:`SimulatedCrash`, after
  which the test re-runs recovery against the survivor file.

Used by ``tests/storage/`` and mirrored at process granularity by the
SIGKILL chaos benchmark ``benchmarks/test_recovery.py``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, List, Optional


class SimulatedCrash(Exception):
    """The process 'died' here; everything after this write is gone."""


@dataclass
class FaultPlan:
    """A deterministic schedule of storage faults.

    Counters are plan-global (shared across every file the opener
    wraps), so "crash on the 7th write overall" stays meaningful when
    a snapshot and a log are being written through the same plan.
    """

    #: Crash when the Nth ``write()`` call starts (1-based).
    crash_after_writes: Optional[int] = None
    #: Crash when the Nth ``fsync()`` call starts (1-based).
    crash_on_fsync: Optional[int] = None
    #: Crash when code reaches this named crash point
    #: (e.g. ``"snapshot:written"``, ``"wal:reset"``).
    crash_at: Optional[str] = None
    #: On a write-crash, this prefix of the dying write still lands —
    #: the classic torn write.
    torn_bytes: int = 0
    #: On any crash, roll the file back to the last honoured fsync:
    #: models a power cut taking the OS write-back cache with it.
    lose_unsynced: bool = False
    #: Lying disk: ``fsync`` returns success but commits nothing, so
    #: with ``lose_unsynced`` even an ``always``-policy log loses data.
    drop_fsync: bool = False

    writes_seen: int = 0
    fsyncs_seen: int = 0
    crashed: bool = False
    points_seen: List[str] = field(default_factory=list)

    def reached(self, point: str) -> None:
        """Named crash point (called from the code under test)."""
        self.points_seen.append(point)
        if self.crash_at is not None and point == self.crash_at:
            self.crashed = True
            raise SimulatedCrash(f"crash point {point!r}")


class FaultyFile:
    """A file object that dies on schedule.

    Exposes ``fsync`` so :func:`repro.storage.wal._fsync` routes
    durability through the plan instead of straight to ``os.fsync``.
    """

    def __init__(self, inner: Any, plan: FaultPlan, path: str) -> None:
        self._inner = inner
        self._plan = plan
        self.path = path
        # Everything already on disk when we open is considered durable.
        self._synced = inner.tell()

    # -- plan triggers -------------------------------------------------
    def _crash(self, reason: str, torn: bytes = b"") -> None:
        plan = self._plan
        plan.crashed = True
        if plan.lose_unsynced:
            # The write-back cache dies with the power: only the prefix
            # up to the last honoured fsync survives.
            self._inner.flush()
            self._inner.truncate(self._synced)
        if torn:
            self._inner.seek(0, os.SEEK_END)
            self._inner.write(torn)
        self._inner.flush()
        self._inner.close()
        raise SimulatedCrash(reason)

    def write(self, data: bytes) -> int:
        plan = self._plan
        plan.writes_seen += 1
        if (plan.crash_after_writes is not None
                and plan.writes_seen >= plan.crash_after_writes):
            torn = bytes(data[:max(0, plan.torn_bytes)])
            self._crash(
                f"crash on write #{plan.writes_seen}"
                f" (torn {len(torn)}/{len(data)} bytes)",
                torn=torn,
            )
        return self._inner.write(data)

    def fsync(self) -> None:
        plan = self._plan
        plan.fsyncs_seen += 1
        if (plan.crash_on_fsync is not None
                and plan.fsyncs_seen >= plan.crash_on_fsync):
            self._crash(f"crash on fsync #{plan.fsyncs_seen}")
        self._inner.flush()
        os.fsync(self._inner.fileno())
        if not plan.drop_fsync:
            self._synced = self._inner.tell()

    # -- passthrough ---------------------------------------------------
    def flush(self) -> None:
        self._inner.flush()

    def fileno(self) -> int:
        return self._inner.fileno()

    def tell(self) -> int:
        return self._inner.tell()

    def truncate(self, size: int) -> int:
        return self._inner.truncate(size)

    def close(self) -> None:
        self._inner.close()

    @property
    def closed(self) -> bool:
        return self._inner.closed

    def __enter__(self) -> "FaultyFile":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class FaultyOpener:
    """``opener(path, mode)`` factory wiring one plan into every file."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.files: List[FaultyFile] = []

    def __call__(self, path: str, mode: str) -> FaultyFile:
        wrapped = FaultyFile(open(path, mode), self.plan, path)
        self.files.append(wrapped)
        return wrapped
