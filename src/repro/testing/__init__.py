"""Reusable test infrastructure (fault injection for durability tests)."""

from repro.testing.faults import (
    FaultPlan,
    FaultyFile,
    FaultyOpener,
    SimulatedCrash,
)

__all__ = ["FaultPlan", "FaultyFile", "FaultyOpener", "SimulatedCrash"]
