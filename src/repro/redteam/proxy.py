"""Capture/replay wire proxy: the adversary's tap on the socket.

A :class:`CaptureProxy` sits between a lease client and one server,
speaking nothing but the length-prefixed framing both sides already
use: each pump thread reads whole frames (v1/v2 JSON or v3 binary —
the proxy never needs to understand them), records them in capture
order, optionally runs them through a per-direction
:class:`~repro.testing.faults.NetFaultPlan`, and re-frames whatever
survives toward the other side.  Because tampering happens on the
*payload* and the proxy re-frames with a correct header, a corrupted
frame arrives well-framed but fails the codec's CRC/magic/JSON checks
— precisely the adversary the typed-rejection contract
(:class:`~repro.net.errors.TamperedFrame`, server-side
``frames_rejected``) is written against.

:func:`inject_frames` is the replay half: take captured client→server
payloads and push them at *any* server — the one they were recorded
against, its promoted successor after a SIGKILL, or a deposed primary
that just came back from the dead — and classify every answer.  v3
frames are sniffed per frame by the servers, so no hello handshake is
needed before injecting.
"""

from __future__ import annotations

import socket
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.net import codec
from repro.net.transport import read_frame
from repro.testing.faults import NetFaultPlan

DIRECTIONS = ("c2s", "s2c")


@dataclass
class CapturedFrame:
    """One frame that crossed the proxy, as it arrived (pre-tamper)."""

    direction: str  # "c2s" | "s2c"
    index: int      # global capture order across both directions
    payload: bytes  # un-framed (length prefix stripped)
    method: str = ""  # best-effort decode; "" when not a request

    def summary(self) -> str:
        label = self.method or codec_kind(self.payload)
        return f"#{self.index} {self.direction} {label} ({len(self.payload)}B)"


def codec_kind(payload: bytes) -> str:
    """Best-effort label for a captured payload ("request"/"reply"/?)."""
    try:
        codec.decode_reply(payload)
        return "reply"
    except codec.CodecError:
        pass
    try:
        codec.decode_request_envelope(payload)
        return "request"
    except codec.CodecError:
        return "undecodable"


@dataclass
class InjectionResult:
    """What one injected frame provoked."""

    frame: CapturedFrame
    outcome: str  # "reply" | "error" | "closed" | "timeout"
    reply: Optional[codec.WireReply] = None
    detail: str = ""

    def granted_units(self) -> int:
        """Units the server actually handed out for this injection.

        A wire-level "reply" is not a win for the attacker: a fenced
        or exhausted server answers OK-shaped envelopes whose payload
        grants nothing.  Only ``status OK`` with positive units counts
        as the server *honoring* the stale frame.
        """
        if self.reply is None or self.reply.kind != "response":
            return 0
        payload = self.reply.payload
        status = getattr(payload, "status", None)
        granted = int(getattr(payload, "granted_units", 0) or 0)
        if status is not None and getattr(status, "name", "") != "OK":
            return 0
        return max(0, granted)


class CaptureProxy:
    """Record-and-tamper TCP forwarder for one upstream server.

    Plans are swappable at runtime (:meth:`set_plan`), so a campaign
    can let negotiation and init traffic through clean, then switch
    corruption on for the frames it wants mutilated.
    """

    def __init__(self, upstream_host: str, upstream_port: int,
                 c2s_plan: Optional[NetFaultPlan] = None,
                 s2c_plan: Optional[NetFaultPlan] = None) -> None:
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self._plans: Dict[str, Optional[NetFaultPlan]] = {
            "c2s": c2s_plan, "s2c": s2c_plan,
        }
        self._lock = threading.Lock()
        self.frames: List[CapturedFrame] = []
        self.host = "127.0.0.1"
        self.port = 0
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._conns: List[socket.socket] = []

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "CaptureProxy":
        listener = socket.socket()
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, 0))
        listener.listen(16)
        listener.settimeout(0.25)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="redteam-proxy-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
            self._accept_thread = None

    def __enter__(self) -> "CaptureProxy":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- plans ---------------------------------------------------------
    def set_plan(self, direction: str, plan: Optional[NetFaultPlan]) -> None:
        if direction not in DIRECTIONS:
            raise ValueError(f"direction must be one of {DIRECTIONS}")
        self._plans[direction] = plan

    def plan(self, direction: str) -> Optional[NetFaultPlan]:
        return self._plans[direction]

    # -- capture access ------------------------------------------------
    def captured(self, direction: Optional[str] = None,
                 method: Optional[str] = None) -> List[CapturedFrame]:
        with self._lock:
            frames = list(self.frames)
        if direction is not None:
            frames = [f for f in frames if f.direction == direction]
        if method is not None:
            frames = [f for f in frames if f.method == method]
        return frames

    # -- pumps ---------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stop.is_set():
            try:
                client, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                upstream = socket.create_connection(
                    (self.upstream_host, self.upstream_port), timeout=10
                )
            except OSError:
                client.close()
                continue
            upstream.settimeout(None)
            client.settimeout(None)
            with self._lock:
                self._conns += [client, upstream]
            for src, dst, direction in ((client, upstream, "c2s"),
                                        (upstream, client, "s2c")):
                threading.Thread(
                    target=self._pump, args=(src, dst, direction),
                    name=f"redteam-proxy-{direction}", daemon=True,
                ).start()

    def _pump(self, src: socket.socket, dst: socket.socket,
              direction: str) -> None:
        try:
            while not self._stop.is_set():
                payload = read_frame(src)
                self._record(direction, payload)
                plan = self._plans[direction]
                outs = plan.apply(payload) if plan is not None else [payload]
                for out in outs:
                    dst.sendall(codec.frame(out))
        except (ConnectionError, OSError, codec.CodecError):
            pass
        finally:
            # Half of the pair died: tear both down so neither side
            # blocks forever on a stream that can no longer progress.
            for sock in (src, dst):
                try:
                    sock.close()
                except OSError:
                    pass

    def _record(self, direction: str, payload: bytes) -> None:
        method = ""
        if direction == "c2s":
            try:
                method = codec.decode_request_envelope(payload)[0]
            except codec.CodecError:
                method = ""
        with self._lock:
            frame = CapturedFrame(direction=direction,
                                  index=len(self.frames),
                                  payload=payload, method=method)
            self.frames.append(frame)


def inject_frames(frames: List[CapturedFrame], host: str, port: int,
                  timeout: float = 3.0) -> List[InjectionResult]:
    """Replay captured client→server payloads at ``host:port``.

    One frame at a time, one reply awaited per frame (every lease
    method answers exactly one frame).  A closed connection is
    re-dialed for the next frame — a server that sheds a tampered
    stream must still face the rest of the volley.
    """
    results: List[InjectionResult] = []
    sock: Optional[socket.socket] = None

    def dial() -> Optional[socket.socket]:
        try:
            fresh = socket.create_connection((host, port), timeout=timeout)
            fresh.settimeout(timeout)
            return fresh
        except OSError:
            return None

    for frame in frames:
        if sock is None:
            sock = dial()
            if sock is None:
                results.append(InjectionResult(
                    frame=frame, outcome="closed", detail="dial failed"))
                continue
        try:
            sock.sendall(codec.frame(frame.payload))
            reply_payload = read_frame(sock)
        except socket.timeout:
            results.append(InjectionResult(frame=frame, outcome="timeout"))
            continue
        except (ConnectionError, OSError) as exc:
            results.append(InjectionResult(
                frame=frame, outcome="closed", detail=str(exc)))
            try:
                sock.close()
            except OSError:
                pass
            sock = None
            continue
        try:
            reply = codec.decode_reply(reply_payload)
        except codec.CodecError as exc:
            results.append(InjectionResult(
                frame=frame, outcome="error", detail=f"undecodable: {exc}"))
            continue
        outcome = "error" if reply.kind == "error" else "reply"
        results.append(InjectionResult(
            frame=frame, outcome=outcome, reply=reply,
            detail=reply.error or ""))
    if sock is not None:
        try:
            sock.close()
        except OSError:
            pass
    return results
