"""Invariant auditor: the referee that decides whether the fleet won.

Campaigns attack; this module adjudicates.  After (and during) a
campaign the auditor cross-checks every shard's ledger through the
same ``ledger_probe`` / ``_server_stats`` surfaces operators use, and
hard-fails on any of the three violations the paper's execution-
control story cannot tolerate:

* **double grant** — clients verifiably hold more units of a license
  than the fleet accounts as outstanding-or-forfeited: some unit was
  minted twice (the replication/failover claim broken);
* **resurrected unit** — a shard served state from a rolled-back
  image, un-spending committed grants (the freshness-anchor claim
  broken);
* **stale frame accepted** — a deposed or fenced server honored
  replayed traffic with fresh units (the epoch-fencing claim broken).

Everything else the auditor tracks (conservation per license, typed
tamper rejections vs tampered frames sent) feeds the same report so
``BENCH_redteam.json`` carries one self-contained verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.sim.clock import Clock

ZERO_GATES = ("double_grants", "resurrected_units", "stale_frames_accepted")


@dataclass
class AuditReport:
    """One campaign's verdict; merges across campaigns for the bench."""

    double_grants: int = 0
    resurrected_units: int = 0
    stale_frames_accepted: int = 0
    conservation_violations: int = 0
    tampered_frames_sent: int = 0
    tampered_frames_rejected: int = 0
    renewals_served: int = 0
    failed_calls: int = 0
    licenses_audited: int = 0
    notes: List[str] = field(default_factory=list)

    def note(self, message: str) -> None:
        self.notes.append(message)

    def ok(self) -> bool:
        """True when every zero-gate is zero and conservation held."""
        return (all(getattr(self, gate) == 0 for gate in ZERO_GATES)
                and self.conservation_violations == 0)

    def merge(self, other: "AuditReport") -> "AuditReport":
        for attr in ("double_grants", "resurrected_units",
                     "stale_frames_accepted", "conservation_violations",
                     "tampered_frames_sent", "tampered_frames_rejected",
                     "renewals_served", "failed_calls", "licenses_audited"):
            setattr(self, attr, getattr(self, attr) + getattr(other, attr))
        self.notes.extend(other.notes)
        return self

    def as_dict(self) -> Dict[str, Any]:
        return {
            "double_grants": self.double_grants,
            "resurrected_units": self.resurrected_units,
            "stale_frames_accepted": self.stale_frames_accepted,
            "conservation_violations": self.conservation_violations,
            "tampered_frames_sent": self.tampered_frames_sent,
            "tampered_frames_rejected": self.tampered_frames_rejected,
            "renewals_served": self.renewals_served,
            "failed_calls": self.failed_calls,
            "licenses_audited": self.licenses_audited,
            "notes": list(self.notes),
            "ok": self.ok(),
        }


class InvariantAuditor:
    """Cross-checks a live fleet's books against client-side truth."""

    def __init__(self, url: str) -> None:
        self.url = url

    def probe(self) -> Dict[str, Dict[str, Any]]:
        """Fleet-wide ledger probe through a fresh endpoint."""
        from repro.net.endpoint import connect

        endpoint = connect(self.url)
        try:
            return endpoint.call("ledger_probe", None, clock=Clock())
        finally:
            endpoint.close()

    def audit(self,
              held_by_license: Optional[Dict[str, int]] = None,
              probe: Optional[Dict[str, Dict[str, Any]]] = None,
              report: Optional[AuditReport] = None) -> AuditReport:
        """Conservation + double-grant pass over every license.

        ``held_by_license`` is the client-side truth: units the crowd
        verifiably acquired and never returned (granted − returned,
        from their own logs).  Anything clients hold beyond what the
        fleet books as outstanding-or-lost was minted twice.
        """
        report = report if report is not None else AuditReport()
        probe = probe if probe is not None else self.probe()
        held_by_license = held_by_license or {}
        for license_id in sorted(probe):
            entry = probe[license_id]
            report.licenses_audited += 1
            booked = entry["outstanding"] + entry["lost"] + entry["available"]
            if booked != entry["total"]:
                report.conservation_violations += 1
                report.note(
                    f"{license_id}: conservation broken — "
                    f"outstanding {entry['outstanding']} + lost "
                    f"{entry['lost']} + available {entry['available']} "
                    f"!= total {entry['total']}"
                )
            held = held_by_license.get(license_id, 0)
            covered = entry["outstanding"] + entry["lost"]
            if held > covered:
                report.double_grants += held - covered
                report.note(
                    f"{license_id}: clients hold {held} units but the "
                    f"fleet only accounts {covered} — "
                    f"{held - covered} minted twice"
                )
        return report

    def server_stats(self, host: str, port: int) -> Dict[str, Any]:
        """One server's typed ``_server_stats`` (wire counters, health)."""
        from repro.net.endpoint import connect

        endpoint = connect(f"sl://{host}:{port}")
        try:
            return endpoint.call("_server_stats", None, clock=Clock())
        finally:
            endpoint.close()
