"""Red-team harness: adversarial campaigns against the live fleet.

The defensive claims this repository accumulates — epoch-fenced
failover, sealed WALs, pessimistic crash forfeiture, freshness
anchors, typed tamper rejection — are only claims until something
actually *attacks* a running fleet over real sockets and loses.  This
package is that something:

* :mod:`~repro.redteam.proxy` — a capture/replay wire proxy: records
  every v1/v2/v3 frame crossing it, tampers traffic in flight through
  a :class:`~repro.testing.faults.NetFaultPlan`, and re-injects
  captured frames at arbitrary servers (replay across failover).

* :mod:`~repro.redteam.fleet` — subprocess fleet under test: spawns
  real ``serve-remote`` processes with replication, durability, and
  freshness anchors; kills, revives, and swaps their data
  directories for stale copies.

* :mod:`~repro.redteam.campaigns` — scripted multi-step adversaries:
  the headline replay-rollback-tamper campaign, deposed-primary
  resurrection, and the crash/coalesced-batch race.

* :mod:`~repro.redteam.audit` — the invariant auditor that decides
  who won: conservation per license, zero double-grants, zero
  resurrected units, zero stale frames accepted, every tampered
  frame mapped to a typed rejection.

Run it: ``python -m repro.cli redteam`` (see the CLI), or through
``benchmarks/test_redteam.py`` which persists ``BENCH_redteam.json``
for CI's zero-gates.
"""

from repro.redteam.audit import AuditReport, InvariantAuditor
from repro.redteam.proxy import CapturedFrame, CaptureProxy, inject_frames

__all__ = [
    "AuditReport",
    "InvariantAuditor",
    "CapturedFrame",
    "CaptureProxy",
    "inject_frames",
]
