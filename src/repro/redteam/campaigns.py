"""Scripted adversarial campaigns against a live fleet.

Each campaign is a multi-step attack played against real
``serve-remote`` processes over real sockets, with the
:class:`~repro.redteam.audit.InvariantAuditor` adjudicating at the
end.  The three shipped campaigns map to the defense claims they
pressure:

* :func:`campaign_headline` — the full kill chain: capture a victim
  shard's renewal traffic through the wire tap, photograph its data
  directory mid-load, SIGKILL it, replay the captured frames across
  the epoch-fenced promotion, tamper live frames both directions
  (expecting one typed rejection per tampered frame), then restore
  the stale photo and revive — the freshness anchor must refuse the
  rolled-back image outright.

* :func:`campaign_deposed_primary` — resurrection: kill a primary,
  let the fleet promote past it, revive it from its own (intact)
  disk, wait until its followers' fencing is visible in its own
  stats, then replay captured renewals at it.  A deposed primary
  must not hand out a single fresh unit.

* :func:`campaign_batch_race` — crash-forfeiture raced against
  in-flight coalesced renewal batches: clients renew through
  ``batch_window`` coalescers while a primary dies mid-batch; the
  group-committed WAL plus pessimistic forfeiture must keep
  conservation exact with zero double-grants.

Campaigns never reach into server memory: every observation rides
``ledger_probe``, ``replication_probe``, ``_server_stats``, stdout
markers, or the wire itself.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.protocol import InitRequest, RenewRequest, Status
from repro.net.endpoint import connect
from repro.net.errors import TamperedFrame
from repro.net.rpc import RpcError
from repro.redteam.audit import AuditReport, InvariantAuditor
from repro.redteam.fleet import FleetHarness
from repro.redteam.proxy import CaptureProxy, inject_frames
from repro.sgx import SgxMachine
from repro.sim.clock import Clock
from repro.testing.faults import NetFaultPlan

CAMPAIGN_NAMES = ("headline", "deposed-primary", "batch-race")


@dataclass
class CampaignResult:
    """One campaign's verdict plus the numbers behind it."""

    name: str
    audit: AuditReport
    details: Dict[str, Any] = field(default_factory=dict)


def _quiet(_message: str) -> None:
    return None


def _blob_for(license_id: str) -> bytes:
    from repro.core.licensefile import VENDOR_SECRET, mint_license_blob

    return mint_license_blob(license_id, VENDOR_SECRET)


# ----------------------------------------------------------------------
# Client crowd (the honest background load every campaign attacks under)
# ----------------------------------------------------------------------
class ClientLog:
    """One client thread's whole story, merged by the campaign."""

    def __init__(self) -> None:
        self.successes: List[Any] = []   # (monotonic_ts, license_id, units)
        self.granted: Dict[str, int] = {}
        self.returned: Dict[str, int] = {}
        self.exhausted = 0
        self.failure: Optional[BaseException] = None


class Crowd:
    """Renew/return loops against one endpoint URL until told to stop."""

    def __init__(self, url: str, clients: int, licenses: int,
                 label: str = "crowd") -> None:
        self.url = url
        self.licenses = licenses
        self.label = label
        self.logs = [ClientLog() for _ in range(clients)]
        self._stop = threading.Event()
        self._started = threading.Event()
        self._threads: List[threading.Thread] = []

    def start(self) -> "Crowd":
        blobs = {f"lic-{i}": _blob_for(f"lic-{i}")
                 for i in range(self.licenses)}

        def client(index: int, log: ClientLog) -> None:
            license_id = f"lic-{index % self.licenses}"
            machine = SgxMachine(f"{self.label}-{index}")
            endpoint = connect(self.url)
            try:
                report = machine.local_authority.generate_report(1, 1,
                                                                 nonce=1)
                slid = endpoint.call(
                    "init",
                    InitRequest(slid=None, report=report,
                                platform_secret=machine.platform_secret),
                    clock=machine.clock, stats=machine.stats,
                ).slid
                self._started.wait()
                while not self._stop.is_set():
                    renewal = endpoint.call(
                        "renew",
                        RenewRequest(slid=slid, license_id=license_id,
                                     license_blob=blobs[license_id],
                                     network_reliability=1.0, health=1.0),
                        clock=machine.clock,
                    )
                    if renewal.status is Status.OK:
                        log.successes.append((time.monotonic(), license_id,
                                              renewal.granted_units))
                        log.granted[license_id] = (
                            log.granted.get(license_id, 0)
                            + renewal.granted_units
                        )
                        returned = endpoint.call(
                            "return_units",
                            (slid, license_id, renewal.granted_units),
                            clock=machine.clock,
                        )
                        if returned is Status.OK:
                            log.returned[license_id] = (
                                log.returned.get(license_id, 0)
                                + renewal.granted_units
                            )
                    elif renewal.status is Status.EXHAUSTED:
                        # Replication backpressure / fenced headroom:
                        # not an error, the client just retries.
                        log.exhausted += 1
                    else:
                        raise AssertionError(
                            f"renew answered {renewal.status}"
                        )
                    time.sleep(0.01)
            except BaseException as exc:  # noqa: BLE001 - audited later
                log.failure = exc
            finally:
                endpoint.close()

        self._threads = [
            threading.Thread(target=client, args=(index, log),
                             name=f"redteam-{self.label}-{index}",
                             daemon=True)
            for index, log in enumerate(self.logs)
        ]
        for thread in self._threads:
            thread.start()
        self._started.set()
        return self

    def stop(self, timeout: float = 120.0) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout)

    def held(self) -> Dict[str, int]:
        """Units the crowd verifiably acquired and never returned."""
        totals: Dict[str, int] = {}
        for log in self.logs:
            for license_id, units in log.granted.items():
                totals[license_id] = totals.get(license_id, 0) + units
            for license_id, units in log.returned.items():
                totals[license_id] = totals.get(license_id, 0) - units
        return totals

    def failures(self) -> List[BaseException]:
        return [log.failure for log in self.logs if log.failure is not None]

    def renewals(self) -> int:
        return sum(len(log.successes) for log in self.logs)

    def exhausted(self) -> int:
        return sum(log.exhausted for log in self.logs)


def merge_held(*crowds: Crowd) -> Dict[str, int]:
    totals: Dict[str, int] = {}
    for crowd in crowds:
        for license_id, units in crowd.held().items():
            totals[license_id] = totals.get(license_id, 0) + units
    return totals


def _find_counter(snapshot: Any, key: str) -> int:
    """Recursively sum every occurrence of ``key`` in a stats dict."""
    total = 0
    if isinstance(snapshot, dict):
        for name, value in snapshot.items():
            if name == key and isinstance(value, int):
                total += value
            else:
                total += _find_counter(value, key)
    elif isinstance(snapshot, (list, tuple)):
        for value in snapshot:
            total += _find_counter(value, key)
    return total


# ----------------------------------------------------------------------
# Campaign 1: the headline kill chain
# ----------------------------------------------------------------------
def campaign_headline(base_dir: str, smoke: bool = False,
                      log: Callable[[str], None] = _quiet) -> CampaignResult:
    clients = 4 if smoke else 8
    licenses = 3
    warmup = 1.2 if smoke else 2.0
    ripen = 0.8 if smoke else 1.2     # between the photo and the kill
    chaos = 1.8 if smoke else 2.5
    tamper_rounds = 2 if smoke else 4

    report = AuditReport()
    details: Dict[str, Any] = {"campaign": "headline"}
    fleet = FleetHarness(base_dir, shards=3, replicas=2, licenses=licenses)
    with fleet:
        victim = fleet.owner_of("lic-0")
        successor = fleet.successors_of("lic-0", 1)[0]
        details["victim"] = victim
        details["promoted_successor"] = successor
        log(f"fleet up; victim {victim} owns lic-0, successor {successor}")

        with CaptureProxy(fleet.host, fleet.port_of(victim)) as proxy:
            crowd = Crowd(fleet.url(), clients, licenses).start()
            # The bait client reaches the victim only through the tap,
            # so every one of its frames is captured for replay.
            bait = Crowd(fleet.proxied_url(victim, proxy.port),
                         1, 1, label="bait").start()
            time.sleep(warmup)

            # Step 1: photograph the victim's ledger mid-load — the
            # stale image the rollback will try to serve later.
            staging = fleet.snapshot_data_dir(victim)
            log(f"photographed {victim}'s data dir -> {staging}")
            time.sleep(ripen)  # committed seqs move past the photo

            # Step 2: SIGKILL the victim mid-traffic.  The tap dies
            # with it — a listening proxy in front of a dead upstream
            # would answer accept-then-reset, which burns the bait
            # client's retry budget instead of giving its router the
            # dial failure that triggers promotion.
            fleet.kill(victim)
            proxy.stop()
            log(f"SIGKILLed {victim}")
            time.sleep(chaos)  # routers promote; crowd keeps renewing

            # Step 3: replay the captured renewal traffic across the
            # promotion.  The promoted successor is the legitimate
            # primary now — whatever it serves must stay conserved; a
            # fenced or unknown ledger must not grant.
            renew_frames = proxy.captured("c2s", method="renew")
            injections = inject_frames(renew_frames, fleet.host,
                                       fleet.port_of(successor))
            replay_granted = sum(r.granted_units() for r in injections)
            details["replayed_frames"] = len(renew_frames)
            details["replay_outcomes"] = {
                outcome: sum(1 for r in injections if r.outcome == outcome)
                for outcome in ("reply", "error", "closed", "timeout")
            }
            details["replay_granted_units"] = replay_granted
            log(f"replayed {len(renew_frames)} captured renew frames at "
                f"{successor}: {details['replay_outcomes']}")

            crowd.stop()
            bait.stop()

        # Step 4: tamper live frames both directions against a healthy
        # shard; every mutilated frame must map to a typed rejection.
        target = next(
            (lic for lic in fleet.license_ids()
             if fleet.owner_of(lic) != victim), None
        )
        if target is not None:
            tampered = _tamper_phase(fleet, fleet.owner_of(target), target,
                                     rounds=tamper_rounds, log=log)
            report.tampered_frames_sent += tampered["sent"]
            report.tampered_frames_rejected += tampered["rejected"]
            details["tamper"] = tampered

        # Step 5: the rollback.  Swap the victim's disk for the stale
        # photo and revive; the freshness anchor (which kept ratcheting
        # after the photo, and lives outside the data dir) must refuse.
        fleet.restore_data_dir(victim, staging)
        revival = fleet.revive(victim)
        details["rollback_refused"] = revival.refused
        details["rollback_marker"] = revival.marker
        details["rollback_exit"] = revival.returncode
        if revival.refused:
            log(f"rollback refused: {revival.marker}")
        else:
            # The defense failed: the shard is serving a rolled-back
            # ledger.  Count what it resurrected so the gate trips.
            resurrected = _count_resurrection(fleet, victim)
            report.resurrected_units += resurrected
            report.note(
                f"{victim} served a stale image and resurrected "
                f"{resurrected} unit(s)"
            )
            fleet.kill(victim)

        # Step 6: the final audit over the surviving fleet.
        auditor = InvariantAuditor(fleet.url())
        report.renewals_served = crowd.renewals() + bait.renewals()
        report.failed_calls = len(crowd.failures()) + len(bait.failures())
        for failure in (crowd.failures() + bait.failures())[:3]:
            report.note(f"client failure: {failure!r}")
        auditor.audit(held_by_license=merge_held(crowd, bait),
                      report=report)
        stats = auditor.server_stats(fleet.host, fleet.port_of(successor))
        details["successor_frames_rejected"] = _find_counter(
            stats, "frames_rejected"
        )
        details["backpressure_exhausted"] = (crowd.exhausted()
                                             + bait.exhausted())
    return CampaignResult(name="headline", audit=report, details=details)


def _tamper_phase(fleet: FleetHarness, target: str, license_id: str,
                  rounds: int,
                  log: Callable[[str], None]) -> Dict[str, Any]:
    """Corrupt live frames both directions through a tampering tap.

    Client→server corruption must surface as the server's typed
    ``CodecError`` rejection (an error envelope, counted in its
    ``frames_rejected``); server→client corruption must surface as the
    transport's :class:`~repro.net.errors.TamperedFrame` — and in
    both cases the *next* clean call must succeed, proving the stream
    was shed or resynchronized rather than silently retried.
    """
    sent = 0
    rejected = 0
    outcomes: List[str] = []
    with CaptureProxy(fleet.host, fleet.port_of(target)) as tap:
        machine = SgxMachine("tamper-client")
        endpoint = connect(f"sl://{tap.host}:{tap.port}"
                           f"?timeout=5&max_attempts=2"
                           f"&reconnect_attempts=2&reconnect_backoff=0.05")
        try:
            report = machine.local_authority.generate_report(1, 1, nonce=1)
            slid = endpoint.call(
                "init",
                InitRequest(slid=None, report=report,
                            platform_secret=machine.platform_secret),
                clock=machine.clock, stats=machine.stats,
            ).slid
            blob = _blob_for(license_id)

            def renew() -> Any:
                return endpoint.call(
                    "renew",
                    RenewRequest(slid=slid, license_id=license_id,
                                 license_blob=blob,
                                 network_reliability=1.0, health=1.0),
                    clock=machine.clock,
                )

            for direction in ("c2s", "s2c"):
                for _ in range(rounds):
                    renew()  # clean call: session established, in sync
                    tap.set_plan(direction, NetFaultPlan(corrupt_nth=1))
                    sent += 1
                    try:
                        renew()
                        outcomes.append(f"{direction}:accepted")
                    except RpcError as exc:
                        cause = exc.__cause__
                        if isinstance(cause, TamperedFrame):
                            rejected += 1
                            outcomes.append(f"{direction}:TamperedFrame")
                        elif "CodecError" in str(exc):
                            rejected += 1
                            outcomes.append(f"{direction}:CodecError")
                        else:
                            outcomes.append(f"{direction}:{exc}")
                    finally:
                        tap.set_plan(direction, None)
            renew()  # the stream survives the whole gauntlet
        finally:
            endpoint.close()
    log(f"tamper phase at {target}: {sent} frames mutilated, "
        f"{rejected} typed rejections")
    return {"target": target, "license": license_id, "sent": sent,
            "rejected": rejected, "outcomes": outcomes}


def _count_resurrection(fleet: FleetHarness, victim: str) -> int:
    """Units a stale-image shard un-spent (the defense-failed path)."""
    try:
        endpoint = connect(f"sl://{fleet.host}:{fleet.port_of(victim)}")
        try:
            probe = endpoint.call("ledger_probe", None, clock=Clock())
        finally:
            endpoint.close()
    except Exception:
        return 1  # serving but unprobeable: still a broken defense
    resurrected = 0
    for entry in probe.values():
        # A freshly rolled-back ledger shows spent units as available
        # again; without the true books to diff against, every unit it
        # claims available beyond zero outstanding counts as suspect.
        resurrected += max(0, entry["total"] - entry["outstanding"]
                           - entry["lost"] - entry["available"])
    return max(1, resurrected)


# ----------------------------------------------------------------------
# Campaign 2: deposed-primary resurrection
# ----------------------------------------------------------------------
def campaign_deposed_primary(base_dir: str, smoke: bool = False,
                             log: Callable[[str], None] = _quiet,
                             ) -> CampaignResult:
    clients = 4 if smoke else 8
    licenses = 3
    warmup = 1.2 if smoke else 2.0
    chaos = 1.8 if smoke else 2.5
    fence_wait = 10.0

    report = AuditReport()
    details: Dict[str, Any] = {"campaign": "deposed-primary"}
    fleet = FleetHarness(base_dir, shards=3, replicas=2, licenses=licenses)
    with fleet:
        victim = fleet.owner_of("lic-0")
        details["victim"] = victim
        with CaptureProxy(fleet.host, fleet.port_of(victim)) as proxy:
            crowd = Crowd(fleet.url(), clients, licenses).start()
            bait = Crowd(fleet.proxied_url(victim, proxy.port),
                         1, 1, label="bait").start()
            time.sleep(warmup)
            fleet.kill(victim)
            proxy.stop()  # dead upstream: give routers the dial failure
            log(f"SIGKILLed {victim}")
            time.sleep(chaos)  # the fleet promotes past the victim
            renew_frames = proxy.captured("c2s", method="renew")
            crowd.stop()
            bait.stop()

        # Resurrect the deposed primary from its own intact disk: the
        # anchor passes (nothing stale), it recovers and serves again —
        # but its followers fenced its epoch when promotion happened.
        revival = fleet.revive(victim)
        assert not revival.refused, (
            "an intact image must not trip the anchor: "
            + revival.marker
        )
        log(f"revived {victim} from its own disk")

        # Wait until the resurrected primary has *learned* it is
        # deposed — its own replication stats show a follower fencing
        # it (anti-entropy lands this within its 0.5 s interval).
        fenced = _wait_for_fence(fleet, victim, timeout=fence_wait)
        details["fence_visible"] = fenced
        if not fenced:
            report.note(
                f"{victim} never observed its fencing within "
                f"{fence_wait}s; injecting anyway"
            )

        # Replay the captured pre-death renewals at the deposed
        # primary.  Every unit it grants now is a stale frame honored.
        injections = inject_frames(renew_frames, fleet.host,
                                   fleet.port_of(victim))
        accepted_units = sum(r.granted_units() for r in injections)
        report.stale_frames_accepted += sum(
            1 for r in injections if r.granted_units() > 0
        )
        details["replayed_frames"] = len(renew_frames)
        details["stale_units_granted"] = accepted_units
        details["replay_outcomes"] = {
            outcome: sum(1 for r in injections if r.outcome == outcome)
            for outcome in ("reply", "error", "closed", "timeout")
        }
        log(f"replayed {len(renew_frames)} frames at deposed {victim}: "
            f"{accepted_units} unit(s) granted")

        report.renewals_served = crowd.renewals() + bait.renewals()
        report.failed_calls = len(crowd.failures()) + len(bait.failures())
        for failure in (crowd.failures() + bait.failures())[:3]:
            report.note(f"client failure: {failure!r}")
        # Audit through the promoted fleet view (the books that count).
        InvariantAuditor(fleet.url()).audit(
            held_by_license=merge_held(crowd, bait), report=report
        )
        details["backpressure_exhausted"] = (crowd.exhausted()
                                             + bait.exhausted())
    return CampaignResult(name="deposed-primary", audit=report,
                          details=details)


def _wait_for_fence(fleet: FleetHarness, name: str,
                    timeout: float) -> bool:
    """Poll a shard's own replication probe until a peer has fenced it."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            endpoint = connect(f"sl://{fleet.host}:{fleet.port_of(name)}")
            try:
                probe = endpoint.call("replication_probe", None,
                                      clock=Clock())
            finally:
                endpoint.close()
        except Exception:
            time.sleep(0.2)
            continue
        fenced = (probe.get("replicates") or {}).get("fenced") or {}
        if fenced:
            return True
        time.sleep(0.2)
    return False


# ----------------------------------------------------------------------
# Campaign 3: crash forfeiture vs in-flight coalesced batches
# ----------------------------------------------------------------------
def campaign_batch_race(base_dir: str, smoke: bool = False,
                        log: Callable[[str], None] = _quiet,
                        ) -> CampaignResult:
    clients = 6 if smoke else 12
    licenses = 3
    warmup = 1.2 if smoke else 2.0
    chaos = 1.8 if smoke else 2.5

    report = AuditReport()
    details: Dict[str, Any] = {"campaign": "batch-race"}
    fleet = FleetHarness(base_dir, shards=3, replicas=2, licenses=licenses)
    with fleet:
        victim = fleet.owner_of("lic-0")
        details["victim"] = victim
        # Coalescing on: concurrent renewals ride shared batch frames,
        # so the SIGKILL lands mid-batch for somebody.
        url = fleet.url(batch_window=0.005)
        crowd = Crowd(url, clients, licenses).start()
        time.sleep(warmup)
        fleet.kill(victim)
        log(f"SIGKILLed {victim} under coalesced batch load")
        time.sleep(chaos)
        crowd.stop()

        report.renewals_served = crowd.renewals()
        report.failed_calls = len(crowd.failures())
        for failure in crowd.failures()[:3]:
            report.note(f"client failure: {failure!r}")
        InvariantAuditor(fleet.url()).audit(
            held_by_license=crowd.held(), report=report
        )
        details["backpressure_exhausted"] = crowd.exhausted()
    return CampaignResult(name="batch-race", audit=report, details=details)


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
_CAMPAIGNS: Dict[str, Callable[..., CampaignResult]] = {
    "headline": campaign_headline,
    "deposed-primary": campaign_deposed_primary,
    "batch-race": campaign_batch_race,
}


def run_campaign(name: str, base_dir: str, smoke: bool = False,
                 log: Callable[[str], None] = _quiet) -> CampaignResult:
    try:
        runner = _CAMPAIGNS[name]
    except KeyError:
        raise ValueError(
            f"unknown campaign {name!r}; choose from {CAMPAIGN_NAMES}"
        ) from None
    return runner(os.path.join(base_dir, name.replace("-", "_")),
                  smoke=smoke, log=log)


def run_campaigns(base_dir: str, names: Optional[List[str]] = None,
                  smoke: bool = False,
                  log: Callable[[str], None] = _quiet,
                  ) -> List[CampaignResult]:
    return [run_campaign(name, base_dir, smoke=smoke, log=log)
            for name in (names or list(CAMPAIGN_NAMES))]
