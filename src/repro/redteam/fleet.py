"""Subprocess fleet under attack: spawn, kill, revive, swap disks.

The campaigns need a *real* fleet — separate ``serve-remote``
processes with replication, WAL durability, and freshness anchors —
plus the levers an adversary with host access actually has: SIGKILL a
process, copy its data directory while it runs, put the stale copy
back, restart the binary.  :class:`FleetHarness` packages exactly
those levers around the same CLI the operators use, waiting on the
same stdout markers (``SL-Remote listening on``, ``SL-Recovery``,
``SL-Anchor``) the other process harnesses already parse.

Deliberately *not* here: anything that reaches into a server's memory
or imports its modules.  The harness only touches what the threat
model grants — the network and the data directory.
"""

from __future__ import annotations

import os
import shutil
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net.sharding import HashRing, default_shard_names

LISTEN_MARKER = "SL-Remote listening on "
ANCHOR_MARKER = "SL-Anchor "
RECOVERY_MARKER = "SL-Recovery "
ANCHOR_REFUSED_EXIT = 3


def free_ports(count: int) -> List[int]:
    """Reserve ``count`` distinct ephemeral ports (bind, read, close).

    Every fleet member's address must be known before any member
    starts (``--fleet`` wires all peers), so ``--port 0`` is not an
    option; holding all sockets open until every port is read keeps
    the kernel from handing one out twice.
    """
    sockets = []
    try:
        for _ in range(count):
            sock = socket.socket()
            sock.bind(("127.0.0.1", 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


@dataclass
class SpawnResult:
    """How one serve-remote start attempt ended."""

    process: Optional[subprocess.Popen]
    refused: bool = False
    marker: str = ""           # the SL-Anchor refusal line, if any
    returncode: Optional[int] = None
    startup_lines: List[str] = field(default_factory=list)


class FleetHarness:
    """One N-shard ``serve-remote`` fleet plus the attacker's levers."""

    def __init__(
        self,
        base_dir: str,
        shards: int = 3,
        replicas: int = 2,
        licenses: int = 3,
        pool: int = 10**9,
        lag_budget: int = 128,
        lag_grants: int = 4,
        durable: bool = True,
        anchors: bool = True,
    ) -> None:
        self.base_dir = base_dir
        self.shards = shards
        self.replicas = replicas
        self.licenses = licenses
        self.pool = pool
        self.lag_budget = lag_budget
        self.lag_grants = lag_grants
        self.durable = durable
        self.anchors = anchors and durable
        self.names = default_shard_names(shards)
        self.ring = HashRing(self.names)
        self.ports: List[int] = []
        self.processes: Dict[str, Optional[subprocess.Popen]] = {}
        self.data_dir = os.path.join(base_dir, "data")
        self.anchor_dir = os.path.join(base_dir, "anchors")
        self.host = "127.0.0.1"
        self._repo_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))))

    # -- addressing ----------------------------------------------------
    def port_of(self, name: str) -> int:
        return self.ports[self.names.index(name)]

    def license_ids(self) -> List[str]:
        return [f"lic-{index}" for index in range(self.licenses)]

    def owner_of(self, license_id: str) -> str:
        return self.ring.shard_for(license_id)

    def successors_of(self, license_id: str, count: int = 1) -> List[str]:
        return self.ring.owners(license_id, count + 1)[1:]

    def url(self, ports: Optional[List[int]] = None, **params) -> str:
        authority = ",".join(f"{self.host}:{port}"
                             for port in (ports or self.ports))
        defaults = {"replicas": self.replicas, "timeout": 10,
                    "max_attempts": 3, "reconnect_attempts": 2,
                    "reconnect_backoff": 0.05}
        defaults.update(params)
        query = "&".join(f"{key}={value}"
                         for key, value in defaults.items())
        return f"sl+sharded://{authority}?{query}"

    def proxied_url(self, name: str, proxy_port: int, **params) -> str:
        """The fleet URL with ``name``'s address swapped for a proxy —
        the router keeps its shard mapping (addresses are positional)
        but every frame for that shard now crosses the tap."""
        ports = list(self.ports)
        ports[self.names.index(name)] = proxy_port
        return self.url(ports=ports, **params)

    # -- lifecycle -----------------------------------------------------
    def _command(self, name: str) -> List[str]:
        index = self.names.index(name)
        fleet = ",".join(f"{peer}={self.host}:{port}"
                         for peer, port in zip(self.names, self.ports))
        command = [
            "serve-remote", "--port", str(self.port_of(name)),
            "--accept-any-platform",
            "--shard-of", f"{index}:{self.shards}",
        ]
        for license_id in self.license_ids():
            command += ["--license", f"{license_id}:{self.pool}"]
        if self.replicas:
            command += ["--replicas", str(self.replicas), "--fleet", fleet,
                        "--lag-budget", str(self.lag_budget),
                        "--lag-grants", str(self.lag_grants)]
        if self.durable:
            command += ["--data-dir", self.data_dir]
        if self.anchors:
            command += ["--anchor-dir", self.anchor_dir]
        return command

    def spawn(self, name: str, timeout: float = 30.0) -> SpawnResult:
        """Start one shard; wait for listening OR anchor refusal.

        A refusal (``SL-Anchor`` marker, exit 3) is a *successful
        defense*, not a harness failure: the result reports it so the
        campaign can count zero resurrected units.
        """
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(self._repo_root, "src")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", *self._command(name)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        lines: List[str] = []
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            line = process.stdout.readline()
            if not line:
                break  # EOF: the process exited before listening
            lines.append(line.rstrip("\n"))
            if line.startswith(LISTEN_MARKER):
                self.processes[name] = process
                return SpawnResult(process=process, startup_lines=lines)
            if line.startswith(ANCHOR_MARKER):
                returncode = process.wait(timeout=10)
                self.processes[name] = None
                return SpawnResult(process=None, refused=True,
                                   marker=line.rstrip("\n"),
                                   returncode=returncode,
                                   startup_lines=lines)
        process.kill()
        raise RuntimeError(
            f"shard {name!r} never reported listening; startup said: "
            + " | ".join(lines[-5:])
        )

    def start(self) -> "FleetHarness":
        self.ports = free_ports(self.shards)
        try:
            for name in self.names:
                self.spawn(name)
        except Exception:
            self.stop()
            raise
        return self

    def kill(self, name: str) -> None:
        """SIGKILL: no goodbye frames, no final fsync, no anchor ratchet."""
        process = self.processes.get(name)
        if process is not None:
            process.kill()
            process.wait(timeout=10)
            self.processes[name] = None

    def revive(self, name: str, timeout: float = 30.0) -> SpawnResult:
        """Restart a dead shard against whatever its disk now holds."""
        if self.processes.get(name) is not None:
            raise RuntimeError(f"shard {name!r} is still running")
        return self.spawn(name, timeout=timeout)

    def stop(self) -> None:
        processes = [p for p in self.processes.values() if p is not None]
        self.processes = {}
        for process in processes:
            process.terminate()
        for process in processes:
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()

    def __enter__(self) -> "FleetHarness":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- the attacker's disk levers ------------------------------------
    def shard_data_dir(self, name: str) -> str:
        return os.path.join(self.data_dir, name)

    def snapshot_data_dir(self, name: str, label: str = "stale") -> str:
        """Copy a shard's data directory while it runs (the attacker
        photographing the ledger); returns the staging path.  A copy
        racing live appends may catch a torn tail — which is exactly
        what a real exfiltrated image looks like, and recovery's
        torn-tail handling is part of what the campaign exercises."""
        staging = os.path.join(self.base_dir, f"{label}-{name}")
        if os.path.exists(staging):
            shutil.rmtree(staging)
        shutil.copytree(self.shard_data_dir(name), staging)
        return staging

    def restore_data_dir(self, name: str, staging: str) -> None:
        """Swap the shard's current disk for the stale copy (the shard
        must be dead; a live one holds the WAL open)."""
        if self.processes.get(name) is not None:
            raise RuntimeError(
                f"refusing to swap {name!r}'s disk while it runs"
            )
        target = self.shard_data_dir(name)
        if os.path.exists(target):
            shutil.rmtree(target)
        shutil.copytree(staging, target)
