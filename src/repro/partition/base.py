"""Common partitioning types.

A :class:`Partition` is the output every scheme produces: the set of
migrated (trusted) functions plus derived placement and budget
estimates.  :class:`Partitioner` is the strategy interface.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.callgraph.cfg import CallGraph
from repro.vcpu.machine import Placement
from repro.vcpu.program import Program
from repro.vcpu.tracer import CallProfile


@dataclass
class Partition:
    """Result of partitioning one application."""

    scheme: str
    program_name: str
    trusted: Set[str] = field(default_factory=set)
    #: The partitioner's own estimate of the enclave heap it needs
    #: (stated upfront at enclave build time, Section 4.2.1).
    estimated_memory_bytes: int = 0

    def placement(self, program: Program) -> Dict[str, Placement]:
        """Per-function placement map for the vCPU."""
        mapping: Dict[str, Placement] = {}
        for name in program.functions:
            mapping[name] = (
                Placement.TRUSTED if name in self.trusted else Placement.UNTRUSTED
            )
        return mapping

    def static_coverage_bytes(self, graph: CallGraph) -> int:
        return graph.code_bytes(self.trusted)

    def dynamic_coverage(self, profile: CallProfile) -> float:
        return profile.dynamic_coverage_of(self.trusted)

    def boundary_calls(self, profile: CallProfile) -> "tuple[int, int]":
        return profile.cross_partition_calls(self.trusted)


class Partitioner(abc.ABC):
    """Strategy interface for all partitioning schemes."""

    name: str = "abstract"

    @abc.abstractmethod
    def partition(self, program: Program, graph: CallGraph,
                  profile: CallProfile) -> Partition:
        """Decide which functions migrate to SGX."""


def trusted_working_set(program: Program, graph: CallGraph,
                        trusted: Set[str]) -> int:
    """Enclave-resident bytes for a trusted set: code + enclosed regions.

    A data region moves into the enclave only when *every* accessor is
    trusted (shared data stays untrusted, Section 4.2.1); it then
    contributes its full declared size.  Both the partitioners (budget
    checks against ``m_t``) and the evaluator (EPC pressure) price
    memory this way, so the budget a partitioner respects is exactly
    the working set it is charged for.
    """
    if not trusted:
        return 0
    code = graph.code_bytes(trusted)
    region_accessors: Dict[str, Set[str]] = {}
    for spec in program.functions.values():
        for region_name, _ in spec.regions:
            region_accessors.setdefault(region_name, set()).add(spec.name)
    data = 0
    for region_name, accessors in region_accessors.items():
        if accessors and accessors <= trusted:
            data += program.data_regions[region_name].size_bytes
    return code + data
