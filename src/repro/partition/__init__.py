"""Application partitioning: SecureLease's scheme and the two baselines.

Given a program, its call-graph profile, and an SGX budget, a
partitioner decides which functions migrate into the enclave:

* :mod:`repro.partition.securelease` — the paper's dependency-based
  scheme (Section 4.2.1): K-means clusters of the CFG are migrated
  whole, smallest-memory first, under the EPC budget ``m_t`` and the
  overhead budget ``r_t``; the authentication module always migrates.
* :mod:`repro.partition.glamdring` — the data-flow baseline: everything
  reachable from sensitive data migrates (Lind et al., ATC '17).
* :mod:`repro.partition.flaas` — the out-degree baseline: functions
  making the most calls migrate (Kumar et al., SCC '19), which shreds
  clusters and produces pathological ECALL counts.
* :mod:`repro.partition.evaluator` — replays a profile against a
  partition on the SGX cost model and reports Table 5's metrics.
"""

from repro.partition.base import Partition, Partitioner
from repro.partition.securelease import SecureLeasePartitioner
from repro.partition.glamdring import GlamdringPartitioner
from repro.partition.flaas import FlaasPartitioner
from repro.partition.evaluator import PartitionCostReport, PartitionEvaluator

__all__ = [
    "FlaasPartitioner",
    "GlamdringPartitioner",
    "Partition",
    "PartitionCostReport",
    "PartitionEvaluator",
    "Partitioner",
    "SecureLeasePartitioner",
]
