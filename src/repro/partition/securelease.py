"""SecureLease's dependency-based partitioning (Section 4.2.1).

The algorithm:

1. Cluster the CFG with K-means (spectral embedding + Lloyd iterations)
   to recover the application's submodules.
2. Always migrate the authentication module.
3. Consider candidate clusters — those containing developer-annotated
   key functions first (the protected region), then remaining clusters
   by "importance" (call volume) — and sort them by memory requirement,
   smallest first.
4. Greedily add whole clusters while (a) total memory stays below the
   budget ``m_t`` (default: the 92 MB EPC, per Hasan et al.'s
   negligible-overhead regime) and (b) the estimated overhead from the
   added boundary crossings stays below ``r_t``.
5. Common data structures (regions shared with untrusted functions)
   stay untrusted — the vCPU derives that automatically from placement.

Migrating whole clusters is the load-bearing idea: intra-cluster call
volume dwarfs inter-cluster volume, so whole-cluster moves add almost
no ECALLs/OCALLs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.callgraph.cfg import CallGraph
from repro.callgraph.clustering import Clustering, cluster_call_graph
from repro.partition.base import Partition, Partitioner, trusted_working_set
from repro.sgx.costs import EPC_SIZE_BYTES, SgxCostModel
from repro.sim.rng import DeterministicRng
from repro.vcpu.program import Program
from repro.vcpu.tracer import CallProfile


@dataclass(frozen=True)
class SecureLeaseBudget:
    """The two thresholds of Section 4.2.1."""

    #: m_t — enclave memory budget; default is the EPC size, the point
    #: past which faults start (Hasan et al.).
    memory_bytes: int = EPC_SIZE_BYTES
    #: r_t — acceptable overhead from boundary crossings, as a fraction
    #: of the profiled vanilla runtime.
    overhead_fraction: float = 0.50


class SecureLeasePartitioner(Partitioner):
    """Cluster-then-greedily-migrate, under memory and overhead budgets."""

    name = "securelease"

    def __init__(
        self,
        k: Optional[int] = None,
        budget: Optional[SecureLeaseBudget] = None,
        costs: Optional[SgxCostModel] = None,
        rng: Optional[DeterministicRng] = None,
    ) -> None:
        self.k = k
        self.budget = budget if budget is not None else SecureLeaseBudget()
        self.costs = costs if costs is not None else SgxCostModel()
        self.rng = rng if rng is not None else DeterministicRng(7)
        #: Exposed for inspection/Figure 7: the last clustering computed.
        self.last_clustering: Optional[Clustering] = None

    def partition(self, program: Program, graph: CallGraph,
                  profile: CallProfile) -> Partition:
        k = self.k if self.k is not None else self._default_k(program)
        clustering = cluster_call_graph(graph, k=k, rng=self.rng.fork("kmeans"))
        self.last_clustering = clustering

        # The AM always migrates — it is the thing being protected.
        auth = set(program.auth_functions())
        trusted: Set[str] = set(auth)

        candidates = self._candidate_clusters(program, graph, clustering, trusted)
        vanilla_cycles = max(profile.total_instructions, 1)
        budget_cycles = self.budget.overhead_fraction * vanilla_cycles

        for members in candidates:
            new_members = members - trusted
            if not new_members:
                continue
            new_members = self._shrink_to_fit(program, graph, trusted, new_members)
            if not new_members:
                continue
            tentative = trusted | new_members
            overhead = self._crossing_overhead_cycles(profile, tentative)
            if overhead > budget_cycles and not self._contains_key(program, new_members):
                # Key-function clusters must migrate for security even
                # if pricey; optional clusters respect r_t strictly.
                continue
            trusted = tentative

        trusted = self._absorb_boundary(program, graph, profile, trusted)
        trusted = self._prune(program, graph, trusted)

        return Partition(
            scheme=self.name,
            program_name=program.name,
            trusted=trusted,
            estimated_memory_bytes=trusted_working_set(program, graph, trusted),
        )

    def _shrink_to_fit(self, program: Program, graph: CallGraph,
                       trusted: Set[str], members: Set[str]) -> Set[str]:
        """Trim a cluster that busts m_t by dropping data-owning members.

        Clustering occasionally lumps a loader in with the processing
        module it feeds; taking it would enclose the (huge) shared data
        region.  We drop non-key members — largest working-set saving
        first — until the cluster fits, keeping common data untrusted
        exactly as Section 4.2.1 prescribes.  Returns the trimmed set
        (empty if even the key members alone bust the budget).
        """
        key_functions = set(program.key_functions())
        members = set(members)
        while members:
            ws = trusted_working_set(program, graph, trusted | members)
            if ws <= self.budget.memory_bytes:
                return members
            droppable = [m for m in sorted(members) if m not in key_functions]
            if not droppable:
                return set()
            best = max(
                droppable,
                key=lambda name: ws - trusted_working_set(
                    program, graph, (trusted | members) - {name}
                ),
            )
            members.discard(best)
        return members

    def _absorb_boundary(self, program: Program, graph: CallGraph,
                         profile: CallProfile, trusted: Set[str],
                         min_cut_reduction: int = 2,
                         enclosure_limit_bytes: int = 8 * 1024 * 1024) -> Set[str]:
        """Pull in untrusted functions whose calls mostly cross the boundary.

        Whole-cluster migration leaves one pathology: a thin untrusted
        driver loop hammering a migrated callee turns every iteration
        into an ECALL.  Absorbing such a function (it is cheap code)
        replaces thousands of crossings with one.  Guards keep the
        absorption honest: the cut must shrink by at least
        ``min_cut_reduction`` calls (one-off setup calls are not worth
        widening the TCB for), the working set must stay under m_t, and
        the absorption must not enclose a sizeable shared data region —
        common data stays untrusted (Section 4.2.1).
        """
        enclosed = self._enclosed_regions(program, trusted)
        changed = True
        while changed:
            changed = False
            current_cut = graph.cut_weight(trusted)
            best_candidate = None
            best_cut = current_cut
            for name in graph.nodes:
                if name in trusted or name == program.entry:
                    continue
                candidate = trusted | {name}
                cut = graph.cut_weight(candidate)
                if current_cut - cut < min_cut_reduction or cut >= best_cut:
                    continue
                if trusted_working_set(program, graph, candidate) > self.budget.memory_bytes:
                    continue
                newly_enclosed = self._enclosed_regions(program, candidate) - enclosed
                if any(
                    program.data_regions[r].size_bytes > enclosure_limit_bytes
                    for r in newly_enclosed
                ):
                    continue
                best_cut = cut
                best_candidate = name
            if best_candidate is not None:
                trusted = trusted | {best_candidate}
                enclosed = self._enclosed_regions(program, trusted)
                changed = True
        return trusted

    def _prune(self, program: Program, graph: CallGraph,
               trusted: Set[str]) -> Set[str]:
        """Drop migrated functions that add cost without protection.

        On star-shaped call graphs (FaaS orchestration) clustering can
        lump an input loader in with the protected processing cluster,
        even though the loader (a) is only ever called from untrusted
        code — so migrating it *adds* ECALLs — and (b) may enclose a
        shared data region.  Remove any non-key, non-auth member whose
        removal does not increase the cut; ties are broken in favour of
        removal when it shrinks the working set.
        """
        protected = set(program.key_functions()) | set(program.auth_functions())
        changed = True
        while changed:
            changed = False
            current_cut = graph.cut_weight(trusted)
            current_ws = trusted_working_set(program, graph, trusted)
            for name in sorted(trusted - protected):
                candidate = trusted - {name}
                cut = graph.cut_weight(candidate)
                if cut > current_cut:
                    continue
                ws = trusted_working_set(program, graph, candidate)
                # Removal must be clearly worth it: either it saves as
                # many crossings as absorption demands, or it releases
                # enclave memory without costing any crossing at all.
                if current_cut - cut >= 2 or ws < current_ws:
                    trusted = candidate
                    changed = True
                    break
        return trusted

    @staticmethod
    def _enclosed_regions(program: Program, trusted: Set[str]) -> Set[str]:
        """Regions whose every accessor is in ``trusted``."""
        accessors: dict = {}
        for spec in program.functions.values():
            for region_name, _ in spec.regions:
                accessors.setdefault(region_name, set()).add(spec.name)
        return {
            region_name
            for region_name, users in accessors.items()
            if users and users <= trusted
        }

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _default_k(self, program: Program) -> int:
        """One cluster per developer module is the natural default."""
        return max(2, len(program.modules()))

    def _candidate_clusters(self, program: Program, graph: CallGraph,
                            clustering: Clustering,
                            already: Set[str]) -> List[Set[str]]:
        """Key-function clusters first, each group sorted smallest-memory
        first (the paper's increasing-memory greedy order)."""
        key_functions = set(program.key_functions())
        key_clusters: List[Set[str]] = []
        other_clusters: List[Set[str]] = []
        for members in clustering.non_empty_clusters():
            remaining = members - already - {program.entry}
            if not remaining:
                continue
            if remaining & key_functions:
                key_clusters.append(remaining)
            else:
                other_clusters.append(remaining)

        def memory_of(members: Set[str]) -> int:
            return graph.mem_bytes(members) + graph.code_bytes(members)

        key_clusters.sort(key=memory_of)
        other_clusters.sort(key=memory_of)
        # Only key clusters are *security relevant*; other clusters are
        # not considered for migration (they would add overhead for no
        # protection benefit).
        return key_clusters

    def _crossing_overhead_cycles(self, profile: CallProfile,
                                  trusted: Set[str]) -> float:
        ecalls, ocalls = profile.cross_partition_calls(trusted)
        per_ecall = self.costs.ecall_cycles + self.costs.transition_tlb_cycles
        per_ocall = self.costs.ocall_cycles + self.costs.transition_tlb_cycles
        # Each boundary call also pays a return transition.
        return ecalls * (per_ecall + per_ocall) + ocalls * (per_ocall + per_ecall)

    @staticmethod
    def _contains_key(program: Program, members: Set[str]) -> bool:
        key_functions = set(program.key_functions())
        return bool(members & key_functions)
