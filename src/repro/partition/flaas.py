"""F-LaaS baseline: out-degree partitioning (Kumar et al., SCC '19).

F-LaaS migrates the functions with the highest out-degree — the
"orchestrators" making the most calls — on the theory that locking the
orchestration logic inside SGX renders the binary useless to an
attacker.  The paper's critique (Section 3): this ignores ECALL/OCALL
and EPC costs entirely.  An orchestrator's callees stay untrusted, so
*every* call it makes becomes an OCALL and every invocation of it an
ECALL, which is how the 2000x slowdowns arise.
"""

from __future__ import annotations

from typing import List, Set

from repro.callgraph.cfg import CallGraph
from repro.partition.base import Partition, Partitioner
from repro.vcpu.program import Program
from repro.vcpu.tracer import CallProfile


class FlaasPartitioner(Partitioner):
    """Migrate the top-``fraction`` of functions by out-degree."""

    name = "flaas"

    def __init__(self, fraction: float = 0.10, minimum: int = 1) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        self.fraction = fraction
        self.minimum = minimum

    def partition(self, program: Program, graph: CallGraph,
                  profile: CallProfile) -> Partition:
        # "A function making many function calls is orchestrating a
        # complicated piece of logic" — rank by dynamic calls made,
        # breaking ties by distinct callees.
        ranked: List[str] = sorted(
            graph.nodes,
            key=lambda name: (graph.weighted_out_calls(name),
                              graph.out_degree(name)),
            reverse=True,
        )
        ranked = [name for name in ranked if name != program.entry]
        count = max(self.minimum, int(round(len(ranked) * self.fraction)))
        trusted: Set[str] = set(ranked[:count])
        # The AM migrates here too — F-LaaS is a license-protection
        # scheme; the comparison is about *which other* functions move.
        trusted |= set(program.auth_functions())
        memory = graph.mem_bytes(trusted) + graph.code_bytes(trusted)
        return Partition(
            scheme=self.name,
            program_name=program.name,
            trusted=trusted,
            estimated_memory_bytes=memory,
        )
