"""Partition cost evaluation: the engine behind Table 5 and Figure 9.

Given a program, a dynamic profile, and a partition, the evaluator
computes what running the partitioned application on SGX would cost:

* **boundary crossings** — every untrusted->trusted call is an ECALL
  (17k cycles) and returns via the equivalent of an OCALL, and vice
  versa;
* **EPC behaviour** — the enclave working set is the migrated code plus
  the data regions that moved inside; a working set below the 92 MB EPC
  warms up once and never faults (SecureLease's design point), while a
  working set above it sustains fault traffic proportional to the
  overflow ratio (Glamdring's failure mode);
* **in-enclave CPI** — instructions retired inside the enclave pay the
  memory-encryption multiplier.

The same machinery prices the two endpoints the paper quotes: vanilla
(nothing trusted) and full-enclave (everything trusted, the >300x
HashJoin case).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Set

from repro.callgraph.cfg import CallGraph
from repro.partition.base import Partition, trusted_working_set
from repro.sgx.costs import PAGE_SIZE, SgxCostModel
from repro.vcpu.program import Program
from repro.vcpu.tracer import CallProfile


@dataclass(frozen=True)
class PartitionCostReport:
    """Everything Table 5 reports for one (workload, scheme) pair."""

    scheme: str
    program_name: str
    functions_migrated: int
    migrated_names: "tuple[str, ...]"
    static_coverage_bytes: int
    static_coverage_fraction: float
    dynamic_coverage: float
    ecalls: int
    ocalls: int
    epc_faults: int
    trusted_memory_bytes: int
    vanilla_cycles: int
    partitioned_cycles: int

    @property
    def overhead_fraction(self) -> float:
        """Slowdown over vanilla, e.g. 0.42 for the paper's 41.82 %."""
        if self.vanilla_cycles == 0:
            return 0.0
        return (self.partitioned_cycles - self.vanilla_cycles) / self.vanilla_cycles

    @property
    def slowdown(self) -> float:
        if self.vanilla_cycles == 0:
            return 1.0
        return self.partitioned_cycles / self.vanilla_cycles

    def improvement_over(self, other: "PartitionCostReport") -> float:
        """Runtime improvement of this partition vs another, as a
        fraction of the other's runtime (Table 5 "Perf. Impr.")."""
        if other.partitioned_cycles == 0:
            return 0.0
        return (
            (other.partitioned_cycles - self.partitioned_cycles)
            / other.partitioned_cycles
        )


class PartitionEvaluator:
    """Analytic cost model, shared by all schemes for fairness.

    ``fault_scale`` compensates for the reproduction's scaled-down
    inputs: our workloads run ~1000x fewer dynamic instructions than
    the paper's native runs, but their *declared* region sizes (and
    hence overflow ratios) match the paper, which would otherwise
    overstate faults per instruction by the same factor.  The default
    restores the paper's faults-per-instruction regime (~1e-4); setting
    it to 1.0 gives the raw unscaled model.  Every scheme is evaluated
    with the same value, so comparisons are unaffected by the choice.
    """

    def __init__(self, costs: Optional[SgxCostModel] = None, cpi: float = 1.0,
                 fault_scale: float = 0.02, stall_factor: float = 0.55) -> None:
        self.costs = costs if costs is not None else SgxCostModel()
        self.cpi = cpi
        if fault_scale <= 0:
            raise ValueError("fault_scale must be positive")
        self.fault_scale = fault_scale
        #: Extra per-instruction stall fraction at full EPC overflow.
        self.stall_factor = stall_factor

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def evaluate(self, program: Program, graph: CallGraph,
                 profile: CallProfile, partition: Partition) -> PartitionCostReport:
        return self._evaluate_set(program, graph, profile,
                                  partition.trusted, partition.scheme)

    def evaluate_vanilla(self, program: Program, graph: CallGraph,
                         profile: CallProfile) -> PartitionCostReport:
        """No SGX at all — the normalisation baseline."""
        return self._evaluate_set(program, graph, profile, set(), "vanilla")

    def evaluate_full_enclave(self, program: Program, graph: CallGraph,
                              profile: CallProfile) -> PartitionCostReport:
        """Entire application inside SGX (the >300x endpoint)."""
        return self._evaluate_set(
            program, graph, profile, set(program.functions), "full-enclave"
        )

    # ------------------------------------------------------------------
    # The model
    # ------------------------------------------------------------------
    def _evaluate_set(self, program: Program, graph: CallGraph,
                      profile: CallProfile, trusted: Set[str],
                      scheme: str) -> PartitionCostReport:
        vanilla_cycles = round(profile.total_instructions * self.cpi)

        ecalls, ocalls = profile.cross_partition_calls(trusted)
        per_ecall = self.costs.ecall_cycles + self.costs.transition_tlb_cycles
        per_ocall = self.costs.ocall_cycles + self.costs.transition_tlb_cycles
        # Entry plus the matching return transition.
        crossing_cycles = ecalls * (per_ecall + per_ocall) + ocalls * (
            per_ocall + per_ecall
        )

        trusted_instructions = sum(
            count
            for fn, count in profile.instruction_counts.items()
            if fn in trusted
        )
        working_set = trusted_working_set(program, graph, trusted)
        # In-enclave CPI: the MEE baseline plus memory stalls that grow
        # once the working set spills out of the EPC (the paper reports
        # a 65.85 % memory-stall-cycle reduction for SecureLease vs
        # Glamdring on OpenSSL — this is where that shows up).
        multiplier = self.costs.enclave_cpi_multiplier
        epc = self.costs.epc_size_bytes
        if working_set > epc:
            overflow_ratio = (working_set - epc) / working_set
            multiplier += self.stall_factor * overflow_ratio
        cpi_penalty_cycles = round(
            trusted_instructions * self.cpi * (multiplier - 1.0)
        )
        faults = self._estimate_faults(program, profile, trusted, working_set)
        fault_cycles = faults * self.costs.epc_fault_cycles

        partitioned = (
            vanilla_cycles + crossing_cycles + cpi_penalty_cycles + fault_cycles
        )
        total_code = max(graph.code_bytes(), 1)
        return PartitionCostReport(
            scheme=scheme,
            program_name=program.name,
            functions_migrated=len(trusted),
            migrated_names=tuple(sorted(trusted)),
            static_coverage_bytes=graph.code_bytes(trusted),
            static_coverage_fraction=graph.code_bytes(trusted) / total_code,
            dynamic_coverage=profile.dynamic_coverage_of(trusted),
            ecalls=ecalls,
            ocalls=ocalls,
            epc_faults=faults,
            trusted_memory_bytes=working_set,
            vanilla_cycles=vanilla_cycles,
            partitioned_cycles=partitioned,
        )

    def _estimate_faults(self, program: Program, profile: CallProfile,
                         trusted: Set[str], working_set: int) -> int:
        """EPC faults from the trusted working set.

        Below the EPC: only cold-start allocations (not billed as
        faults, matching the paper's "(0)" entries).  Above: trusted
        functions streaming over enclosed regions miss at the overflow
        ratio — pages they revisit have been evicted in the interim.
        """
        epc = self.costs.epc_size_bytes
        if working_set <= epc:
            return 0
        overflow_ratio = (working_set - epc) / working_set

        region_accessors = {}
        for spec in program.functions.values():
            for region_name, _ in spec.regions:
                region_accessors.setdefault(region_name, set()).add(spec.name)

        page_touches = 0.0
        for spec in program.functions.values():
            if spec.name not in trusted:
                continue
            calls = profile.call_counts.get(spec.name, 0)
            if calls == 0:
                continue
            for region_name, nbytes in spec.regions:
                accessors = region_accessors.get(region_name, set())
                if not (accessors <= trusted):
                    continue  # region stayed untrusted; no EPC traffic
                region = program.data_regions[region_name]
                if region.pattern == "random":
                    # Each call lands on that many *distinct* pages.
                    pages_per_call = max(1, math.ceil(nbytes / PAGE_SIZE))
                    page_touches += calls * pages_per_call
                else:
                    # Sequential access amortises a page over 4 KB.
                    page_touches += calls * (nbytes / PAGE_SIZE)
        return round(page_touches * overflow_ratio * self.fault_scale)
