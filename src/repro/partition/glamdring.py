"""Glamdring baseline: data-flow partitioning (Lind et al., ATC '17).

Developers annotate sensitive data structures; static information-flow
analysis then marks every function that can touch sensitive data —
directly or transitively through data passed along call edges — and
migrates them all.  On license-protected applications this tends to pull
in the bulk of the program: the license value flows into the AM, whose
outcome flows onward, and the annotated application data (the IP being
protected) is touched by most of the processing pipeline.

The consequence the paper measures (Table 5): large static coverage,
enclave working sets well above the EPC, and hence heavy fault traffic.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Set

from repro.callgraph.cfg import CallGraph
from repro.partition.base import Partition, Partitioner
from repro.vcpu.program import Program
from repro.vcpu.tracer import CallProfile


class GlamdringPartitioner(Partitioner):
    """Migrate the sensitive-data flow closure."""

    name = "glamdring"

    def __init__(self, propagate_through_calls: bool = True) -> None:
        #: Whether taint flows across call edges (the full Glamdring
        #: analysis); disabling it models annotation-only migration.
        self.propagate_through_calls = propagate_through_calls

    def partition(self, program: Program, graph: CallGraph,
                  profile: CallProfile) -> Partition:
        # Seed: functions that touch annotated sensitive data, plus the
        # authentication module (the license file itself is sensitive).
        tainted: Set[str] = set(program.sensitive_functions())
        tainted |= set(program.auth_functions())

        if self.propagate_through_calls:
            tainted = self._propagate(program, graph, tainted)

        # The entry point stays untrusted: an enclave is a library
        # entered through ECALLs, so some untrusted stub always remains.
        tainted.discard(program.entry)

        memory = graph.mem_bytes(tainted) + graph.code_bytes(tainted)
        return Partition(
            scheme=self.name,
            program_name=program.name,
            trusted=tainted,
            estimated_memory_bytes=memory,
        )

    def _propagate(self, program: Program, graph: CallGraph,
                   seeds: Set[str]) -> Set[str]:
        """Taint closure over shared data regions and call edges.

        A function becomes tainted if it shares a data region with a
        tainted function (the data itself is sensitive), or if it is
        called by a tainted function with data flowing in (approximated
        by call adjacency, the standard over-approximation static IFT
        makes).
        """
        region_users: Dict[str, Set[str]] = {}
        for spec in program.functions.values():
            for region_name, _ in spec.regions:
                region_users.setdefault(region_name, set()).add(spec.name)

        tainted = set(seeds)
        queue = deque(seeds)
        while queue:
            current = queue.popleft()
            spec = program.functions.get(current)
            if spec is None:
                continue
            neighbours: Set[str] = set()
            # Data flows through shared regions.
            for region_name, _ in spec.regions:
                neighbours |= region_users.get(region_name, set())
            # ... along call edges out of tainted code (arguments), and
            # back to callers (return values) — the standard IFT
            # over-approximation, which is why Glamdring ends up
            # migrating "almost the complete application" (paper, 7.4).
            if current in graph:
                neighbours |= graph.neighbors_undirected(current)
            for name in neighbours:
                if name not in tainted:
                    tainted.add(name)
                    queue.append(name)
        return tainted
