"""Security metrics for partitions: quantifying the attacker's handicap.

Section 6.1's argument is qualitative: after a successful CFB bend, the
attacker "will not have access to the key functions executing inside
SGX, resulting in an incomplete execution".  This module makes the
handicap measurable:

* **attacker-accessible coverage** — the fraction of the application's
  dynamic instructions an attacker can still execute after bending past
  the license check, i.e. everything not gated behind an enclave lease
  check.  For an unprotected binary this is 1.0; SecureLease drives it
  toward the share of boilerplate (I/O, drivers).
* **utility loss** — 1 minus that, the paper's "rendered handicapped".
* **reachable-without-lease set** — which functions still run: a
  function is lost if it is trusted and lease-guarded, or if every call
  path to it passes through a lost function.

This also powers an ablation: how much security does each *additional*
migrated cluster buy?
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.partition.base import Partition
from repro.vcpu.program import Program
from repro.vcpu.tracer import CallProfile


@dataclass(frozen=True)
class HandicapReport:
    """How crippled a CFB attacker is against a given partition."""

    scheme: str
    program_name: str
    #: Functions that still execute after the bend.
    reachable: "frozenset[str]"
    #: Functions denied (directly gated or only reachable through one).
    denied: "frozenset[str]"
    #: Share of dynamic instructions the attacker can still run.
    attacker_coverage: float
    #: Share of *key-function* instructions the attacker can still run.
    key_coverage: float

    @property
    def utility_loss(self) -> float:
        """The handicap: dynamic-instruction share the attacker loses."""
        return 1.0 - self.attacker_coverage

    @property
    def attack_is_useful(self) -> bool:
        """Does bending still yield a meaningfully working program?

        "Useful" means the attacker keeps some key-function work, or
        keeps essentially the whole application (>90 % of dynamic
        instructions).  The coverage number itself is a structural
        over-approximation — the real execution dies at the *first*
        denied call, losing everything after it too — so the threshold
        is deliberately generous toward the attacker.
        """
        return self.key_coverage > 0.0 or self.attacker_coverage > 0.9


def denied_functions(program: Program, partition: Partition) -> Set[str]:
    """Functions a lease-less attacker cannot execute.

    Directly denied: trusted *and* lease-guarded.  Transitively denied:
    every profiled call path to the function passes through a directly
    denied one (the caller dies before issuing the call).
    """
    directly_denied = {
        spec.name
        for spec in program.functions.values()
        if spec.name in partition.trusted and spec.guarded_by is not None
    }
    return directly_denied


def analyze_handicap(program: Program, profile: CallProfile,
                     partition: Partition) -> HandicapReport:
    """Compute the attacker's post-bend coverage against a partition.

    We walk the profiled call graph from the entry, pruning any edge
    into a denied function (the call raises and, in the execution
    model, terminates the run — so everything *after* it in program
    order is also lost; as a structural approximation we prune the
    denied subtree and keep siblings, which *over*-estimates attacker
    coverage and therefore under-states the defence).
    """
    denied = denied_functions(program, partition)

    reachable: Set[str] = set()
    queue: deque = deque([program.entry])
    while queue:
        current = queue.popleft()
        if current in reachable or current in denied:
            continue
        reachable.add(current)
        for (caller, callee), count in profile.edge_counts.items():
            if caller == current and count > 0 and callee not in reachable:
                queue.append(callee)

    total = max(profile.total_instructions, 1)
    attacker_instr = sum(
        count for fn, count in profile.instruction_counts.items()
        if fn in reachable
    )

    key_functions = set(program.key_functions())
    key_total = sum(
        profile.instruction_counts.get(fn, 0) for fn in key_functions
    )
    key_kept = sum(
        profile.instruction_counts.get(fn, 0)
        for fn in key_functions if fn in reachable
    )
    key_coverage = key_kept / key_total if key_total else 0.0

    return HandicapReport(
        scheme=partition.scheme,
        program_name=program.name,
        reachable=frozenset(reachable),
        denied=frozenset(denied),
        attacker_coverage=attacker_instr / total,
        key_coverage=key_coverage,
    )
