"""Deterministic random number generation for the simulation.

All stochastic behaviour in the reproduction (key generation, network
drops, crash injection, workload synthesis) flows through
:class:`DeterministicRng` so that a single seed reproduces an entire
experiment bit-for-bit.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A seeded RNG with the handful of draws the simulation needs.

    This is a thin, intention-revealing wrapper over :mod:`random.Random`;
    keeping it separate lets components accept "an RNG" without caring how
    it is seeded, and lets tests substitute fixed streams.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._random = random.Random(self.seed)

    def fork(self, label: str) -> "DeterministicRng":
        """Derive an independent child RNG from this one.

        Forking by label (rather than drawing a seed from the parent
        stream) means adding a new consumer never perturbs existing ones.
        The derivation must be stable across processes, so it cannot use
        ``hash()`` — Python randomises string hashing per interpreter,
        which would give every run different "deterministic" streams.
        """
        digest = hashlib.sha256(f"{self.seed}:{label}".encode()).digest()
        child_seed = int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF
        return DeterministicRng(child_seed)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._random.randint(low, high)

    def getrandbits(self, bits: int) -> int:
        """Uniform integer with the given number of random bits."""
        return self._random.getrandbits(bits)

    def random_bytes(self, n: int) -> bytes:
        """``n`` uniformly random bytes."""
        return self._random.getrandbits(8 * n).to_bytes(n, "big") if n else b""

    def key64(self) -> int:
        """A fresh 64-bit key (used for lease sealing)."""
        return self._random.getrandbits(64)

    def choice(self, items: Sequence[T]) -> T:
        """Uniformly pick one element of a non-empty sequence."""
        return self._random.choice(items)

    def sample(self, items: Sequence[T], k: int) -> List[T]:
        """Sample ``k`` distinct elements."""
        return self._random.sample(items, k)

    def shuffle(self, items: list) -> None:
        """Shuffle a list in place."""
        self._random.shuffle(items)

    def bernoulli(self, p: float) -> bool:
        """Return True with probability ``p``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability out of range: {p}")
        return self._random.random() < p

    def expovariate(self, rate: float) -> float:
        """Exponentially distributed inter-arrival time with the given rate."""
        return self._random.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        """Normally distributed draw."""
        return self._random.gauss(mu, sigma)
