"""Virtual cycle clock.

The paper's testbed runs a Core i7-10700 at 2.9 GHz and measures latencies
with ``RDTSC`` (cycles).  We keep the same unit: every simulated operation
advances a :class:`Clock` by a number of cycles, and helpers convert
cycles to seconds/micro-seconds at 2.9 GHz for reporting.
"""

from __future__ import annotations

import threading

#: Clock frequency of the paper's evaluation machine (Table 3).
CPU_FREQ_HZ = 2_900_000_000


class Clock:
    """A monotonically advancing virtual clock measured in CPU cycles."""

    __slots__ = ("_cycles",)

    def __init__(self, start_cycles: int = 0) -> None:
        if start_cycles < 0:
            raise ValueError("start_cycles must be non-negative")
        self._cycles = int(start_cycles)

    @property
    def cycles(self) -> int:
        """Current time in cycles since simulation start."""
        return self._cycles

    @property
    def seconds(self) -> float:
        """Current time in seconds at :data:`CPU_FREQ_HZ`."""
        return self._cycles / CPU_FREQ_HZ

    @property
    def micros(self) -> float:
        """Current time in micro-seconds."""
        return self._cycles / CPU_FREQ_HZ * 1e6

    def advance(self, cycles: int) -> int:
        """Advance the clock by ``cycles`` and return the new time.

        Raises :class:`ValueError` on negative increments: simulated time
        never flows backwards.
        """
        if cycles < 0:
            raise ValueError(f"cannot advance clock by {cycles} cycles")
        self._cycles += int(cycles)
        return self._cycles

    def advance_seconds(self, seconds: float) -> int:
        """Advance the clock by a duration expressed in seconds."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds} seconds")
        return self.advance(round(seconds * CPU_FREQ_HZ))

    def advance_to(self, cycles: int) -> int:
        """Move the clock forward to an absolute timestamp.

        Moving to the past raises; moving to the present is a no-op.
        """
        if cycles < self._cycles:
            raise ValueError(
                f"cannot move clock backwards ({cycles} < {self._cycles})"
            )
        self._cycles = int(cycles)
        return self._cycles

    def __repr__(self) -> str:
        return f"Clock(cycles={self._cycles}, seconds={self.seconds:.6f})"


class ThreadSafeClock(Clock):
    """A :class:`Clock` whose advancement is safe under real threads.

    The simulation is single-threaded and keeps the lock-free base
    class; the wire server (:mod:`repro.net.server`) dispatches handlers
    from many connection threads that all charge the *same* server-owned
    clock, where the unlocked read-modify-write of ``advance`` would
    lose cycles.
    """

    __slots__ = ("_advance_lock",)

    def __init__(self, start_cycles: int = 0) -> None:
        super().__init__(start_cycles)
        self._advance_lock = threading.Lock()

    def advance(self, cycles: int) -> int:
        with self._advance_lock:
            return super().advance(cycles)

    def advance_to(self, cycles: int) -> int:
        with self._advance_lock:
            return super().advance_to(cycles)


def cycles_to_micros(cycles: int) -> float:
    """Convert a cycle count to micro-seconds at the paper's 2.9 GHz."""
    return cycles / CPU_FREQ_HZ * 1e6


def micros_to_cycles(micros: float) -> int:
    """Convert micro-seconds to cycles at the paper's 2.9 GHz."""
    if micros < 0:
        raise ValueError("duration must be non-negative")
    return round(micros * 1e-6 * CPU_FREQ_HZ)


def seconds_to_cycles(seconds: float) -> int:
    """Convert seconds to cycles at the paper's 2.9 GHz."""
    if seconds < 0:
        raise ValueError("duration must be non-negative")
    return round(seconds * CPU_FREQ_HZ)
