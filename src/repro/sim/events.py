"""A small discrete-event scheduler.

The attestation-throughput experiment (Figure 8) and the multi-node lease
distribution experiments need concurrent actors sharing one virtual
timeline.  A full coroutine framework would be overkill; instead we run
generator-based processes over a priority queue of timestamped events.

A :class:`Process` is a generator that yields the number of cycles it
wants to sleep; the scheduler resumes it when virtual time reaches that
point.  Processes can also wait on each other through :class:`Event`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Generator, List, Optional, Tuple

from repro.sim.clock import Clock

#: What a process generator may yield: a cycle count to sleep, or an Event.
ProcessYield = object


class Event:
    """A one-shot synchronisation point processes can wait on."""

    __slots__ = ("name", "_fired", "_waiters", "value")

    def __init__(self, name: str = "event") -> None:
        self.name = name
        self._fired = False
        self._waiters: List["_Task"] = []
        self.value: object = None

    @property
    def fired(self) -> bool:
        return self._fired

    def fire(self, scheduler: "EventScheduler", value: object = None) -> None:
        """Fire the event, waking every waiter at the current time."""
        if self._fired:
            return
        self._fired = True
        self.value = value
        for task in self._waiters:
            scheduler._schedule(scheduler.clock.cycles, task)
        self._waiters.clear()

    def _add_waiter(self, task: "_Task") -> None:
        self._waiters.append(task)

    def __repr__(self) -> str:
        return f"Event({self.name!r}, fired={self._fired})"


@dataclass
class _Task:
    """Internal bookkeeping for one running process."""

    name: str
    generator: Generator
    done: bool = False
    result: object = None
    on_done: Optional[Callable[["_Task"], None]] = None


class Process:
    """Handle returned by :meth:`EventScheduler.spawn`."""

    __slots__ = ("_task", "completed")

    def __init__(self, task: _Task, completed: Event) -> None:
        self._task = task
        self.completed = completed

    @property
    def name(self) -> str:
        return self._task.name

    @property
    def done(self) -> bool:
        return self._task.done

    @property
    def result(self) -> object:
        return self._task.result


class EventScheduler:
    """Run generator processes over a shared virtual clock."""

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock = clock if clock is not None else Clock()
        self._queue: List[Tuple[int, int, _Task]] = []
        self._counter = itertools.count()

    def spawn(self, generator: Generator, name: str = "proc") -> Process:
        """Register a process to start at the current virtual time."""
        completed = Event(f"{name}.completed")

        def finish(task: _Task) -> None:
            completed.fire(self, task.result)

        task = _Task(name=name, generator=generator, on_done=finish)
        self._schedule(self.clock.cycles, task)
        return Process(task, completed)

    def _schedule(self, at_cycles: int, task: _Task) -> None:
        heapq.heappush(self._queue, (at_cycles, next(self._counter), task))

    def run(self, until_cycles: Optional[int] = None) -> None:
        """Run until the queue drains or virtual time passes ``until_cycles``."""
        while self._queue:
            at, _, task = self._queue[0]
            if until_cycles is not None and at > until_cycles:
                break
            heapq.heappop(self._queue)
            if task.done:
                continue
            self.clock.advance_to(max(at, self.clock.cycles))
            self._step(task)
        if until_cycles is not None and until_cycles > self.clock.cycles:
            self.clock.advance_to(until_cycles)

    def _step(self, task: _Task) -> None:
        try:
            yielded = task.generator.send(None)
        except StopIteration as stop:
            task.done = True
            task.result = stop.value
            if task.on_done is not None:
                task.on_done(task)
            return
        if isinstance(yielded, Event):
            if yielded.fired:
                self._schedule(self.clock.cycles, task)
            else:
                yielded._add_waiter(task)
        elif isinstance(yielded, (int, float)):
            delay = int(yielded)
            if delay < 0:
                raise ValueError(f"process {task.name} slept negative time")
            self._schedule(self.clock.cycles + delay, task)
        else:
            raise TypeError(
                f"process {task.name} yielded {yielded!r}; expected cycles or Event"
            )
