"""Deterministic simulation substrate: virtual clock, RNG, event scheduler.

Everything in the reproduction that "takes time" charges cycles to a
:class:`Clock` instead of consuming wall-clock time, which makes every
experiment deterministic and fast.  The :class:`EventScheduler` provides
just enough discrete-event machinery to model concurrent clients hitting
SL-Local (Figure 8) and multi-node lease distribution (Algorithm 1).
"""

from repro.sim.clock import CPU_FREQ_HZ, Clock
from repro.sim.rng import DeterministicRng
from repro.sim.events import Event, EventScheduler, Process

__all__ = [
    "CPU_FREQ_HZ",
    "Clock",
    "DeterministicRng",
    "Event",
    "EventScheduler",
    "Process",
]
