"""SecureLease reproduction: execution control on a simulated Intel SGX.

Reproduces Kumar, Panda & Sarangi, *"SecureLease: Maintaining Execution
Control in The Wild using Intel SGX"* (Middleware '22) as a pure-Python
library over a simulated SGX platform.

High-level entry points:

* :class:`repro.deployment.SecureLeaseDeployment` — a complete client
  machine with SL-Local, SL-Remote, and per-app SL-Managers.
* :mod:`repro.workloads` — the 11 evaluation workloads of Table 4.
* :mod:`repro.partition` — SecureLease, Glamdring, and F-LaaS
  partitioners plus the SGX cost evaluator.
* :mod:`repro.attacks` — CFB and replay attacks to verify the security
  claims.
* :mod:`repro.core` — GCLs, the 4-level lease tree, Algorithm 1.
* :mod:`repro.sgx` — the simulated SGX platform (EPC, attestation,
  ECALL/OCALL costs).

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
the per-table/figure reproduction record.
"""

__version__ = "1.0.0"

from repro.cluster import Cluster, ClusterNode, NodeSpec
from repro.deployment import AppRun, FlaasLeaseManager, SecureLeaseDeployment

__all__ = [
    "AppRun",
    "Cluster",
    "ClusterNode",
    "FlaasLeaseManager",
    "NodeSpec",
    "SecureLeaseDeployment",
    "__version__",
]
