"""Experiment reporting: tables for terminals and markdown.

The benchmark harness, the CLI, and downstream users all need to render
experiment rows.  One implementation lives here: fixed-width text for
terminals (what ``pytest -s`` shows) and GitHub-flavoured markdown for
reports like EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence


@dataclass
class Table:
    """An experiment table: a title, headers, and homogeneous rows."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells; table has "
                f"{len(self.headers)} columns"
            )
        self.rows.append(cells)

    # ------------------------------------------------------------------
    # Renderers
    # ------------------------------------------------------------------
    def to_text(self) -> str:
        """Fixed-width rendering for terminals."""
        cells = [[str(h) for h in self.headers]] + [
            [str(c) for c in row] for row in self.rows
        ]
        widths = [
            max(len(row[i]) for row in cells)
            for i in range(len(self.headers))
        ]
        lines = [f"== {self.title} =="]
        header_line = "  ".join(
            h.ljust(w) for h, w in zip(cells[0], widths)
        )
        lines.append(header_line)
        lines.append("-" * len(header_line))
        for row in cells[1:]:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown rendering."""
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(str(h) for h in self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(str(c) for c in row) + " |")
        return "\n".join(lines)

    def column(self, name: str) -> List[object]:
        """Extract one column by header name (for assertions)."""
        try:
            index = list(self.headers).index(name)
        except ValueError as exc:
            raise KeyError(f"no column {name!r}") from exc
        return [row[index] for row in self.rows]


def render_report(tables: Iterable[Table], markdown: bool = False) -> str:
    """Concatenate several tables into one report document."""
    renderer = Table.to_markdown if markdown else Table.to_text
    return "\n\n".join(renderer(table) for table in tables)
