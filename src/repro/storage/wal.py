"""Write-ahead ledger: durable per-shard license state.

The paper charges SL-Remote for a durable commit on every grant (the
monotonic-counter-class persistence that stops a crash from
resurrecting spent units) but the reproduction only *simulated* that
write — ``--ledger-commit-seconds`` slept while the ledger stayed in
RAM.  This module makes the write real:

* :class:`WriteAheadLog` — an append-only log of ledger mutations.
  Every record is length-prefixed, CRC-checked, and **sealed** with the
  same Protect/Validate construction the enclave uses for lease blobs
  (:mod:`repro.crypto.sealing`), under a key derived from the server
  secret — an attacker with disk access can neither read holdings nor
  splice forged grants into the tail.  Three fsync policies:
  ``always`` (fsync inside every append — the grant is durable before
  it is acknowledged), ``interval`` (group commit: fsync at most every
  ``fsync_interval_seconds``), ``off`` (the OS decides).

* Snapshot + compaction — a sealed snapshot of the full shard state
  (licenses, holdings, identity/escrow, migration tombstones) written
  atomically (tmp + fsync + rename), after which the log is truncated.
  Recovery replays snapshot + tail.

* :class:`ShardPersistence` — glues a log to one
  :class:`~repro.core.sl_remote.SlRemote`: journals every observer
  event, charges the real fsync against ``ledger_commit_seconds``
  through ``commit_hook``, compacts in the background, and on startup
  :meth:`~ShardPersistence.recover`\\ s the shard:

  1. install the snapshot (if any);
  2. replay the log tail, dropping everything from the first record
     that fails its length/CRC/seal check (a torn write at the moment
     of death) — committed prefixes are never reinterpreted;
  3. apply the paper's pessimistic rule (Section 5.7): every sub-GCL
     outstanding at the crash is forfeited to ``lost_units`` — a unit
     that might still be executing somewhere may never be re-granted —
     while escrowed root keys survive, so *gracefully* stopped clients
     still resume with their OBK;
  4. write a fresh snapshot so the next crash replays a short tail.

Crash safety of compaction itself: the snapshot is complete and
renamed into place *before* the log is truncated, so dying between the
two steps only means a longer (idempotent) replay.
"""

from __future__ import annotations

import contextlib
import json
import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.gcl import LeaseKind
from repro.core.licensefile import VENDOR_SECRET
from repro.core.sl_remote import LicenseUnknown, SlRemote
from repro.crypto.aes import aes128_ctr_encrypt
from repro.crypto.hashes import sha256_digest
from repro.crypto.hmac import hmac_sha256
from repro.crypto.keys import expand_key64
from repro.crypto.sealing import SealedBlob, TamperedSealError, validate

WAL_MAGIC = b"SLWAL1\n"
SNAP_MAGIC = b"SLSNAP1\n"
_FRAME_HEADER = struct.Struct(">II")  # payload length, CRC32(payload)
_NONCE_LEN = 8  # aes128_ctr requires an 8-byte nonce

FSYNC_POLICIES = ("always", "interval", "off")

#: Events the recovery replayer understands.  Anything else in the log
#: is counted as skipped (forward compatibility: an old binary reading
#: a newer shard's log must not misapply what it cannot interpret).
REPLAYABLE_EVENTS = (
    "issue", "revoke", "grant", "return", "writeoff",
    "escrow", "escrow_clear", "admit",
    "install_license", "install_identity", "release",
)


def derive_wal_key64(server_secret: bytes, name: str) -> int:
    """Per-shard sealing key for the log, derived from the server secret.

    64-bit to match the enclave's key size (the paper seals under
    64-bit keys); HMAC domain-separates it from every other use of the
    secret.
    """
    digest = hmac_sha256(server_secret, b"securelease-wal:" + name.encode())
    return int.from_bytes(digest[:8], "big")


def _seal(plaintext: bytes, key64: int) -> bytes:
    """Protect (Algorithm 2) with a random nonce; returns nonce || ct."""
    nonce = os.urandom(_NONCE_LEN)
    ciphertext = aes128_ctr_encrypt(
        plaintext + sha256_digest(plaintext), expand_key64(key64), nonce
    )
    return nonce + ciphertext


def _unseal(payload: bytes, key64: int) -> bytes:
    """Validate (Algorithm 3); raises TamperedSealError on any damage."""
    blob = SealedBlob(ciphertext=payload[_NONCE_LEN:],
                      nonce=payload[:_NONCE_LEN])
    return validate(blob, key64)


def _fsync(handle: Any) -> None:
    """fsync a (possibly wrapped) file handle.

    Fault-injection wrappers (:mod:`repro.testing.faults`) expose their
    own ``fsync`` so they can lie about durability; real files go
    through :func:`os.fsync`.
    """
    fsync = getattr(handle, "fsync", None)
    if fsync is not None:
        fsync()
    else:
        handle.flush()
        os.fsync(handle.fileno())


def _default_opener(path: str, mode: str) -> Any:
    return open(path, mode)


@dataclass(frozen=True)
class WalRecord:
    """One journalled ledger mutation."""

    seq: int
    event: str
    fields: Dict[str, Any]

    def encode(self) -> bytes:
        return json.dumps(
            {"seq": self.seq, "event": self.event, "fields": self.fields},
            separators=(",", ":"), sort_keys=True,
        ).encode("utf-8")

    @classmethod
    def decode(cls, data: bytes) -> "WalRecord":
        obj = json.loads(data.decode("utf-8"))
        return cls(seq=int(obj["seq"]), event=str(obj["event"]),
                   fields=dict(obj["fields"]))


class WriteAheadLog:
    """Append-only, framed, sealed log of :class:`WalRecord` entries.

    Frame layout: ``[len:4][crc32:4][nonce:8][ciphertext]`` where the
    CRC covers ``nonce || ciphertext`` (fast torn-tail detection before
    paying for the AES) and the ciphertext seals ``json || sha256``
    (integrity against deliberate tampering, not just bit rot).

    Thread-safe; ``append`` returns the wall-clock seconds spent on
    fsync so the caller can charge it against a commit-latency budget.
    """

    def __init__(
        self,
        path: str,
        key64: int,
        fsync: str = "interval",
        fsync_interval_seconds: float = 0.05,
        opener: Optional[Callable[[str, str], Any]] = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        self.path = path
        self.fsync_policy = fsync
        self.fsync_interval_seconds = fsync_interval_seconds
        self._key64 = key64
        self._opener = opener or _default_opener
        self._lock = threading.RLock()
        self.last_seq = 0
        self.append_count = 0
        self.fsync_count = 0
        self.appends_since_reset = 0
        self.batch_count = 0
        self._dirty = False
        self._batch_local = threading.local()
        self._last_sync = time.monotonic()
        fresh = not os.path.exists(path) or os.path.getsize(path) == 0
        self._handle = self._opener(path, "ab")
        if fresh:
            self._handle.write(WAL_MAGIC)
            self._handle.flush()
            _fsync(self._handle)

    # -- writing -------------------------------------------------------
    def append(self, event: str, fields: Dict[str, Any]) -> Tuple[int, float]:
        """Journal one mutation; returns ``(seq, fsync_seconds)``.

        The fsync charge follows the policy: ``always`` pays on every
        append, ``interval`` pays only when the group-commit window has
        elapsed, ``off`` never pays (durability rides on the OS cache).
        """
        with self._lock:
            seq = self.last_seq + 1
            record = WalRecord(seq=seq, event=event, fields=dict(fields))
            payload = _seal(record.encode(), self._key64)
            frame = _FRAME_HEADER.pack(len(payload), zlib.crc32(payload))
            self._handle.write(frame + payload)
            self._handle.flush()
            self.last_seq = seq
            self.append_count += 1
            self.appends_since_reset += 1
            self._dirty = True
            spent = 0.0
            if getattr(self._batch_local, "depth", 0) > 0:
                pass  # durability deferred to the enclosing batch's sync
            elif self.fsync_policy == "always":
                spent = self.sync()
            elif self.fsync_policy == "interval":
                if (time.monotonic() - self._last_sync
                        >= self.fsync_interval_seconds):
                    spent = self.sync()
            return seq, spent

    @contextlib.contextmanager
    def batch(self) -> Iterator["WriteAheadLog"]:
        """Group-commit scope: appends inside defer their fsync.

        Under the ``always`` policy every append normally pays its own
        fsync before returning; inside a batch *this thread's* appends
        only buffer, and a single sync when the outermost batch closes
        makes the whole group durable at once — N records, one disk
        sync.  The deferral is tracked per thread and the log lock is
        **not** held across the scope: batch bodies routinely take
        license locks between appends, and holding the WAL lock there
        deadlocks against the compactor, which takes license locks
        first and then needs the WAL lock to truncate.  An unrelated
        thread's append may therefore interleave and sync mid-batch;
        that only makes some of the group durable early, which is
        harmless — the closing sync still covers whatever remains.
        Nests reentrantly (only the outermost close syncs).  Under
        ``interval``/``off`` the deferral is a no-op beyond skipping
        the window check: durability still rides the maintenance tick
        or the OS cache respectively.
        """
        depth = getattr(self._batch_local, "depth", 0)
        self._batch_local.depth = depth + 1
        try:
            yield self
        finally:
            self._batch_local.depth = depth
            if depth == 0:
                with self._lock:
                    self.batch_count += 1
                    dirty = self._dirty
                if dirty and self.fsync_policy == "always":
                    self.sync()

    def sync(self) -> float:
        """Force an fsync; returns the seconds it took."""
        with self._lock:
            if self._handle.closed:
                return 0.0
            start = time.perf_counter()
            self._handle.flush()
            _fsync(self._handle)
            elapsed = time.perf_counter() - start
            self.fsync_count += 1
            self._dirty = False
            self._last_sync = time.monotonic()
            return elapsed

    def sync_if_due(self) -> float:
        """Group-commit tick for the ``interval`` policy (maintenance)."""
        with self._lock:
            if not self._dirty:
                return 0.0
            if (time.monotonic() - self._last_sync
                    < self.fsync_interval_seconds):
                return 0.0
            return self.sync()

    def reset(self) -> None:
        """Truncate to an empty log (after a snapshot superseded it).

        ``last_seq`` is preserved: sequence numbers stay monotonic for
        the life of the shard, which is what lets recovery order the
        snapshot watermark against tail records.
        """
        with self._lock:
            self._handle.close()
            self._handle = self._opener(self.path, "wb")
            self._handle.write(WAL_MAGIC)
            self._handle.flush()
            _fsync(self._handle)
            self.appends_since_reset = 0
            self._dirty = False

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                if self._dirty:
                    self.sync()
                self._handle.close()

    # -- reading -------------------------------------------------------
    @staticmethod
    def read(path: str, key64: int) -> Tuple[List[WalRecord], int, int]:
        """Read every intact record from a log file.

        Returns ``(records, good_offset, file_size)``: parsing stops at
        the first frame that is short, fails its CRC, fails seal
        validation, or does not decode — everything from that offset on
        is a torn tail the caller should truncate.  A missing file
        reads as empty.
        """
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return [], 0, 0
        if data[:len(WAL_MAGIC)] != WAL_MAGIC:
            return [], 0, len(data)
        records: List[WalRecord] = []
        offset = len(WAL_MAGIC)
        while True:
            header = data[offset:offset + _FRAME_HEADER.size]
            if len(header) < _FRAME_HEADER.size:
                break
            length, crc = _FRAME_HEADER.unpack(header)
            start = offset + _FRAME_HEADER.size
            payload = data[start:start + length]
            if length <= _NONCE_LEN or len(payload) < length:
                break
            if zlib.crc32(payload) != crc:
                break
            try:
                records.append(WalRecord.decode(_unseal(payload, key64)))
            except (TamperedSealError, ValueError, KeyError):
                break
            offset = start + length
        return records, offset, len(data)

    @staticmethod
    def truncate_tail(path: str, good_offset: int) -> None:
        """Drop a torn tail in place (recovery's repair step)."""
        with open(path, "r+b") as handle:
            handle.truncate(good_offset)
            handle.flush()
            os.fsync(handle.fileno())

    # -- export (WAL-shipped replication bootstrap) --------------------
    def export_frames(self) -> bytes:
        """The intact log tail as v3 wire frames, ready to ship.

        Re-frames every record with the negotiated binary codec's value
        encoding (PR 6) instead of the sealed on-disk frames: the WAL
        seal is derived from the *shard-local* key domain, which a peer
        cannot (and should not) unseal, while the wire already rides an
        authenticated fleet channel.  Syncs first so the disk read sees
        everything appended so far.
        """
        from repro.net import codec

        with self._lock:
            if not self._handle.closed:
                self.sync()
            records, _, _ = self.read(self.path, self._key64)
        out = bytearray()
        for record in records:
            out += codec.frame(codec.encode_value({
                "seq": record.seq,
                "event": record.event,
                "fields": record.fields,
            }))
        return bytes(out)

    @staticmethod
    def iter_frames(blob: bytes):
        """Yield :class:`WalRecord` entries from an exported blob.

        The inverse of :meth:`export_frames`; raises
        :class:`~repro.net.codec.CodecError` on any malformed frame —
        a bootstrap transfer is all-or-nothing, unlike the torn-tail
        tolerance of the on-disk reader.
        """
        from repro.net import codec

        offset = 0
        header_size = codec.FRAME_HEADER.size
        while offset < len(blob):
            header = blob[offset:offset + header_size]
            if len(header) < header_size:
                raise codec.CodecError("truncated bootstrap frame header")
            length = codec.frame_length(header)
            start = offset + header_size
            payload = blob[start:start + length]
            if len(payload) < length:
                raise codec.CodecError("truncated bootstrap frame body")
            obj = codec.decode_value(payload)
            yield WalRecord(seq=int(obj["seq"]), event=str(obj["event"]),
                            fields=dict(obj["fields"]))
            offset = start + length


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------
def write_snapshot(
    path: str,
    key64: int,
    payload: Dict[str, Any],
    opener: Optional[Callable[[str, str], Any]] = None,
    crash_point: Optional[Callable[[str], None]] = None,
) -> None:
    """Atomically persist a sealed snapshot: tmp + fsync + rename.

    A crash at any point leaves either the old snapshot or the new one,
    never a torn hybrid; ``crash_point`` (fault injection) is invoked
    at the two interesting instants.
    """
    opener = opener or _default_opener
    data = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    sealed = _seal(data.encode("utf-8"), key64)
    frame = _FRAME_HEADER.pack(len(sealed), zlib.crc32(sealed))
    tmp = path + ".tmp"
    handle = opener(tmp, "wb")
    try:
        handle.write(SNAP_MAGIC + frame + sealed)
        handle.flush()
        _fsync(handle)
    finally:
        handle.close()
    if crash_point is not None:
        crash_point("snapshot:written")
    os.replace(tmp, path)
    if crash_point is not None:
        crash_point("snapshot:renamed")
    # Durably record the rename itself where the platform allows it.
    try:
        dir_fd = os.open(os.path.dirname(path) or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def read_snapshot(path: str, key64: int) -> Optional[Dict[str, Any]]:
    """Load a snapshot; ``None`` if missing or damaged (fall back to a
    full log replay — correctness never depends on the snapshot)."""
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return None
    if data[:len(SNAP_MAGIC)] != SNAP_MAGIC:
        return None
    body = data[len(SNAP_MAGIC):]
    if len(body) < _FRAME_HEADER.size:
        return None
    length, crc = _FRAME_HEADER.unpack(body[:_FRAME_HEADER.size])
    payload = body[_FRAME_HEADER.size:_FRAME_HEADER.size + length]
    if len(payload) < length or zlib.crc32(payload) != crc:
        return None
    try:
        return json.loads(_unseal(payload, key64).decode("utf-8"))
    except (TamperedSealError, ValueError):
        return None


@dataclass
class RecoveryReport:
    """What :meth:`ShardPersistence.recover` did, for operators/benchmarks."""

    name: str
    snapshot_seq: int = 0
    records_replayed: int = 0
    records_skipped: int = 0
    tail_dropped_bytes: int = 0
    bytes_replayed: int = 0
    forfeited_units: int = 0
    duration_seconds: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "snapshot_seq": self.snapshot_seq,
            "records_replayed": self.records_replayed,
            "records_skipped": self.records_skipped,
            "tail_dropped_bytes": self.tail_dropped_bytes,
            "bytes_replayed": self.bytes_replayed,
            "forfeited_units": self.forfeited_units,
            "duration_seconds": self.duration_seconds,
        }

    def marker_line(self) -> str:
        """One parseable stdout line (the recovery benchmark greps it)."""
        return (
            f"SL-Recovery {self.name}: records={self.records_replayed} "
            f"forfeited={self.forfeited_units} "
            f"dropped={self.tail_dropped_bytes} "
            f"bytes={self.bytes_replayed} "
            f"seconds={self.duration_seconds:.4f}"
        )


class ShardPersistence:
    """Durability for one :class:`SlRemote` shard: journal + recover.

    Lifecycle::

        persistence = ShardPersistence(directory, name="shard-0")
        report = persistence.recover(remote)   # replay disk into RAM
        persistence.attach(remote)             # journal from now on
        ...
        persistence.close()

    ``recover`` must run *before* any replication observers attach, so
    replayed history is not re-streamed as fresh deltas.
    """

    WAL_FILE = "ledger.wal"
    SNAP_FILE = "ledger.snap"

    def __init__(
        self,
        directory: str,
        name: str = "remote",
        server_secret: bytes = VENDOR_SECRET,
        fsync: str = "interval",
        fsync_interval_seconds: float = 0.05,
        compact_every: int = 4096,
        opener: Optional[Callable[[str, str], Any]] = None,
        fault_plan: Optional[Any] = None,
        anchor: Optional[Any] = None,
    ) -> None:
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.name = name
        self.compact_every = compact_every
        # Freshness anchor (repro.storage.anchor.FreshnessAnchor): lives
        # on a path the threat model keeps away from the data directory,
        # ratcheted on every durable cut, checked before serving a
        # recovered image.  None = rollback defense not enabled.
        self.anchor = anchor
        self._key64 = derive_wal_key64(server_secret, name)
        self._fault_plan = fault_plan
        self.wal = WriteAheadLog(
            os.path.join(directory, self.WAL_FILE),
            self._key64,
            fsync=fsync,
            fsync_interval_seconds=fsync_interval_seconds,
            opener=opener,
        )
        self._snap_path = os.path.join(directory, self.SNAP_FILE)
        self._opener = opener or _default_opener
        self._remote: Optional[SlRemote] = None
        self._observer: Optional[Callable[[str, Dict[str, Any]], None]] = None
        self._group: Optional[Callable[[], Any]] = None
        self._local = threading.local()
        self._compact_lock = threading.Lock()
        self._stop = threading.Event()
        self._maintenance: Optional[threading.Thread] = None
        self.last_report: Optional[RecoveryReport] = None

    # -- crash points (fault injection) --------------------------------
    def _crash_point(self, point: str) -> None:
        if self._fault_plan is not None:
            self._fault_plan.reached(point)

    # -- recovery ------------------------------------------------------
    def recover(self, remote: SlRemote) -> RecoveryReport:
        """Replay snapshot + log tail into ``remote`` (Section 5.7 rules).

        Idempotent: a crash mid-recovery re-runs against the same disk
        state.  On success the log is compacted into a fresh snapshot
        so the *next* recovery replays (almost) nothing.
        """
        start = time.perf_counter()
        report = RecoveryReport(name=self.name)
        snapshot = read_snapshot(self._snap_path, self._key64)
        if snapshot is not None:
            report.snapshot_seq = int(snapshot.get("seq", 0))
            self._install_snapshot(remote, snapshot)
        records, good_offset, file_size = WriteAheadLog.read(
            self.wal.path, self._key64
        )
        if good_offset < file_size:
            # Torn tail: drop it on disk too, so a later reader can
            # never reinterpret the garbage differently.
            report.tail_dropped_bytes = file_size - good_offset
            WriteAheadLog.truncate_tail(self.wal.path, good_offset)
        report.bytes_replayed = good_offset
        last_seq = report.snapshot_seq
        for record in records:
            last_seq = max(last_seq, record.seq)
            if record.seq <= report.snapshot_seq:
                continue  # already folded into the snapshot
            if self._replay(remote, record):
                report.records_replayed += 1
            else:
                report.records_skipped += 1
        self.wal.last_seq = last_seq
        if self.anchor is not None:
            # The image has now told us how far its history reaches;
            # an anchor ahead of it means someone rolled the data
            # directory back to resurrect spent units.  Refuse before
            # forfeiture/compaction can touch anything.
            self.anchor.check(last_seq, name=self.name)
        report.forfeited_units = self._forfeit_outstanding(remote)
        # The snapshot install rebuilt every ledger's Equation 1
        # aggregates from scratch and the replay mutated them through
        # the observed maps; prove the two agree before serving — a
        # recovered shard must never price grants off drifted sums.
        for license_id in remote.license_ids():
            state = remote.license_state(license_id)
            with state.lock:
                state.ledger.audit_aggregates()
        self._remote = remote
        # Fold the recovered state into a fresh snapshot and truncate
        # the tail we just consumed (snapshot lands before truncation:
        # a crash in between only lengthens the next replay).
        self.compact()
        report.duration_seconds = time.perf_counter() - start
        self.last_report = report
        return report

    def _install_snapshot(self, remote: SlRemote,
                          snapshot: Dict[str, Any]) -> None:
        remote.install_identity(snapshot.get("identity", {}))
        for payload in snapshot.get("licenses", {}).values():
            remote.install_license_state(payload)
        moved = snapshot.get("moved", {})
        if moved:
            with remote._registry_lock:
                remote._moved.update(moved)

    def _replay(self, remote: SlRemote, record: WalRecord) -> bool:
        """Apply one journalled mutation; False when skipped."""
        event, f = record.event, record.fields
        try:
            if event == "issue":
                if f["license_id"] in remote.license_ids():
                    return False  # emitted lock-free: may race a snapshot
                remote.issue_license(
                    f["license_id"], f["total_units"],
                    kind=LeaseKind(f["kind"]),
                    tick_seconds=f.get("tick_seconds", 0.0),
                )
            elif event == "revoke":
                state = remote.license_state(f["license_id"])
                with state.lock:
                    state.definition.revoked = True
            elif event == "grant":
                self._replay_units(remote, f, direction=+1)
            elif event == "return":
                self._replay_units(remote, f, direction=-1)
            elif event == "writeoff":
                self._replay_units(remote, f, direction=-1, to_lost=True)
            elif event == "escrow":
                slid = int(f["slid"])
                remote.handle_admit(slid)
                with remote._clients_lock:
                    client = remote._clients[slid]
                    client.escrowed_root_key = f["root_key"]
                    client.graceful_shutdown = True
            elif event == "escrow_clear":
                with remote._clients_lock:
                    client = remote._clients.get(int(f["slid"]))
                    if client is None:
                        return False
                    client.escrowed_root_key = None
                    client.graceful_shutdown = False
            elif event == "admit":
                remote.handle_admit(int(f["slid"]))
            elif event == "install_license":
                remote.install_license_state(f["record"])
            elif event == "install_identity":
                remote.install_identity(f["identity"])
            elif event == "release":
                remote.release_license(f["license_id"], f.get("new_owner"))
            else:
                return False
        except (LicenseUnknown, KeyError, ValueError):
            return False
        return True

    @staticmethod
    def _replay_units(remote: SlRemote, f: Dict[str, Any],
                      direction: int, to_lost: bool = False) -> None:
        """Grant / return / write-off replay: ledger + holdings together."""
        license_id, node_key, units = f["license_id"], f["node_key"], f["units"]
        slid = int(node_key.split(":", 1)[1])
        remote.handle_admit(slid)
        state = remote.license_state(license_id)
        with remote._clients_lock:
            client = remote._clients[slid]
        with state.lock:
            ledger = state.ledger
            if direction > 0:
                ledger.outstanding[node_key] = (
                    ledger.outstanding.get(node_key, 0) + units
                )
                client.holdings[license_id] = (
                    client.holdings.get(license_id, 0) + units
                )
            else:
                held = ledger.outstanding.get(node_key, 0)
                moved = min(units, held)
                remaining = held - moved
                if remaining > 0:
                    ledger.outstanding[node_key] = remaining
                else:
                    ledger.outstanding.pop(node_key, None)
                if to_lost:
                    ledger.lost_units += moved
                client.holdings[license_id] = max(
                    0, client.holdings.get(license_id, 0) - moved
                )

    @staticmethod
    def _forfeit_outstanding(remote: SlRemote) -> int:
        """The pessimistic crash rule, shard-wide (paper Section 5.7).

        Every sub-GCL outstanding when the shard died might still be
        ticking inside some enclave we can no longer see, so it may
        never be granted again: move it all to ``lost_units``.  Escrow
        is deliberately *not* touched — a gracefully stopped client
        holds no units but must still get its OBK back.
        """
        with remote._clients_lock:
            clients = list(remote._clients.values())
        forfeited = 0
        for license_id in remote.license_ids():
            try:
                state = remote.license_state(license_id)
            except LicenseUnknown:
                continue
            with state.lock:
                pending = sum(state.ledger.outstanding.values())
                if pending > 0:
                    state.ledger.lost_units += pending
                    state.ledger.outstanding.clear()
                    forfeited += pending
                for client in clients:
                    client.holdings.pop(license_id, None)
        return forfeited

    # -- live journaling -----------------------------------------------
    def attach(self, remote: SlRemote) -> None:
        """Start journaling ``remote``'s mutations and charging fsyncs.

        Installs an observer (events arrive under the mutated state's
        lock, i.e. in ledger-commit order) and ``commit_hook`` (so
        ``handle_renew`` sleeps only the *remainder* of
        ``ledger_commit_seconds`` after the real fsync).
        """
        self._remote = remote
        self._observer = self._observe
        remote.add_observer(self._observer)
        remote.commit_hook = self.commit_cost
        self._group = self.group
        remote.commit_group = self._group
        self._stop.clear()
        self._maintenance = threading.Thread(
            target=self._maintenance_loop,
            name=f"wal-maintenance-{self.name}",
            daemon=True,
        )
        self._maintenance.start()

    def _observe(self, event: str, fields: Dict[str, Any]) -> None:
        if event not in REPLAYABLE_EVENTS:
            return
        self._crash_point("wal:append")
        _seq, spent = self.wal.append(event, fields)
        self._local.commit_cost = (
            getattr(self._local, "commit_cost", 0.0) + spent
        )

    def commit_cost(self) -> float:
        """Seconds this thread just spent on durable commits (and reset).

        ``SlRemote.handle_renew`` charges this against
        ``ledger_commit_seconds`` instead of sleeping on top of it.
        """
        spent = getattr(self._local, "commit_cost", 0.0)
        self._local.commit_cost = 0.0
        return spent

    @contextlib.contextmanager
    def group(self) -> Iterator[None]:
        """One durable commit for a whole renewal batch.

        Installed as ``SlRemote.commit_group``: ``handle_renew_batch``
        scopes the batch with it, every journal append inside defers
        its fsync (:meth:`WriteAheadLog.batch`), and a single sync on
        the way out makes all of the batch's grants durable together.
        The sync's real cost is credited to this thread's
        ``commit_cost`` so the subsequent budget charge sleeps only the
        remainder of ``ledger_commit_seconds`` — N renewals, one fsync,
        one charge.
        """
        with self.wal.batch():
            try:
                yield
            finally:
                if self.wal.fsync_policy == "always":
                    spent = self.wal.sync()
                    self._local.commit_cost = (
                        getattr(self._local, "commit_cost", 0.0) + spent
                    )

    # -- snapshot + compaction -----------------------------------------
    def compact(self) -> None:
        """Fold the log into a fresh snapshot and truncate it.

        Excludes every writer while the cut is taken: holding
        ``_clients_lock`` → ``_registry_lock`` → every license lock (in
        sorted order, matching the documented lock hierarchy) blocks
        issue/admit/escrow/grant/install/release, so the snapshot and
        the ``last_seq`` watermark are mutually consistent and nothing
        can append between the export and the truncation.
        """
        remote = self._remote
        if remote is None:
            return
        with self._compact_lock:
            with remote._clients_lock:
                with remote._registry_lock:
                    states = dict(remote._states)
                    ordered = sorted(states)
                    for license_id in ordered:
                        states[license_id].lock.acquire()
                    try:
                        licenses = {
                            license_id: self._export_locked(
                                remote, states[license_id]
                            )
                            for license_id in ordered
                        }
                        payload = {
                            "seq": self.wal.last_seq,
                            "licenses": licenses,
                            "identity": remote.export_identity(),
                            "moved": dict(remote._moved),
                        }
                        write_snapshot(
                            self._snap_path, self._key64, payload,
                            opener=self._opener,
                            crash_point=self._crash_point,
                        )
                        self.wal.reset()
                        self._crash_point("wal:reset")
                        if self.anchor is not None:
                            # Ratchet only after the snapshot is the
                            # durable truth: advancing first would let
                            # a crash between the two refuse our own
                            # (older but honest) image.
                            self.anchor.advance(self.wal.last_seq)
                    finally:
                        for license_id in reversed(ordered):
                            states[license_id].lock.release()

    @staticmethod
    def _export_locked(remote: SlRemote, state: Any) -> Dict[str, Any]:
        """export_license_state's body, minus its own lock acquisition
        (the compactor already holds the registry lock, which the
        public accessor would try to retake)."""
        from repro.core.sl_remote import definition_to_wire, ledger_to_wire

        license_id = state.definition.license_id
        holdings: Dict[str, int] = {}
        for slid, client in remote._clients.items():
            units = client.holdings.get(license_id, 0)
            if units:
                holdings[str(slid)] = units
        return {
            "definition": definition_to_wire(state.definition),
            "ledger": ledger_to_wire(state.ledger),
            "frozen": state.frozen,
            "holdings": holdings,
        }

    # -- export (WAL-shipped replication bootstrap) --------------------
    def export_bootstrap(
        self,
        capture: Optional[Callable[[], None]] = None,
    ) -> Tuple[Dict[str, Any], bytes]:
        """A consistent ``(snapshot payload, framed WAL tail)`` cut.

        Takes the same writer-exclusion as :meth:`compact` — every
        license lock held, WAL synced — but reads instead of
        truncating: the returned pair is exactly what a cold follower
        needs to rebuild this shard's state, and ``capture`` (invoked
        inside the quiesce) lets the replication source record the seq
        watermark that names this cut.
        """
        remote = self._remote
        if remote is None:
            raise RuntimeError(
                "export_bootstrap needs an attached remote (recover first)"
            )
        with self._compact_lock:
            with remote._clients_lock:
                with remote._registry_lock:
                    states = dict(remote._states)
                    ordered = sorted(states)
                    for license_id in ordered:
                        states[license_id].lock.acquire()
                    try:
                        self.wal.sync()
                        if capture is not None:
                            capture()
                        snapshot = read_snapshot(
                            self._snap_path, self._key64
                        ) or {}
                        frames = self.wal.export_frames()
                    finally:
                        for license_id in reversed(ordered):
                            states[license_id].lock.release()
        return snapshot, frames

    # -- maintenance ---------------------------------------------------
    def _maintenance_loop(self) -> None:
        tick = min(0.05, self.wal.fsync_interval_seconds)
        while not self._stop.wait(tick):
            try:
                if self.wal.fsync_policy == "interval":
                    self.wal.sync_if_due()
                if self.anchor is not None and not self.wal._dirty:
                    # Ratchet only past records the disk durably holds;
                    # an anchor ahead of the synced tail would refuse
                    # our own honest image after a crash.
                    self.anchor.advance(self.wal.last_seq)
                if (self.compact_every > 0
                        and self.wal.appends_since_reset
                        >= self.compact_every):
                    self.compact()
            except Exception:
                # A failing disk must not kill the maintenance thread;
                # appends will surface the same fault to callers.
                continue

    def close(self) -> None:
        """Stop journaling: final fsync, detach hooks, join maintenance."""
        self._stop.set()
        if self._maintenance is not None:
            self._maintenance.join(timeout=2.0)
            self._maintenance = None
        remote = self._remote
        if remote is not None:
            if self._observer is not None:
                try:
                    remote._observers.remove(self._observer)
                except ValueError:
                    pass
                self._observer = None
            if remote.commit_hook is self.commit_cost:
                remote.commit_hook = None
            if (self._group is not None
                    and remote.commit_group is self._group):
                remote.commit_group = None
            self._group = None
        self.wal.close()
        if self.anchor is not None:
            self.anchor.advance(self.wal.last_seq)


def attach_persistence(
    remote: Any,
    data_dir: str,
    server_secret: Optional[bytes] = None,
    fsync: str = "interval",
    fsync_interval_seconds: float = 0.05,
    compact_every: int = 4096,
    anchor_dir: Optional[str] = None,
) -> List[ShardPersistence]:
    """Recover-and-attach durability for a remote (single or sharded).

    A :class:`~repro.net.sharding.ShardedRemote` (duck-typed via its
    ``shards`` mapping) gets one subdirectory + log per shard, so each
    shard's durability is independent — exactly like the per-process
    fleet.  Returns the persistences (close them on shutdown); each
    carries its ``last_report``.

    ``anchor_dir`` (kept on a *different* path than ``data_dir`` by
    the threat model) enables the stale-image rollback defense: one
    :class:`~repro.storage.anchor.FreshnessAnchor` per shard, checked
    during recovery — a rolled-back image raises
    :class:`~repro.storage.anchor.StaleImageError` here, before
    anything attaches.
    """
    from repro.storage.anchor import FreshnessAnchor

    shards = getattr(remote, "shards", None)
    if isinstance(shards, dict):
        targets = [(name, shard) for name, shard in sorted(shards.items())]
    else:
        targets = [("remote", remote)]
    persistences: List[ShardPersistence] = []
    for name, shard in targets:
        secret = (server_secret if server_secret is not None
                  else getattr(shard, "_server_secret", VENDOR_SECRET))
        anchor = None
        if anchor_dir is not None:
            anchor = FreshnessAnchor(
                os.path.join(anchor_dir, f"{name}.anchor")
            )
        persistence = ShardPersistence(
            os.path.join(data_dir, name),
            name=name,
            server_secret=secret,
            fsync=fsync,
            fsync_interval_seconds=fsync_interval_seconds,
            compact_every=compact_every,
            anchor=anchor,
        )
        persistence.recover(shard)
        persistence.attach(shard)
        persistences.append(persistence)
    return persistences
