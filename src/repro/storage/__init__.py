"""Durable storage for SL-Remote: per-shard write-ahead ledgers.

The in-memory ledgers in :mod:`repro.core.sl_remote` are authoritative
while a shard is alive; this package makes them survive a SIGKILL.  See
:mod:`repro.storage.wal` for the log format and the recovery protocol.
"""

from repro.storage.wal import (
    RecoveryReport,
    ShardPersistence,
    WalRecord,
    WriteAheadLog,
    attach_persistence,
    derive_wal_key64,
)

__all__ = [
    "RecoveryReport",
    "ShardPersistence",
    "WalRecord",
    "WriteAheadLog",
    "attach_persistence",
    "derive_wal_key64",
]
