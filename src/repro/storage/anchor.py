"""Freshness anchor: the watermark a stale-image rollback cannot move.

The WAL seals every record, so an attacker with disk access cannot
*forge* ledger history — but sealing alone cannot stop them from
*rewinding* it: copy the data directory while 80 units are granted,
let the clients burn the units, SIGKILL the shard, restore the old
copy, restart.  Every byte the recovered shard reads is authentic;
it is just authentically **old**, and the spent units come back.
That is exactly the stale-image replay of paper Section 6.2, one
layer down: the image being replayed is the shard's own ledger.

The paper's answer is a monotonic counter outside the attacker's
reach (Section 5.6's escrowed roots ride the same mechanism): every
durable commit ratchets the counter, and boot refuses any image whose
watermark is behind it.  :class:`FreshnessAnchor` is that counter's
file-backed stand-in — the same role
:class:`~repro.sgx.monotonic.MonotonicCounterService` plays for lease
blobs, applied to the shard image.  It is deliberately a *separate
path* from the data directory (``--anchor-dir`` vs ``--data-dir``):
the threat model grants the adversary the data directory and denies
them the anchor, mirroring SGX granting them the disk and denying
them the CPU's counters.

Wire-up (see :class:`~repro.storage.wal.ShardPersistence`):

* every compaction / maintenance sync / clean close ratchets the
  anchor to ``wal.last_seq`` (monotonic — :meth:`advance` never moves
  backward, like ``psw_increment``);
* :meth:`~repro.storage.wal.ShardPersistence.recover` calls
  :meth:`check` with the sequence the disk image claims; a claim
  behind the anchor raises :class:`StaleImageError` and the server
  refuses to start (``SL-Anchor`` marker + exit 3) rather than serve
  resurrected units.

The file format is tiny and self-verifying — ``magic || seq:8 ||
crc32:4`` written via tmp + fsync + rename — and a missing or damaged
anchor reads as 0 (fail-open for first boot; the red-team campaigns
cover the fail-closed path by supplying one).
"""

from __future__ import annotations

import os
import struct
import threading
import zlib

ANCHOR_MAGIC = b"SLANCH1\n"
_BODY = struct.Struct(">QI")  # seq, crc32(magic || seq)


class StaleImageError(Exception):
    """The disk image is behind the freshness anchor: a rollback.

    Raised at recovery time, before any state is served.  Carries the
    two watermarks so the refusal marker can say exactly how far back
    the image was rolled.
    """

    def __init__(self, name: str, image_seq: int, anchor_seq: int) -> None:
        super().__init__(
            f"shard {name!r} image claims seq={image_seq} but the "
            f"freshness anchor has seq={anchor_seq}: stale image "
            f"(rollback of {anchor_seq - image_seq} committed records) "
            f"refused"
        )
        self.name = name
        self.image_seq = image_seq
        self.anchor_seq = anchor_seq


class FreshnessAnchor:
    """File-backed monotonic watermark for one shard's ledger image."""

    def __init__(self, path: str) -> None:
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self.path = path
        self._lock = threading.Lock()
        self.advances = 0
        self._cached = self.read()

    @property
    def seq(self) -> int:
        """Last watermark ratcheted (cached; disk truth at init)."""
        return self._cached

    def read(self) -> int:
        """The anchored watermark; 0 when missing or damaged.

        Damage fails *open* on purpose: an anchor the operator lost is
        indistinguishable from a first boot, and refusing to ever
        start again would turn the defense into a denial of service
        against the operator.  The rollback defense only needs the
        *attacker-controlled* image to be unable to lower it.
        """
        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return 0
        if data[:len(ANCHOR_MAGIC)] != ANCHOR_MAGIC:
            return 0
        body = data[len(ANCHOR_MAGIC):]
        if len(body) < _BODY.size:
            return 0
        seq, crc = _BODY.unpack(body[:_BODY.size])
        if zlib.crc32(ANCHOR_MAGIC + struct.pack(">Q", seq)) != crc:
            return 0
        return seq

    def advance(self, seq: int) -> int:
        """Ratchet the anchor to ``seq`` (monotonic; returns current).

        A lower or equal ``seq`` is a no-op — like the SGX counter,
        the anchor only ever counts up, which is the entire defense.
        Written atomically (tmp + fsync + rename) so a crash mid-
        advance leaves the previous anchor, never a torn one.
        """
        with self._lock:
            current = max(self._cached, self.read())
            if seq <= current:
                self._cached = current
                return current
            packed = struct.pack(">Q", seq)
            crc = zlib.crc32(ANCHOR_MAGIC + packed)
            tmp = self.path + ".tmp"
            with open(tmp, "wb") as handle:
                handle.write(ANCHOR_MAGIC + _BODY.pack(seq, crc))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
            self._cached = seq
            self.advances += 1
            return seq

    def check(self, image_seq: int, name: str = "remote") -> None:
        """Refuse an image whose watermark is behind the anchor."""
        anchored = self.read()
        if image_seq < anchored:
            raise StaleImageError(name, image_seq, anchored)
