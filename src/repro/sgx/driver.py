"""Driver-style statistics counters.

The authors modified the Intel SGX Linux driver to count page evictions,
allocations, and load-backs (Section 7.1).  :class:`SgxStats` plays the
same role for the simulator: every SGX-model component reports events
into one of these, and the benchmark harnesses read them out.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class SgxStats:
    """Event counters mirroring the instrumented SGX driver."""

    ecalls: int = 0
    ocalls: int = 0
    epc_faults: int = 0
    epc_evictions: int = 0
    epc_allocations: int = 0
    epc_loadbacks: int = 0
    local_attestations: int = 0
    remote_attestations: int = 0
    #: Cycles attributable to each event class, keyed by event name.
    cycles_by_event: Dict[str, int] = field(default_factory=dict)

    def bump(self, counter: str, count: int = 1) -> None:
        """Increment one named counter.

        The single-threaded simulation uses plain ``+=`` everywhere and
        loses nothing; code that may share a stats object across real
        threads (the wire servers' dispatch paths) must go through this
        method so :class:`ThreadSafeSgxStats` can make the
        read-modify-write atomic.
        """
        setattr(self, counter, getattr(self, counter) + count)

    def charge(self, event: str, cycles: int) -> None:
        """Attribute ``cycles`` to an event class."""
        self.cycles_by_event[event] = self.cycles_by_event.get(event, 0) + cycles

    def total_overhead_cycles(self) -> int:
        """All cycles charged to SGX events."""
        return sum(self.cycles_by_event.values())

    def merged_with(self, other: "SgxStats") -> "SgxStats":
        """Combine two counters (e.g. across enclaves) into a new one."""
        merged = SgxStats(
            ecalls=self.ecalls + other.ecalls,
            ocalls=self.ocalls + other.ocalls,
            epc_faults=self.epc_faults + other.epc_faults,
            epc_evictions=self.epc_evictions + other.epc_evictions,
            epc_allocations=self.epc_allocations + other.epc_allocations,
            epc_loadbacks=self.epc_loadbacks + other.epc_loadbacks,
            local_attestations=self.local_attestations + other.local_attestations,
            remote_attestations=self.remote_attestations + other.remote_attestations,
        )
        merged.cycles_by_event = dict(self.cycles_by_event)
        for event, cycles in other.cycles_by_event.items():
            merged.cycles_by_event[event] = merged.cycles_by_event.get(event, 0) + cycles
        return merged

    def reset(self) -> None:
        """Zero all counters in place."""
        self.ecalls = 0
        self.ocalls = 0
        self.epc_faults = 0
        self.epc_evictions = 0
        self.epc_allocations = 0
        self.epc_loadbacks = 0
        self.local_attestations = 0
        self.remote_attestations = 0
        self.cycles_by_event.clear()


class ThreadSafeSgxStats(SgxStats):
    """An :class:`SgxStats` whose increments are atomic under threads.

    The wire servers (:mod:`repro.net.server`, :mod:`repro.net.aio`)
    hand one shared stats object to handlers running on many dispatch
    threads at once.  The counters stay observability-only — a lost
    increment never affects protocol state — but the benchmark reports
    read them, and an unlocked ``+=`` under an 8-thread renewal storm
    silently undercounts.  Locking lives here so the single-threaded
    simulation keeps its zero-overhead plain ``+=``.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._bump_lock = threading.Lock()

    def bump(self, counter: str, count: int = 1) -> None:
        with self._bump_lock:
            super().bump(counter, count)

    def charge(self, event: str, cycles: int) -> None:
        with self._bump_lock:
            super().charge(event, cycles)
