"""``sgx_spin_lock``-style lock for in-enclave lease structures.

The paper serialises concurrent requests for the same lease with the
SGX SDK's spinlock (Section 5.4).  In the discrete-event simulation a
lock is held across yields of a process, so we model acquisition as a
test-and-set with cycle charging for contention.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.clock import Clock

#: Cycles burned per failed test-and-set attempt (pause loop).
SPIN_RETRY_CYCLES = 120
#: Cycles for an uncontended acquire or release.
SPIN_FAST_CYCLES = 30


class SpinLock:
    """A test-and-set spinlock charging virtual cycles."""

    __slots__ = ("_owner", "acquisitions", "contended_acquisitions")

    def __init__(self) -> None:
        self._owner: Optional[str] = None
        self.acquisitions = 0
        self.contended_acquisitions = 0

    @property
    def locked(self) -> bool:
        return self._owner is not None

    @property
    def owner(self) -> Optional[str]:
        return self._owner

    def try_acquire(self, clock: Clock, owner: str) -> bool:
        """One test-and-set attempt; charges cycles either way."""
        if self._owner is None:
            clock.advance(SPIN_FAST_CYCLES)
            self._owner = owner
            self.acquisitions += 1
            return True
        clock.advance(SPIN_RETRY_CYCLES)
        self.contended_acquisitions += 1
        return False

    def acquire(self, clock: Clock, owner: str, max_spins: int = 1_000_000) -> None:
        """Spin until acquired (single-threaded simulation never blocks
        forever unless there is a bug — the bound turns that into an error).
        """
        for _ in range(max_spins):
            if self.try_acquire(clock, owner):
                return
        raise RuntimeError(f"spinlock starved; held by {self._owner!r}")

    def release(self, clock: Clock, owner: str) -> None:
        """Release; only the holder may unlock."""
        if self._owner != owner:
            raise RuntimeError(
                f"{owner!r} released a lock held by {self._owner!r}"
            )
        clock.advance(SPIN_FAST_CYCLES)
        self._owner = None
