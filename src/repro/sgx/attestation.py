"""Local and remote attestation.

Local attestation exchanges hardware-MAC'd reports between two enclaves
on one machine; remote attestation (RA) involves the Intel Attestation
Service and takes 3-4 seconds end to end (Section 2.3).  SecureLease's
entire point is replacing RAs with local attestations plus cached
leases, so the model must make both paths explicit and chargeable.

Identity here is an enclave *measurement* (hash of its code identity).
A report is valid when the MAC verifies and the target measurement
matches, mirroring SGX's EREPORT/EGETKEY flow without modelling the
CMAC construction itself.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional, Set

from repro.crypto.hashes import sha256_word
from repro.crypto.hmac import hmac_sha256_word
from repro.sgx.costs import SgxCostModel
from repro.sgx.driver import SgxStats
from repro.sim.clock import Clock


class AttestationError(Exception):
    """Raised when a report fails verification."""


def measure(code_identity: str) -> int:
    """Enclave measurement (MRENCLAVE stand-in): 64-bit hash of identity."""
    return sha256_word(code_identity.encode("utf-8"))


@dataclass(frozen=True)
class AttestationReport:
    """A report binding a source enclave to a target enclave.

    ``mac`` stands in for the hardware CMAC over the report body keyed
    by the target's report key — only the genuine platform can produce
    it, which the simulation encodes by deriving it from both
    measurements plus a platform secret.
    """

    source_measurement: int
    target_measurement: int
    nonce: int
    mac: int

    @staticmethod
    def create(
        source_measurement: int,
        target_measurement: int,
        nonce: int,
        platform_secret: int,
    ) -> "AttestationReport":
        mac = _report_mac(source_measurement, target_measurement, nonce, platform_secret)
        return AttestationReport(source_measurement, target_measurement, nonce, mac)

    def to_wire(self) -> dict:
        """JSON-ready field dict (all 64-bit words) for the wire codec."""
        return {
            "source_measurement": self.source_measurement,
            "target_measurement": self.target_measurement,
            "nonce": self.nonce,
            "mac": self.mac,
        }

    @classmethod
    def from_wire(cls, fields: dict) -> "AttestationReport":
        return cls(
            source_measurement=fields["source_measurement"],
            target_measurement=fields["target_measurement"],
            nonce=fields["nonce"],
            mac=fields["mac"],
        )


def _report_mac(src: int, dst: int, nonce: int, secret: int) -> int:
    body = src.to_bytes(8, "big") + dst.to_bytes(8, "big") + nonce.to_bytes(8, "big")
    return hmac_sha256_word(secret.to_bytes(8, "big"), body)


class LocalAttestationAuthority:
    """Per-machine platform: verifies locally generated reports.

    One instance per simulated machine; its ``platform_secret`` models
    the processor's report key hierarchy, shared by all enclaves on the
    machine and by nothing else.
    """

    def __init__(self, clock: Clock, stats: SgxStats, costs: Optional[SgxCostModel] = None,
                 platform_secret: int = 0x5EC0_7EA5_E000_0001) -> None:
        self.clock = clock
        self.stats = stats
        self.costs = costs if costs is not None else SgxCostModel()
        self.platform_secret = platform_secret

    def generate_report(self, source_measurement: int, target_measurement: int,
                        nonce: int) -> AttestationReport:
        """EREPORT: produce a report targeted at another local enclave."""
        return AttestationReport.create(
            source_measurement, target_measurement, nonce, self.platform_secret
        )

    def verify_local(self, report: AttestationReport,
                     expected_source: Optional[int] = None) -> None:
        """Verify a local report; charges the full local-attestation cost.

        Raises :class:`AttestationError` on a bad MAC or an unexpected
        source measurement.
        """
        self.clock.advance(self.costs.local_attestation_cycles)
        self.stats.bump("local_attestations")
        self.stats.charge("local_attestation", self.costs.local_attestation_cycles)
        expected_mac = _report_mac(
            report.source_measurement,
            report.target_measurement,
            report.nonce,
            self.platform_secret,
        )
        if report.mac != expected_mac:
            raise AttestationError("local attestation report MAC mismatch")
        if expected_source is not None and report.source_measurement != expected_source:
            raise AttestationError(
                f"unexpected source measurement {report.source_measurement:#x}"
            )


class RemoteAttestationService:
    """The IAS stand-in: verifies quotes from registered genuine platforms.

    Each verification charges the full 3.5 s round trip to the caller's
    clock — this is the cost SecureLease works so hard to avoid.
    """

    def __init__(self, costs: Optional[SgxCostModel] = None,
                 accept_any_platform: bool = False) -> None:
        self.costs = costs if costs is not None else SgxCostModel()
        self._genuine_platforms: Set[int] = set()
        self.verifications = 0
        self._verifications_lock = threading.Lock()
        #: Enroll platforms on first contact instead of requiring prior
        #: registration.  Only for standalone wire servers (``repro.cli
        #: serve-remote``) whose clients run in other processes; the
        #: security experiments always provision explicitly.
        self.accept_any_platform = accept_any_platform

    def register_platform(self, platform_secret: int) -> None:
        """Provision a platform as genuine (EPID/DCAP enrollment)."""
        self._genuine_platforms.add(platform_secret)

    def verify_remote(self, clock: Clock, stats: SgxStats,
                      report: AttestationReport, platform_secret: int) -> None:
        """Remote attestation of an enclave on the given platform.

        Charges the RA latency, then checks that the platform is
        genuine and the report MAC verifies under that platform's key.
        """
        # The wire servers call this from many dispatch threads with one
        # shared stats object; ``bump`` lets ThreadSafeSgxStats make the
        # increment atomic while the simulation's plain stats stay free.
        clock.advance(self.costs.remote_attestation_cycles)
        stats.bump("remote_attestations")
        stats.charge("remote_attestation", self.costs.remote_attestation_cycles)
        with self._verifications_lock:
            self.verifications += 1
        if self.accept_any_platform:
            self._genuine_platforms.add(platform_secret)
        if platform_secret not in self._genuine_platforms:
            raise AttestationError("platform is not a genuine SGX platform")
        expected_mac = _report_mac(
            report.source_measurement,
            report.target_measurement,
            report.nonce,
            platform_secret,
        )
        if report.mac != expected_mac:
            raise AttestationError("remote attestation quote MAC mismatch")
