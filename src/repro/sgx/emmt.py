"""Enclave memory measurement (the paper's EMMT step).

Section 4.2.1: SGX requires an enclave's memory to be declared upfront,
so the partitioner estimates each candidate's footprint from the proc
interface and "further fine-tunes the total amount of memory required
by using the EMMT tool".  This module is that estimator: given a
program and a trusted set, it produces the enclave configuration — heap
size, stack size, and a breakdown by contributor — with a configurable
safety margin, and can verify a declared configuration against the
observed working set after a run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Set

from repro.partition.base import trusted_working_set
from repro.sgx.costs import PAGE_SIZE
from repro.vcpu.program import Program
from repro.callgraph.cfg import CallGraph

#: Default stack reservation per enclave thread (SGX SDK default-ish).
DEFAULT_STACK_BYTES = 256 * 1024
#: Fixed SDK/runtime overhead inside every enclave (tRTS, SSA frames).
RUNTIME_OVERHEAD_BYTES = 2 * 1024 * 1024


@dataclass(frozen=True)
class EnclaveSizing:
    """A build-time enclave memory declaration."""

    code_bytes: int
    data_bytes: int
    stack_bytes: int
    runtime_bytes: int
    margin_fraction: float

    @property
    def heap_bytes(self) -> int:
        return self.data_bytes

    @property
    def total_bytes(self) -> int:
        raw = (self.code_bytes + self.data_bytes + self.stack_bytes
               + self.runtime_bytes)
        return math.ceil(raw * (1.0 + self.margin_fraction))

    @property
    def total_pages(self) -> int:
        return math.ceil(self.total_bytes / PAGE_SIZE)


def measure_enclave(program: Program, graph: CallGraph, trusted: Set[str],
                    threads: int = 1,
                    margin_fraction: float = 0.10) -> EnclaveSizing:
    """Estimate the enclave declaration for a trusted set.

    ``margin_fraction`` is the fine-tuning headroom (allocator slack,
    alignment); 10 % matches common practice with the real EMMT.
    """
    if threads < 1:
        raise ValueError("an enclave needs at least one thread")
    code = graph.code_bytes(trusted)
    total_ws = trusted_working_set(program, graph, trusted)
    data = max(0, total_ws - code)
    return EnclaveSizing(
        code_bytes=code,
        data_bytes=data,
        stack_bytes=threads * DEFAULT_STACK_BYTES,
        runtime_bytes=RUNTIME_OVERHEAD_BYTES,
        margin_fraction=margin_fraction,
    )


def breakdown(program: Program, graph: CallGraph,
              trusted: Set[str]) -> Dict[str, int]:
    """Per-contributor bytes: each migrated function's code plus each
    enclosed region's data — what the EMMT report itemises."""
    items: Dict[str, int] = {}
    for name in sorted(trusted):
        if name in graph:
            items[f"code:{name}"] = graph.info(name).code_bytes
    accessors: Dict[str, Set[str]] = {}
    for spec in program.functions.values():
        for region_name, _ in spec.regions:
            accessors.setdefault(region_name, set()).add(spec.name)
    for region_name, users in sorted(accessors.items()):
        if users and users <= trusted:
            items[f"data:{region_name}"] = (
                program.data_regions[region_name].size_bytes
            )
    return items


def verify_declaration(sizing: EnclaveSizing, observed_bytes: int) -> bool:
    """Post-run check: did the declared size actually cover the run?

    SGX enclaves crash on heap exhaustion, so an under-declaration is a
    build bug the estimator must never produce for profiled inputs.
    """
    return observed_bytes <= sizing.total_bytes
