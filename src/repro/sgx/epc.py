"""Enclave Page Cache (EPC) model.

SGX reserves ~92 MB of usable secure memory shared by all enclaves.
When enclaves' working sets exceed it, the kernel driver evicts pages to
untrusted DRAM (encrypting + versioning them) and faults them back on
access; the paper charges ~12,000 cycles per fault and observes that
these faults dominate the Glamdring/full-enclave overhead (Table 5,
Figure 9).

:class:`EpcPager` models the cache at page granularity with a CLOCK
(second-chance) replacement policy, charging cycles to a shared clock
and events to :class:`~repro.sgx.driver.SgxStats`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.sgx.costs import PAGE_SIZE, SgxCostModel
from repro.sgx.driver import SgxStats
from repro.sim.clock import Clock


@dataclass
class _PageState:
    """Residency record for one (enclave, page) pair."""

    resident: bool
    referenced: bool
    ever_loaded: bool


class EpcPager:
    """Shared EPC with CLOCK replacement across all enclaves.

    Pages are identified by ``(enclave_id, page_number)``.  ``touch()``
    is the single entry point: it faults the page in if necessary
    (possibly evicting a victim) and charges the appropriate cycle
    costs.
    """

    def __init__(
        self,
        clock: Clock,
        stats: SgxStats,
        costs: Optional[SgxCostModel] = None,
    ) -> None:
        self.clock = clock
        self.stats = stats
        self.costs = costs if costs is not None else SgxCostModel()
        self.capacity_pages = self.costs.epc_pages
        self._pages: Dict[Tuple[int, int], _PageState] = {}
        #: Resident pages in CLOCK order (OrderedDict as a ring buffer).
        self._resident: "OrderedDict[Tuple[int, int], None]" = OrderedDict()

    @property
    def resident_pages(self) -> int:
        return len(self._resident)

    @property
    def resident_bytes(self) -> int:
        return len(self._resident) * PAGE_SIZE

    def touch(self, enclave_id: int, page: int) -> bool:
        """Access one page from inside an enclave.

        Returns True if the access faulted (page was not resident).
        """
        key = (enclave_id, page)
        state = self._pages.get(key)
        if state is not None and state.resident:
            state.referenced = True
            return False

        # Page fault path: make room, then load.
        if len(self._resident) >= self.capacity_pages:
            self._evict_one()

        if state is None:
            state = _PageState(resident=True, referenced=True, ever_loaded=True)
            self._pages[key] = state
            self.stats.epc_allocations += 1
            self.clock.advance(self.costs.epc_page_init_cycles)
            self.stats.charge("epc_page_init", self.costs.epc_page_init_cycles)
        else:
            state.resident = True
            state.referenced = True
            self.stats.epc_loadbacks += 1
            self.stats.epc_faults += 1
            self.clock.advance(self.costs.epc_fault_cycles)
            self.stats.charge("epc_fault", self.costs.epc_fault_cycles)
        self._resident[key] = None
        return True

    def touch_range(self, enclave_id: int, start_page: int, npages: int) -> int:
        """Touch a contiguous page range; returns the number of faults."""
        faults = 0
        for page in range(start_page, start_page + npages):
            if self.touch(enclave_id, page):
                faults += 1
        return faults

    def release_enclave(self, enclave_id: int) -> int:
        """Free every page belonging to an enclave (enclave teardown).

        Returns the number of pages released.
        """
        victims = [key for key in self._pages if key[0] == enclave_id]
        for key in victims:
            self._resident.pop(key, None)
            del self._pages[key]
        return len(victims)

    def _evict_one(self) -> None:
        """CLOCK second-chance eviction of a single resident page."""
        while True:
            key, _ = self._resident.popitem(last=False)
            state = self._pages[key]
            if state.referenced:
                state.referenced = False
                self._resident[key] = None  # second chance: move to tail
                continue
            state.resident = False
            self.stats.epc_evictions += 1
            # Eviction cost is folded into the fault cost on reload,
            # matching how the paper reports "EPC evicts" alongside
            # fault-dominated runtimes.
            return

    def enclave_resident_pages(self, enclave_id: int) -> int:
        """Number of currently resident pages for one enclave."""
        return sum(1 for key in self._resident if key[0] == enclave_id)
