"""Simulated Intel SGX platform.

The reproduction cannot run on SGX hardware, so this package models the
pieces of the platform that the paper's evaluation depends on:

* :mod:`repro.sgx.costs` — the cycle-cost constants (17k/ECALL, 12k/EPC
  fault, 3.5 s remote attestation, 92 MB EPC).
* :mod:`repro.sgx.epc` — a shared enclave page cache with CLOCK eviction.
* :mod:`repro.sgx.enclave` — enclave lifecycle plus the ECALL/OCALL gate.
* :mod:`repro.sgx.attestation` — local and remote attestation flows.
* :mod:`repro.sgx.pcl` — the protected code loader (encrypted enclaves).
* :mod:`repro.sgx.spinlock` — ``sgx_spin_lock`` equivalent.
* :mod:`repro.sgx.driver` — instrumented-driver statistics counters.

:class:`SgxMachine` bundles one machine's worth of platform state.
"""

from __future__ import annotations

from typing import Optional

from repro.sgx.attestation import (
    AttestationError,
    AttestationReport,
    LocalAttestationAuthority,
    RemoteAttestationService,
    measure,
)
from repro.sgx.costs import (
    DEFAULT_COSTS,
    EPC_SIZE_BYTES,
    PAGE_SIZE,
    SCALABLE_SGX_COSTS,
    SgxCostModel,
    scaled_latency_costs,
)
from repro.sgx.driver import SgxStats, ThreadSafeSgxStats
from repro.sgx.enclave import Enclave, EnclaveError
from repro.sgx.epc import EpcPager
from repro.sgx.pcl import PclError, PclKeyServer, SealedCodeSection, load_protected_code
from repro.sgx.spinlock import SpinLock
from repro.sim.clock import Clock


class SgxMachine:
    """One SGX-capable machine: clock, stats, pager, attestation authority."""

    def __init__(self, name: str = "machine",
                 clock: Optional[Clock] = None,
                 costs: Optional[SgxCostModel] = None,
                 platform_secret: Optional[int] = None) -> None:
        self.name = name
        self.clock = clock if clock is not None else Clock()
        self.costs = costs if costs is not None else SgxCostModel()
        self.stats = SgxStats()
        self.pager = EpcPager(self.clock, self.stats, self.costs)
        secret = platform_secret if platform_secret is not None else (
            measure(f"platform:{name}")
        )
        self.platform_secret = secret
        self.local_authority = LocalAttestationAuthority(
            self.clock, self.stats, self.costs, platform_secret=secret
        )

    def create_enclave(self, name: str, heap_bytes: int = 1 << 20) -> Enclave:
        """Build and launch an enclave on this machine."""
        return Enclave(
            name=name,
            clock=self.clock,
            stats=self.stats,
            pager=self.pager,
            heap_bytes=heap_bytes,
            costs=self.costs,
        )


__all__ = [
    "AttestationError",
    "AttestationReport",
    "DEFAULT_COSTS",
    "EPC_SIZE_BYTES",
    "Enclave",
    "EnclaveError",
    "EpcPager",
    "LocalAttestationAuthority",
    "PAGE_SIZE",
    "PclError",
    "PclKeyServer",
    "RemoteAttestationService",
    "SCALABLE_SGX_COSTS",
    "SealedCodeSection",
    "SgxCostModel",
    "SgxMachine",
    "SgxStats",
    "ThreadSafeSgxStats",
    "SpinLock",
    "load_protected_code",
    "measure",
    "scaled_latency_costs",
]
