"""SGX monotonic counters: the alternative freshness anchor.

SecureLease anchors lease-tree freshness in a server-escrowed root key
(Section 5.6).  The classic alternative is SGX's hardware monotonic
counters: persist ``(state, counter_value)``, bump the counter on every
commit, and reject any restored state whose recorded value is stale.

The paper implicitly rejects this design — real SGX counters live in
flash-backed NVRAM that (a) takes ~100-200 ms per increment and (b)
wears out after ~1M writes, which is hopeless at lease-update rates.
This module models both the counters and those costs so the design
choice can be *measured* (see ``benchmarks/test_ablation_freshness.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.sim.clock import Clock, seconds_to_cycles

#: Measured cost of one monotonic-counter increment on real SGX
#: hardware (flash write + ME round trip): ~100-200 ms.  We take 150 ms.
INCREMENT_CYCLES = seconds_to_cycles(0.150)
#: Reads are cheaper but still cross to the management engine.
READ_CYCLES = seconds_to_cycles(0.050)
#: Flash endurance: the documented wear-out budget.
WEAR_OUT_WRITES = 1_000_000


class CounterWornOut(Exception):
    """The NVRAM backing this counter has exceeded its write budget."""


class CounterError(Exception):
    """Raised on invalid counter operations."""


@dataclass
class _CounterState:
    value: int = 0
    writes: int = 0


class MonotonicCounterService:
    """Per-platform monotonic counters with realistic costs.

    Counters are identified by a UUID-ish string, persist across
    enclave restarts (they live in platform NVRAM), and only ever
    increase.
    """

    def __init__(self, clock: Clock) -> None:
        self.clock = clock
        self._counters: Dict[str, _CounterState] = {}

    def create(self, counter_id: str) -> None:
        if counter_id in self._counters:
            raise CounterError(f"counter {counter_id!r} already exists")
        self._counters[counter_id] = _CounterState()

    def read(self, counter_id: str) -> int:
        state = self._require(counter_id)
        self.clock.advance(READ_CYCLES)
        return state.value

    def increment(self, counter_id: str) -> int:
        """Bump and return the new value; charges the flash-write cost."""
        state = self._require(counter_id)
        if state.writes >= WEAR_OUT_WRITES:
            raise CounterWornOut(
                f"counter {counter_id!r} exceeded {WEAR_OUT_WRITES:,} writes"
            )
        self.clock.advance(INCREMENT_CYCLES)
        state.value += 1
        state.writes += 1
        return state.value

    def writes_used(self, counter_id: str) -> int:
        return self._require(counter_id).writes

    def _require(self, counter_id: str) -> _CounterState:
        state = self._counters.get(counter_id)
        if state is None:
            raise CounterError(f"no counter {counter_id!r}")
        return state


@dataclass
class CounterSealedState:
    """State sealed together with a counter value for freshness."""

    payload: bytes
    counter_value: int


class CounterFreshnessGuard:
    """Freshness via monotonic counters, for comparison with escrow.

    ``seal`` records the post-increment counter value alongside the
    payload; ``unseal`` rejects any state whose recorded value is not
    the counter's *current* value — i.e. anything but the most recent
    seal.
    """

    def __init__(self, service: MonotonicCounterService,
                 counter_id: str) -> None:
        self.service = service
        self.counter_id = counter_id
        service.create(counter_id)

    def seal(self, payload: bytes) -> CounterSealedState:
        value = self.service.increment(self.counter_id)
        return CounterSealedState(payload=payload, counter_value=value)

    def unseal(self, state: CounterSealedState) -> bytes:
        current = self.service.read(self.counter_id)
        if state.counter_value != current:
            raise CounterError(
                f"stale state: sealed at {state.counter_value}, "
                f"counter is at {current}"
            )
        return state.payload
