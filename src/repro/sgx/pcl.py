"""Protected Code Loader (PCL) model.

SGX's PCL ships an enclave whose code sections are encrypted; at load
time, after proving the enclave genuine to a key server, the decryption
key is released and the code is decrypted *inside* the enclave
(Section 2.3.1).  The paper leans on this to keep SL-Local's logic and
the migrated key functions confidential — an attacker holding the binary
cannot even read them.

The model: a :class:`SealedCodeSection` can only be "decrypted into" an
enclave whose measurement matches the one the key server approves, and
only after a successful remote attestation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.crypto.keys import KeyGenerator
from repro.crypto.sealing import SealedBlob, TamperedSealError, protect, validate
from repro.sgx.attestation import (
    AttestationReport,
    RemoteAttestationService,
)
from repro.sgx.enclave import Enclave


class PclError(Exception):
    """Raised when protected code cannot be loaded."""


@dataclass(frozen=True)
class SealedCodeSection:
    """An encrypted code section as shipped in the binary."""

    section_name: str
    blob: SealedBlob


class PclKeyServer:
    """Key-release server for protected code.

    Holds the decryption key for every sealed section, and releases it
    only to an enclave that (a) passes remote attestation and (b) has
    the expected measurement.
    """

    def __init__(self, ras: RemoteAttestationService, keygen: KeyGenerator) -> None:
        self._ras = ras
        self._keygen = keygen
        self._keys: Dict[str, int] = {}
        self._expected_measurement: Dict[str, int] = {}
        self.key_releases = 0

    def seal_section(self, section_name: str, code: bytes,
                     expected_measurement: int) -> SealedCodeSection:
        """Encrypt a code section for distribution (build-time step)."""
        blob, key64 = protect(code, self._keygen)
        self._keys[section_name] = key64
        self._expected_measurement[section_name] = expected_measurement
        return SealedCodeSection(section_name=section_name, blob=blob)

    def release_key(self, enclave: Enclave, report: AttestationReport,
                    platform_secret: int, section_name: str) -> int:
        """Release a section key after verifying the requesting enclave."""
        if section_name not in self._keys:
            raise PclError(f"unknown protected section {section_name!r}")
        self._ras.verify_remote(enclave.clock, enclave.stats, report, platform_secret)
        expected = self._expected_measurement[section_name]
        if enclave.measurement != expected:
            raise PclError(
                f"enclave measurement {enclave.measurement:#x} does not match "
                f"the provisioned measurement {expected:#x}"
            )
        self.key_releases += 1
        return self._keys[section_name]


def load_protected_code(enclave: Enclave, section: SealedCodeSection,
                        key64: int) -> bytes:
    """Decrypt a sealed code section inside the enclave.

    Returns the plaintext code bytes; raises :class:`PclError` if the
    blob was tampered with.  (The decrypted code is visible only inside
    the enclave — the simulation enforces this by convention: callers
    must not export the return value to untrusted components.)
    """
    try:
        return validate(section.blob, key64)
    except TamperedSealError as exc:
        raise PclError(f"protected section {section.section_name!r} corrupt") from exc
