"""Enclave lifecycle and the ECALL/OCALL gate.

An :class:`Enclave` is a secure compartment with a measurement, a set of
hosted functions, and a footprint of EPC pages.  Crossing the boundary
in either direction is expensive: ECALLs cost 17,000 cycles and OCALLs
8,600 (plus TLB shootdowns), which is exactly the cost structure that
drives the partitioning algorithm.

The enclave does not execute real machine code — hosted functions are
Python callables — but every crossing and every page touch is charged,
so cost-visible behaviour matches the paper's testbed.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Optional, Set

from repro.sgx.attestation import measure
from repro.sgx.costs import PAGE_SIZE, SgxCostModel
from repro.sgx.driver import SgxStats
from repro.sgx.epc import EpcPager
from repro.sim.clock import Clock

_enclave_ids = itertools.count(1)


class EnclaveError(Exception):
    """Raised on invalid enclave operations (e.g. ECALL to missing fn)."""


class Enclave:
    """A simulated SGX enclave.

    Parameters
    ----------
    name:
        Human-readable identity; the measurement derives from it.
    clock, stats, pager:
        Shared per-machine simulation state.
    heap_bytes:
        Enclave heap declared at build time (SGX requires memory to be
        stated upfront; Section 4.2.1 notes the partitioner feeds its
        estimate into enclave "compilation").
    """

    def __init__(
        self,
        name: str,
        clock: Clock,
        stats: SgxStats,
        pager: EpcPager,
        heap_bytes: int = 1 << 20,
        costs: Optional[SgxCostModel] = None,
    ) -> None:
        self.name = name
        self.enclave_id = next(_enclave_ids)
        self.measurement = measure(name)
        self.clock = clock
        self.stats = stats
        self.pager = pager
        self.costs = costs if costs is not None else SgxCostModel()
        self.heap_bytes = heap_bytes
        self._ecalls: Dict[str, Callable] = {}
        self._destroyed = False
        self._next_page = 0
        self._inside = False
        #: Pages backing in-enclave allocations, by allocation tag.
        self._allocations: Dict[str, range] = {}

    # ------------------------------------------------------------------
    # Code hosting
    # ------------------------------------------------------------------
    def register_ecall(self, name: str, fn: Callable) -> None:
        """Expose ``fn`` through the enclave's ECALL table."""
        if name in self._ecalls:
            raise EnclaveError(f"ECALL {name!r} already registered")
        self._ecalls[name] = fn

    @property
    def ecall_names(self) -> Set[str]:
        return set(self._ecalls)

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def allocate(self, tag: str, nbytes: int) -> None:
        """Reserve EPC pages for an in-enclave data structure."""
        self._check_alive()
        if tag in self._allocations:
            raise EnclaveError(f"allocation {tag!r} already exists")
        npages = max(1, (nbytes + PAGE_SIZE - 1) // PAGE_SIZE)
        pages = range(self._next_page, self._next_page + npages)
        self._next_page += npages
        self._allocations[tag] = pages
        self.pager.touch_range(self.enclave_id, pages.start, npages)

    def free(self, tag: str) -> None:
        """Drop an allocation (its pages become dead weight until teardown)."""
        self._check_alive()
        self._allocations.pop(tag, None)

    def touch_allocation(self, tag: str, nbytes: Optional[int] = None) -> int:
        """Access an allocation's pages (all of it, or a prefix).

        Returns the number of EPC faults incurred.
        """
        self._check_alive()
        pages = self._allocations.get(tag)
        if pages is None:
            raise EnclaveError(f"no allocation {tag!r}")
        npages = len(pages)
        if nbytes is not None:
            npages = min(npages, max(1, (nbytes + PAGE_SIZE - 1) // PAGE_SIZE))
        return self.pager.touch_range(self.enclave_id, pages.start, npages)

    def allocation_bytes(self, tag: str) -> int:
        pages = self._allocations.get(tag)
        return 0 if pages is None else len(pages) * PAGE_SIZE

    @property
    def declared_footprint_bytes(self) -> int:
        """Total bytes of live allocations (the EMMT-style estimate)."""
        return sum(len(p) for p in self._allocations.values()) * PAGE_SIZE

    # ------------------------------------------------------------------
    # Boundary crossings
    # ------------------------------------------------------------------
    def ecall(self, name: str, *args, **kwargs):
        """Enter the enclave and run a hosted function.

        Charges the ECALL transition (17k cycles + TLB) and dispatches.
        Nested ECALLs from inside the same enclave are a programming
        error in SGX and are rejected here too.
        """
        self._check_alive()
        if self._inside:
            raise EnclaveError("nested ECALL into an enclave already entered")
        fn = self._ecalls.get(name)
        if fn is None:
            raise EnclaveError(f"no ECALL named {name!r} in enclave {self.name!r}")
        self.clock.advance(self.costs.ecall_cycles + self.costs.transition_tlb_cycles)
        self.stats.ecalls += 1
        self.stats.charge("ecall", self.costs.ecall_cycles + self.costs.transition_tlb_cycles)
        self._inside = True
        try:
            return fn(*args, **kwargs)
        finally:
            self._inside = False

    def ocall(self, fn: Callable, *args, **kwargs):
        """Leave the enclave to run untrusted code, then return.

        Must be issued from inside an ECALL (SGX has no free-standing
        OCALLs).
        """
        self._check_alive()
        if not self._inside:
            raise EnclaveError("OCALL issued while not executing inside the enclave")
        self.clock.advance(self.costs.ocall_cycles + self.costs.transition_tlb_cycles)
        self.stats.ocalls += 1
        self.stats.charge("ocall", self.costs.ocall_cycles + self.costs.transition_tlb_cycles)
        self._inside = False
        try:
            return fn(*args, **kwargs)
        finally:
            self._inside = True

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def destroy(self) -> None:
        """Tear the enclave down, releasing its EPC pages."""
        if self._destroyed:
            return
        self._destroyed = True
        self.pager.release_enclave(self.enclave_id)

    @property
    def alive(self) -> bool:
        return not self._destroyed

    def _check_alive(self) -> None:
        if self._destroyed:
            raise EnclaveError(f"enclave {self.name!r} has been destroyed")

    def __repr__(self) -> str:
        return (
            f"Enclave(name={self.name!r}, id={self.enclave_id}, "
            f"measurement={self.measurement:#x}, alive={self.alive})"
        )
