"""Cycle-cost constants for the SGX model.

Every constant here is taken from the paper or the sources it cites:

* ECALL: 17,000 cycles (Weisse et al., HotCalls, cited in Section 2.3.2).
* EPC fault service: up to 12,000 cycles (Section 2.3.2).
* Remote attestation: 3-4 seconds (Section 2.3); we use 3.5 s.
* EPC size: ~92 MB usable out of a 128 MB PRM (Section 2.3).
* Local attestation dominates lease issuance at ~98% of its cost
  (Section 7.3); we size it accordingly relative to a lease update.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.clock import seconds_to_cycles

#: 4 KB pages, like the paper's lease-tree nodes and the EPC pager.
PAGE_SIZE = 4096

#: Usable enclave page cache: ~92 MB of the 128 MB PRM.
EPC_SIZE_BYTES = 92 * 1024 * 1024
EPC_PAGES = EPC_SIZE_BYTES // PAGE_SIZE

#: Total processor reserved memory.
PRM_SIZE_BYTES = 128 * 1024 * 1024


@dataclass(frozen=True)
class SgxCostModel:
    """Cycle costs charged by the SGX simulator.

    A frozen dataclass so experiments can construct variants (e.g. a
    "scalable SGX" model with a larger EPC) without mutating shared
    state.
    """

    ecall_cycles: int = 17_000
    ocall_cycles: int = 8_600
    epc_fault_cycles: int = 12_000
    #: TLB shootdown on enclave entry/exit transitions.
    transition_tlb_cycles: int = 800
    #: Extra per-page cost of first-touching an EPC page (encryption).
    epc_page_init_cycles: int = 1_400
    #: Remote attestation round trip (3-4 s in the paper; we take 3.5 s).
    remote_attestation_cycles: int = seconds_to_cycles(3.5)
    #: Local attestation (report generation + verification, both sides).
    local_attestation_cycles: int = 150_000
    #: In-enclave memory-access multiplier on instruction cost
    #: (MEE encryption/integrity traffic); small when inside EPC.
    enclave_cpi_multiplier: float = 1.05
    #: EPC capacity available to this model.
    epc_size_bytes: int = EPC_SIZE_BYTES

    @property
    def epc_pages(self) -> int:
        return self.epc_size_bytes // PAGE_SIZE


#: Default cost model matching the paper's testbed (SGX1, 128 MB PRM).
DEFAULT_COSTS = SgxCostModel()

#: "Scalable SGX" variant (Section 7.5): 512 GB EPC, integrity/freshness
#: guarantees delegated to firmware.  Faults essentially disappear but
#: transition costs remain.
SCALABLE_SGX_COSTS = SgxCostModel(epc_size_bytes=512 * 1024 * 1024 * 1024)


def scaled_latency_costs(factor: float = 1e-3) -> SgxCostModel:
    """Cost model with fixed per-event latencies scaled by ``factor``.

    The reproduction's workloads retire ~1000x fewer instructions than
    the paper's native runs, so charging the *absolute* 3.5 s remote
    attestation (or the ~52 us local attestation) against them distorts
    every ratio by the same 1000x.  Scaling those fixed latencies by the
    workload scale factor restores the paper's attestation-cost-to-
    compute proportions; every compared scheme uses the same model, so
    who-wins and by-what-factor are unaffected by the choice of factor.
    """
    if not 0 < factor <= 1:
        raise ValueError("latency scale factor must be in (0, 1]")
    base = SgxCostModel()
    return SgxCostModel(
        remote_attestation_cycles=max(1, round(base.remote_attestation_cycles * factor)),
        local_attestation_cycles=max(1, round(base.local_attestation_cycles * factor)),
    )
